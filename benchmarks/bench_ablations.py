"""Benchmarks for the design-choice ablations (beyond the paper's figures)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import ablations


def bench_ablation_upper_capacity(benchmark, bench_settings, bench_cache):
    """Upper-level capacity sweep of the register file cache."""
    result = run_once(benchmark, ablations.upper_capacity_sweep,
                      bench_settings, bench_cache, (8, 16, 32))
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        series = result.data["series"][suite]
        assert series["32 regs"] >= series["8 regs"] * 0.97


def bench_ablation_caching_policies(benchmark, bench_settings, bench_cache):
    """Non-bypass / ready / always / never caching comparison."""
    result = run_once(benchmark, ablations.caching_policy_sweep,
                      bench_settings, bench_cache)
    print("\n" + result.render())
    series = result.data["series"]["SpecFP95"]
    assert len(series) == 4


def bench_ablation_bus_bandwidth(benchmark, bench_settings, bench_cache):
    """Inter-level bus count sweep."""
    result = run_once(benchmark, ablations.bus_count_sweep,
                      bench_settings, bench_cache, (1, 2, 4))
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        series = result.data["series"][suite]
        assert series["4 buses"] >= series["1 buses"] * 0.97


def bench_ablation_one_level_banked(benchmark, bench_settings, bench_cache):
    """One-level multiple-banked organisation vs the register file cache."""
    result = run_once(benchmark, ablations.one_level_banked_comparison,
                      bench_settings, bench_cache)
    print("\n" + result.render())
    series = result.data["series"]["SpecInt95"]
    assert "register file cache" in series
