"""Microbenchmarks of the simulator's building blocks.

These use pytest-benchmark's statistical timing (multiple rounds) and
track the raw speed of the pieces the experiments are built from: the
synthetic workload generator, the branch predictor, the cache model, the
register-file-cache operations and the cycle-level simulator itself.
"""

from __future__ import annotations

import random

from repro.execute.scoreboard import ValueScoreboard
from repro.frontend.gshare import GSharePredictor
from repro.isa.instruction import RegisterClass
from repro.memsys.cache import CacheConfig, CacheModel
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.regfile.cache import RegisterFileCache
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.regfile.policies import AlwaysCaching
from repro.regfile.replacement import PseudoLRU
from repro.rename.renamer import PhysicalRegister
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload


def bench_workload_generation(benchmark):
    """Generate 5000 synthetic gcc instructions."""
    workload = SyntheticWorkload(get_profile("gcc"))

    def generate():
        return sum(1 for _ in workload.instructions(5000))

    assert benchmark(generate) == 5000


def bench_gshare_prediction_throughput(benchmark):
    """Predict/update one million-entry gshare on a fixed branch pattern."""
    predictor = GSharePredictor(num_entries=64 * 1024)
    rng = random.Random(7)
    branches = [(rng.randrange(1 << 20) * 4, rng.random() < 0.8) for _ in range(2000)]

    def run():
        for pc, taken in branches:
            predicted, checkpoint = predictor.predict(pc)
            predictor.update(pc, taken, checkpoint, predicted)
        return predictor.predictions

    assert benchmark(run) > 0


def bench_dcache_accesses(benchmark):
    """64KB 2-way cache servicing a mixed address stream."""
    cache = CacheModel(CacheConfig())
    rng = random.Random(11)
    addresses = [rng.randrange(1 << 18) & ~0x7 for _ in range(4000)]

    def run():
        for address in addresses:
            cache.access(address)
        return cache.hits + cache.misses

    assert benchmark(run) > 0


def bench_pseudo_lru_operations(benchmark):
    """Insert/touch churn on a 16-entry pseudo-LRU (the upper bank)."""
    rng = random.Random(3)
    keys = [rng.randrange(128) for _ in range(4000)]

    def run():
        lru = PseudoLRU(16)
        for key in keys:
            if key in lru:
                lru.touch(key)
            else:
                lru.insert(key)
        return len(lru)

    assert benchmark(run) == 16


def bench_register_file_cache_writeback_path(benchmark):
    """Write-back + caching decision throughput of the register file cache."""
    scoreboard = ValueScoreboard()
    registers = [PhysicalRegister(RegisterClass.INT, i) for i in range(128)]
    states = []
    for index, register in enumerate(registers):
        state = scoreboard.allocate(register, producer_seq=index)
        state.ex_end_cycle = index
        states.append(state)

    def run():
        cache = RegisterFileCache(caching_policy=AlwaysCaching())
        for cycle, (register, state) in enumerate(zip(registers, states)):
            cache.begin_cycle(cycle)
            cache.writeback(register, state, cycle, window=None)
        return cache.results_cached

    assert benchmark(run) == 128


def bench_simulator_one_cycle_regfile(benchmark):
    """End-to-end simulation speed, 1-cycle register file, 1500 instructions."""
    workload = SyntheticWorkload(get_profile("ijpeg"))
    config = ProcessorConfig(max_instructions=1500)

    def run():
        stats = simulate(workload.instructions(2500),
                         lambda: SingleBankedRegisterFile(latency=1), config, "ijpeg")
        return stats.committed_instructions

    assert benchmark(run) == 1500


def bench_simulator_register_file_cache(benchmark):
    """End-to-end simulation speed with the register file cache."""
    workload = SyntheticWorkload(get_profile("ijpeg"))
    config = ProcessorConfig(max_instructions=1500)

    def run():
        stats = simulate(workload.instructions(2500), RegisterFileCache, config, "ijpeg")
        return stats.committed_instructions

    assert benchmark(run) == 1500
