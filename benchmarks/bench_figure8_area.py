"""Figure 8 benchmark: performance vs area Pareto sweep.

This is the most expensive experiment (it sweeps port configurations for
all three architectures), so it runs at a further reduced instruction
budget and on the representative benchmark subset.
"""

from __future__ import annotations

from benchmarks.conftest import REPRESENTATIVE_BENCHMARKS, run_once
from repro.experiments import figure8
from repro.experiments.common import ExperimentSettings


def bench_figure8_performance_vs_area(benchmark):
    """Figure 8: Pareto-optimal (area, relative performance) points."""
    settings = ExperimentSettings(
        instructions_per_benchmark=1200,
        warmup_instructions=300,
        benchmarks=REPRESENTATIVE_BENCHMARKS,
    )
    result = run_once(benchmark, figure8.run, settings)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        per_architecture = result.data[suite]
        assert set(per_architecture) == {"1-cycle", "register file cache",
                                         "2-cycle, 1-bypass"}
        for architecture, points in per_architecture.items():
            assert points
            areas = [p["area_10Klambda2"] for p in points]
            values = [p["relative_performance"] for p in points]
            assert areas == sorted(areas)
            assert all(b > a for a, b in zip(values, values[1:]))
        # The register file cache reaches a given performance level at a
        # smaller area than the 1-cycle file does for most of the range
        # (it trades lower-bank ports for upper-bank ports).
        cache_points = per_architecture["register file cache"]
        assert max(p["relative_performance"] for p in cache_points) > 0.5
