"""Benchmarks regenerating every figure and table of the paper.

Each benchmark runs the corresponding experiment once (at reduced scale —
see ``conftest.py``) and prints the reproduced rows/series, so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as a results
report.  Shape assertions guard the qualitative conclusions the paper
draws from each figure.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure9_table2,
    headline,
    value_reuse,
)


def bench_figure1_register_sweep(benchmark, bench_settings, bench_cache):
    """Figure 1: IPC vs number of physical registers."""
    result = run_once(benchmark, figure1.run, bench_settings,
                      (64, 128, 192), bench_cache)
    print("\n" + result.render())
    series = result.data["series"]
    for suite in ("SpecInt95", "SpecFP95"):
        values = series[suite]
        # IPC must not degrade as registers are added, and must flatten.
        assert values[-1] >= values[0] * 0.97


def bench_figure2_latency_and_bypass(benchmark, bench_settings, bench_cache):
    """Figure 2: 1-cycle vs 2-cycle vs 2-cycle/1-bypass."""
    result = run_once(benchmark, figure2.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        series = result.data[suite]
        one = series["1-cycle, 1-bypass level"]["Hmean"]
        full = series["2-cycle, 2-bypass levels"]["Hmean"]
        single = series["2-cycle, 1-bypass level"]["Hmean"]
        assert one >= full >= single


def bench_figure3_register_occupancy(benchmark, bench_settings, bench_cache):
    """Figure 3: distribution of registers holding needed values."""
    result = run_once(benchmark, figure3.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        needed = result.data[suite]["value_and_instruction"]
        # A small number of registers covers the vast majority of cycles.
        assert needed[24] > 75.0


def bench_value_reuse_statistic(benchmark, bench_settings, bench_cache):
    """Section 3: fraction of values read at most once."""
    result = run_once(benchmark, value_reuse.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        assert result.data[suite]["read_at_most_once"] > 0.55


def bench_figure5_caching_and_fetch_policies(benchmark, bench_settings, bench_cache):
    """Figure 5: the four caching/fetch policy combinations."""
    result = run_once(benchmark, figure5.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        series = result.data[suite]
        best = max(values["Hmean"] for values in series.values())
        worst = min(values["Hmean"] for values in series.values())
        # The policies are within a modest band of each other.
        assert best / worst < 1.35


def bench_figure6_rfc_vs_single_bypass_baselines(benchmark, bench_settings, bench_cache):
    """Figure 6: register file cache vs 1-cycle and 2-cycle (1 bypass)."""
    result = run_once(benchmark, figure6.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        series = result.data[suite]
        one = series["1-cycle"]["Hmean"]
        rfc = series["non-bypass caching + prefetch-first-pair"]["Hmean"]
        two = series["2-cycle"]["Hmean"]
        assert two < rfc <= one * 1.05


def bench_figure7_rfc_vs_full_bypass(benchmark, bench_settings, bench_cache):
    """Figure 7: register file cache vs 2-cycle full-bypass file."""
    result = run_once(benchmark, figure7.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        pct = result.data[suite + "_summary"]["vs_two_cycle_full_pct"]
        # The cache is close to (typically slightly below) the full-bypass file.
        assert -35.0 < pct < 15.0


def bench_figure9_table2_throughput(benchmark, bench_settings, bench_cache):
    """Table 2 + Figure 9: throughput once access time is factored in."""
    result = run_once(benchmark, figure9_table2.run, bench_settings, bench_cache)
    print("\n" + result.render())
    for suite in ("SpecInt95", "SpecFP95"):
        best = result.data[suite + "_best"]
        rfc = best["non-bypass caching + prefetch-first-pair"]
        # The headline claim: a large throughput win over the 1-cycle file.
        assert rfc > best["1-cycle"] * 1.3


def bench_headline_claims(benchmark, bench_settings, bench_cache):
    """The paper's headline claims, paper vs measured."""
    result = run_once(benchmark, headline.run, bench_settings, bench_cache)
    print("\n" + result.render())
    measured = result.data["measured"]
    assert measured["SpecInt95|throughput vs 1-cycle (best config)"] > 30.0
    assert measured["SpecFP95|throughput vs 1-cycle (best config)"] > 30.0
