"""Shared settings for the pytest-benchmark harness.

Every paper figure/table has one benchmark that regenerates it at reduced
scale (fewer instructions per benchmark and, for the heavy sweeps, a
representative subset of SPEC95).  Set the environment variable
``REPRO_BENCH_INSTRUCTIONS`` to raise the instruction budget for a
higher-fidelity run (e.g. 8000), and ``REPRO_BENCH_FULL_SUITE=1`` to use
all 18 benchmarks everywhere.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

try:  # pragma: no cover
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.common import ExperimentSettings, SimulationCache

#: Benchmarks used by the reduced-scale sweeps (2 int + 2 fp, covering the
#: latency-sensitive and the memory-bound corners).
REPRESENTATIVE_BENCHMARKS = ("m88ksim", "ijpeg", "swim", "mgrid")


def _instructions(default: int = 2000) -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", default))


def _benchmarks():
    if os.environ.get("REPRO_BENCH_FULL_SUITE"):
        return None
    return REPRESENTATIVE_BENCHMARKS


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    """Reduced-scale settings shared by the figure benchmarks."""
    return ExperimentSettings(
        instructions_per_benchmark=_instructions(),
        warmup_instructions=500,
        benchmarks=_benchmarks(),
    )


@pytest.fixture(scope="session")
def bench_cache(bench_settings) -> SimulationCache:
    """One shared simulation cache so figures can reuse baseline runs."""
    return SimulationCache(bench_settings)


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              iterations=1, rounds=1, warmup_rounds=0)
