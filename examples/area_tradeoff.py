"""Pick the best register file under an area budget (Figure 8/9 style).

Run with::

    python examples/area_tradeoff.py [area_budget_in_10K_lambda2] [instructions]

For a given silicon-area budget (default 16000 ×10Kλ², between the
paper's C2 and C3 points), this example enumerates port configurations of
the 1-cycle single-banked register file, the 2-cycle pipelined one and
the register file cache, keeps those that fit the budget, simulates a
small benchmark subset, factors in the cycle time predicted by the
access-time model and reports the best *instruction throughput* each
architecture can reach — the paper's bottom-line comparison.
"""

from __future__ import annotations

import sys

from repro import ProcessorConfig, SyntheticWorkload, get_profile, simulate
from repro.analysis import format_table, harmonic_mean
from repro.experiments.common import (
    one_cycle_factory,
    register_file_cache_factory,
    two_cycle_one_bypass_factory,
)
from repro.hwmodel import (
    RegisterFileGeometry,
    RegisterFileCacheGeometry,
    access_time_ns,
)

BENCHMARKS = ("m88ksim", "swim")


def _suite_ipc(factory, instructions: int) -> float:
    config = ProcessorConfig(max_instructions=instructions)
    ipcs = []
    for benchmark in BENCHMARKS:
        workload = SyntheticWorkload(get_profile(benchmark))
        stats = simulate(workload.instructions(instructions + 1500), factory,
                         config, benchmark)
        ipcs.append(stats.ipc)
    return harmonic_mean(ipcs)


def main() -> None:
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 16_000.0
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 3_000

    rows = []

    # Single-banked candidates (shared geometry for the 1- and 2-cycle files).
    single_candidates = [
        RegisterFileGeometry(128, reads, writes)
        for reads in (2, 3, 4) for writes in (2, 3, 4)
    ]
    best_single = max(
        (g for g in single_candidates if g.area_units() <= budget),
        key=lambda g: g.total_ports,
        default=None,
    )
    if best_single is not None:
        access = access_time_ns(128, best_single.read_ports, best_single.write_ports)
        ipc_1 = _suite_ipc(one_cycle_factory(best_single.read_ports,
                                             best_single.write_ports), instructions)
        ipc_2 = _suite_ipc(two_cycle_one_bypass_factory(best_single.read_ports,
                                                        best_single.write_ports), instructions)
        rows.append(("1-cycle single-banked",
                     f"{best_single.read_ports}R/{best_single.write_ports}W",
                     round(best_single.area_units()), round(access, 2),
                     round(ipc_1, 3), round(ipc_1 / access, 4)))
        rows.append(("2-cycle single-banked, 1 bypass",
                     f"{best_single.read_ports}R/{best_single.write_ports}W",
                     round(best_single.area_units()), round(access / 2, 2),
                     round(ipc_2, 3), round(ipc_2 / (access / 2), 4)))

    # Register file cache candidates.
    cache_candidates = [
        RegisterFileCacheGeometry(upper_read_ports=reads, upper_write_ports=writes,
                                  lower_write_ports=writes, buses=buses)
        for reads in (3, 4) for writes in (2, 3, 4) for buses in (2, 3)
    ]
    best_cache = max(
        (g for g in cache_candidates if g.area_units() <= budget),
        key=lambda g: (g.upper_read_ports + g.upper_write_ports + g.buses),
        default=None,
    )
    if best_cache is not None:
        cycle = best_cache.cycle_time_ns()
        ipc = _suite_ipc(
            register_file_cache_factory(
                upper_read_ports=best_cache.upper_read_ports,
                upper_write_ports=best_cache.upper_write_ports,
                lower_write_ports=best_cache.lower_write_ports,
                buses=best_cache.buses,
                lower_read_latency=best_cache.lower_read_latency_cycles(),
            ),
            instructions,
        )
        ports = (f"{best_cache.upper_read_ports}R/{best_cache.upper_write_ports}W"
                 f"+{best_cache.buses}B")
        rows.append(("register file cache", ports, round(best_cache.area_units()),
                     round(cycle, 2), round(ipc, 3), round(ipc / cycle, 4)))

    print(format_table(
        ("architecture", "ports", "area (10Kλ²)", "cycle (ns)", "IPC", "inst/ns"),
        rows,
        title=f"Best configuration under an area budget of {budget:.0f} ×10Kλ²",
    ))
    if rows:
        best = max(rows, key=lambda row: row[-1])
        print(f"\nhighest throughput under the budget: {best[0]} ({best[1]}), "
              f"{best[-1]} instructions/ns")


if __name__ == "__main__":
    main()
