"""Compare the paper's register file architectures on a SPEC95 subset.

Run with::

    python examples/compare_architectures.py [instructions]

Reproduces the core comparison of the paper (Figures 2, 6 and 7) on a
four-benchmark subset: the 1-cycle file, the pipelined 2-cycle file with
full and with single bypass, and the register file cache — all with
unlimited ports — and prints IPC per benchmark plus harmonic means.
"""

from __future__ import annotations

import sys

from repro import ProcessorConfig, SyntheticWorkload, get_profile, simulate
from repro.analysis import format_series, harmonic_mean
from repro.experiments.common import architecture_factories

BENCHMARKS = ("m88ksim", "ijpeg", "swim", "mgrid")


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    config = ProcessorConfig(max_instructions=instructions)

    series: dict[str, dict[str, float]] = {}
    for architecture, factory in architecture_factories().items():
        ipcs: dict[str, float] = {}
        for benchmark in BENCHMARKS:
            workload = SyntheticWorkload(get_profile(benchmark))
            stats = simulate(workload.instructions(instructions + 2000), factory,
                             config, benchmark)
            ipcs[benchmark] = stats.ipc
        ipcs["Hmean"] = harmonic_mean(list(ipcs.values()))
        series[architecture] = ipcs

    print(format_series(series, title=f"IPC, unlimited ports, {instructions} instructions"))
    print()
    baseline = series["1-cycle"]["Hmean"]
    for architecture, values in series.items():
        delta = 100.0 * (values["Hmean"] / baseline - 1.0)
        print(f"{architecture:28s} {delta:+6.1f}% IPC vs the 1-cycle register file")


if __name__ == "__main__":
    main()
