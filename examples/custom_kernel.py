"""Run a hand-written assembly kernel through the simulated processor.

Run with::

    python examples/custom_kernel.py

Shows the "bring your own workload" path of the library: write a kernel
in the toy ISA's assembly, execute it functionally to obtain the dynamic
instruction stream, then replay that stream on different register file
architectures and inspect where the operands came from.
"""

from __future__ import annotations

from repro import (
    ProcessorConfig,
    RegisterFileCache,
    SingleBankedRegisterFile,
    assemble,
    simulate,
)
from repro.workloads import materialize

#: A small blocked SAXPY-like kernel: y[i] = a*x[i] + y[i] over 96 elements,
#: with a reduction of the result vector at the end.
KERNEL = """
    li   r1, 0x2000        # x base
    li   r2, 0x6000        # y base
    li   r3, 96            # element count
    li   r4, 0
    li   r5, 3             # scale factor lives in f5 via memory
    sw   r5, r1, -8
    flw  f5, r1, -8
loop:
    flw  f1, r1, 0
    flw  f2, r2, 0
    fmul f3, f1, f5
    fadd f4, f3, f2
    fsw  f4, r2, 0
    addi r1, r1, 8
    addi r2, r2, 8
    addi r3, r3, -1
    bne  r3, r4, loop
    li   r2, 0x6000
    li   r3, 96
    fsub f6, f6, f6
reduce:
    flw  f1, r2, 0
    fadd f6, f6, f1
    addi r2, r2, 8
    addi r3, r3, -1
    bne  r3, r4, reduce
    fsw  f6, r2, 0
"""


def main() -> None:
    program = assemble(KERNEL)
    trace = materialize("saxpy", program.run(max_instructions=50_000))
    print(f"kernel: {len(trace)} dynamic instructions, "
          f"{trace.branch_count()} branches, "
          f"{trace.memory_reference_count()} memory references, "
          f"{trace.read_at_most_once_fraction():.0%} of values read at most once")

    config = ProcessorConfig(max_instructions=len(trace))
    for label, factory in (
        ("1-cycle single-banked", lambda: SingleBankedRegisterFile(latency=1)),
        ("2-cycle, 1 bypass     ", lambda: SingleBankedRegisterFile(latency=2, bypass_levels=1)),
        ("register file cache   ", RegisterFileCache),
    ):
        stats = simulate(iter(trace), factory, config, "saxpy")
        print(f"  {label}: IPC = {stats.ipc:.3f} over {stats.cycles} cycles "
              f"(bypass operands: {stats.bypass_operand_fraction:.0%})")


if __name__ == "__main__":
    main()
