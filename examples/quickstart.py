"""Quickstart: simulate one benchmark on two register file architectures.

Run with::

    python examples/quickstart.py [benchmark] [instructions]

This compares the paper's proposed *register file cache* (a 16-register
fully-associative upper bank over the 128-register file, non-bypass
caching, prefetch-first-pair) against the ideal non-pipelined 1-cycle
register file, on one SPEC95-like synthetic workload.
"""

from __future__ import annotations

import sys

from repro import (
    ProcessorConfig,
    RegisterFileCache,
    SingleBankedRegisterFile,
    SyntheticWorkload,
    get_profile,
    simulate,
)
from repro.regfile import NonBypassCaching, PrefetchFirstPair


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8_000

    workload = SyntheticWorkload(get_profile(benchmark))
    config = ProcessorConfig(max_instructions=instructions)

    ideal = simulate(
        workload.instructions(instructions + 2000),
        regfile_factory=lambda: SingleBankedRegisterFile(latency=1),
        config=config,
        benchmark_name=benchmark,
    )
    cache = simulate(
        workload.instructions(instructions + 2000),
        regfile_factory=lambda: RegisterFileCache(
            caching_policy=NonBypassCaching(), fetch_policy=PrefetchFirstPair()
        ),
        config=config,
        benchmark_name=benchmark,
    )

    print(f"benchmark: {benchmark} ({instructions} committed instructions)")
    print(f"  1-cycle single-banked register file : IPC = {ideal.ipc:.3f}")
    print(f"  register file cache (16 + 128 regs)  : IPC = {cache.ipc:.3f}")
    print(f"  IPC ratio                            : {cache.ipc / ideal.ipc:.3f}")
    print()
    print("register file cache internals:")
    for key, value in sorted(cache.regfile_statistics.items()):
        print(f"  {key:32s} {value}")
    print()
    print(f"branch prediction accuracy: {cache.branch_prediction_accuracy:.3f}")
    print(f"D-cache hit rate          : {cache.dcache_hit_rate:.3f}")
    print(f"operands caught on bypass : {cache.bypass_operand_fraction:.1%}")


if __name__ == "__main__":
    main()
