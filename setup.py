"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this shim exists so the
package can be installed (including ``pip install -e .``) in offline
environments whose setuptools/pip combination cannot build PEP 660
editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()
