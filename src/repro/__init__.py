"""repro — reproduction of "Multiple-Banked Register File Architectures".

The package implements, from scratch, everything the ISCA 2000 paper by
Cruz, González, Valero and Topham needs:

* a cycle-level dynamically scheduled superscalar processor model
  (:mod:`repro.pipeline`) with all its substrates (fetch and branch
  prediction, renaming, caches, load/store queue, issue/execute/commit),
* the register file architectures under study (:mod:`repro.regfile`):
  monolithic single-banked files of configurable latency and bypass
  depth, the one-level multiple-banked organisation, and the two-level
  *register file cache* with its caching and prefetching policies,
* SPEC95-substitute workloads (:mod:`repro.workloads`),
* analytical register-file area and access-time models
  (:mod:`repro.hwmodel`),
* the experiment harness regenerating every figure and table of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart
----------

>>> from repro import (ProcessorConfig, RegisterFileCache, simulate,
...                    SyntheticWorkload, get_profile)
>>> workload = SyntheticWorkload(get_profile("gcc"))
>>> stats = simulate(
...     workload.instructions(5000),
...     regfile_factory=RegisterFileCache,
...     config=ProcessorConfig(max_instructions=5000),
...     benchmark_name="gcc",
... )
>>> 0.0 < stats.ipc < 8.0
True
"""

from repro.errors import (
    ReproError,
    ConfigurationError,
    AssemblyError,
    SimulationError,
    RenameError,
    RegisterFileError,
    WorkloadError,
    ModelError,
)
from repro.isa import (
    OpClass,
    Opcode,
    DynamicInstruction,
    StaticInstruction,
    LogicalRegister,
    RegisterClass,
    Program,
    assemble,
)
from repro.workloads import (
    BenchmarkProfile,
    SyntheticWorkload,
    get_profile,
    all_profiles,
    SPECINT95,
    SPECFP95,
    SPEC95,
    Trace,
    materialize,
    KERNELS,
    kernel_workload,
)
from repro.regfile import (
    RegisterFileModel,
    SingleBankedRegisterFile,
    RegisterFileCache,
    OneLevelBankedRegisterFile,
    NonBypassCaching,
    ReadyCaching,
    AlwaysCaching,
    NeverCaching,
    FetchOnDemand,
    PrefetchFirstPair,
    caching_policy_by_name,
    fetch_policy_by_name,
    UNLIMITED,
)
from repro.pipeline import (
    ProcessorConfig,
    Processor,
    SimulationStats,
    simulate,
)
from repro.hwmodel import (
    RegisterFileGeometry,
    area_lambda2,
    access_time_ns,
    RegisterFileCacheGeometry,
    TABLE2_CONFIGURATIONS,
    pareto_frontier,
)
from repro.analysis import harmonic_mean, speedup, relative_series
from repro.version import __version__

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ConfigurationError",
    "AssemblyError",
    "SimulationError",
    "RenameError",
    "RegisterFileError",
    "WorkloadError",
    "ModelError",
    # isa
    "OpClass",
    "Opcode",
    "DynamicInstruction",
    "StaticInstruction",
    "LogicalRegister",
    "RegisterClass",
    "Program",
    "assemble",
    # workloads
    "BenchmarkProfile",
    "SyntheticWorkload",
    "get_profile",
    "all_profiles",
    "SPECINT95",
    "SPECFP95",
    "SPEC95",
    "Trace",
    "materialize",
    "KERNELS",
    "kernel_workload",
    # register files
    "RegisterFileModel",
    "SingleBankedRegisterFile",
    "RegisterFileCache",
    "OneLevelBankedRegisterFile",
    "NonBypassCaching",
    "ReadyCaching",
    "AlwaysCaching",
    "NeverCaching",
    "FetchOnDemand",
    "PrefetchFirstPair",
    "caching_policy_by_name",
    "fetch_policy_by_name",
    "UNLIMITED",
    # pipeline
    "ProcessorConfig",
    "Processor",
    "SimulationStats",
    "simulate",
    # hardware models
    "RegisterFileGeometry",
    "area_lambda2",
    "access_time_ns",
    "RegisterFileCacheGeometry",
    "TABLE2_CONFIGURATIONS",
    "pareto_frontier",
    # analysis
    "harmonic_mean",
    "speedup",
    "relative_series",
]
