"""Analysis helpers: metrics, distributions and plain-text rendering."""

from repro.analysis.metrics import (
    harmonic_mean,
    geometric_mean,
    speedup,
    relative_series,
    percent_change,
)
from repro.analysis.distributions import (
    cumulative_distribution,
    average_cdfs,
    percentile_from_cdf,
)
from repro.analysis.tables import format_table, format_series, format_figure
from repro.analysis.charts import horizontal_bar_chart, sparkline, series_chart

__all__ = [
    "harmonic_mean",
    "geometric_mean",
    "speedup",
    "relative_series",
    "percent_change",
    "cumulative_distribution",
    "average_cdfs",
    "percentile_from_cdf",
    "format_table",
    "format_series",
    "format_figure",
    "horizontal_bar_chart",
    "sparkline",
    "series_chart",
]
