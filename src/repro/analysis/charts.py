"""Plain-text charts for experiment reports.

The experiment harness prints its figures as tables; these helpers add
simple ASCII bar charts and sparkline-style series so the shape of a
result (who wins, where the knee is) can be read at a glance in a
terminal or a text log, without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ModelError

_BLOCKS = " ▏▎▍▌▋▊▉█"


def horizontal_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:.3f}",
    title: str = "",
) -> str:
    """Render a labelled horizontal bar chart.

    Bars are scaled so the largest value spans ``width`` characters.
    """
    if not values:
        raise ModelError("cannot chart an empty mapping")
    if width <= 0:
        raise ModelError("width must be positive")
    maximum = max(values.values())
    if maximum <= 0:
        raise ModelError("bar chart values must contain a positive maximum")
    label_width = max(len(str(label)) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        fraction = max(0.0, value / maximum)
        filled = int(round(fraction * width))
        bar = "█" * filled
        lines.append(
            f"{str(label).ljust(label_width)}  {bar.ljust(width)}  "
            f"{value_format.format(value)}"
        )
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """Render a compact one-line sparkline of a numeric series."""
    if not series:
        raise ModelError("cannot render an empty sparkline")
    low = min(series)
    high = max(series)
    span = high - low
    if span == 0:
        return _BLOCKS[4] * len(series)
    characters = []
    for value in series:
        index = int((value - low) / span * (len(_BLOCKS) - 1))
        characters.append(_BLOCKS[index])
    return "".join(characters)


def series_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Render several series as per-label grouped bars plus a sparkline."""
    if not series:
        raise ModelError("cannot chart an empty series mapping")
    lines = [title] if title else []
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise ModelError(
                f"series {name!r} has {len(values)} values for {len(x_labels)} labels"
            )
        lines.append(f"{name}: {sparkline(list(values))}")
        mapping = {str(label): value for label, value in zip(x_labels, values)}
        lines.append(horizontal_bar_chart(mapping, width=width))
        lines.append("")
    return "\n".join(lines).rstrip()
