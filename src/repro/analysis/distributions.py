"""Cumulative distributions (Figure 3 machinery)."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.errors import ModelError


def cumulative_distribution(counts: Counter, max_value: int) -> list[float]:
    """Cumulative percentage of samples with value <= N, for N in 0..max.

    Values above ``max_value`` are folded into the last bucket so the
    distribution always ends at 100%.
    """
    total = sum(counts.values())
    if total == 0:
        return [100.0] * (max_value + 1)
    cdf: list[float] = []
    running = 0
    for value in range(max_value + 1):
        running += counts.get(value, 0)
        cdf.append(100.0 * running / total)
    overflow = sum(count for value, count in counts.items() if value > max_value)
    if overflow:
        cdf[-1] = 100.0 * (running + overflow) / total
    return cdf


def average_cdfs(cdfs: Iterable[Sequence[float]]) -> list[float]:
    """Point-wise average of several equally-sized CDFs (suite averages)."""
    cdfs = [list(cdf) for cdf in cdfs]
    if not cdfs:
        raise ModelError("cannot average zero distributions")
    length = len(cdfs[0])
    if any(len(cdf) != length for cdf in cdfs):
        raise ModelError("all distributions must have the same length")
    return [sum(cdf[i] for cdf in cdfs) / len(cdfs) for i in range(length)]


def percentile_from_cdf(cdf: Sequence[float], percentile: float) -> int:
    """Smallest value whose cumulative percentage reaches ``percentile``."""
    if not 0 < percentile <= 100:
        raise ModelError("percentile must be in (0, 100]")
    for value, cumulative in enumerate(cdf):
        if cumulative >= percentile:
            return value
    return len(cdf) - 1
