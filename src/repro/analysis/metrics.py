"""Aggregate performance metrics.

The paper reports per-suite averages as harmonic means of IPC (the
correct mean for rates over a fixed instruction count) and speedups as
ratios of those means (or of instruction throughput once the cycle time
is factored in).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.errors import ModelError


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of strictly positive values.

    Raises
    ------
    ModelError
        If the sequence is empty or contains non-positive values.
    """
    values = list(values)
    if not values:
        raise ModelError("harmonic mean of an empty sequence")
    if any(value <= 0 for value in values):
        raise ModelError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / value for value in values)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values."""
    values = list(values)
    if not values:
        raise ModelError("geometric mean of an empty sequence")
    if any(value <= 0 for value in values):
        raise ModelError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


def speedup(candidate: float, baseline: float) -> float:
    """Candidate/baseline ratio (>1 means the candidate is faster)."""
    if baseline <= 0:
        raise ModelError("baseline must be positive")
    return candidate / baseline


def percent_change(candidate: float, baseline: float) -> float:
    """Signed percentage change of candidate relative to baseline."""
    if baseline <= 0:
        raise ModelError("baseline must be positive")
    return 100.0 * (candidate - baseline) / baseline


def relative_series(values: Mapping[str, float] | Sequence[float],
                    baseline: float) -> dict | list:
    """Normalise a series of values by ``baseline``.

    Accepts either a mapping (returns a dict with the same keys) or a
    sequence (returns a list).
    """
    if baseline <= 0:
        raise ModelError("baseline must be positive")
    if isinstance(values, Mapping):
        return {key: value / baseline for key, value in values.items()}
    return [value / baseline for value in values]


def instruction_throughput(ipc: float, cycle_time_ns: float) -> float:
    """Instructions per nanosecond given an IPC and a cycle time."""
    if cycle_time_ns <= 0:
        raise ModelError("cycle time must be positive")
    return ipc / cycle_time_ns
