"""Plain-text rendering of tables and figure series.

The experiment harness prints every reproduced figure/table as text so
that results can be inspected (and recorded in EXPERIMENTS.md) without a
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render a simple fixed-width table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Mapping[str, float]], title: str = "",
                  value_format: str = "{:.3f}") -> str:
    """Render a figure with several named series over the same x labels.

    ``series`` maps series-name -> (x-label -> value).
    """
    all_labels: list[str] = []
    for values in series.values():
        for label in values:
            if label not in all_labels:
                all_labels.append(label)
    headers = ["series"] + all_labels
    rows = []
    for name, values in series.items():
        row = [name] + [
            value_format.format(values[label]) if label in values else "-"
            for label in all_labels
        ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_figure(x_values: Sequence[object], series: Mapping[str, Sequence[float]],
                  title: str = "", value_format: str = "{:.3f}") -> str:
    """Render a figure whose series share an ordered x axis."""
    headers = ["x"] + list(series.keys())
    rows = []
    for index, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(value_format.format(values[index]) if index < len(values) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
