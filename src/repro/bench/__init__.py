"""Performance subsystem: benchmark matrix, reports and the CI perf gate.

``python -m repro.bench`` runs a fixed matrix of simulation scenarios
and component microbenchmarks, and writes the next schema-versioned
``BENCH_<n>.json`` of the repository's performance trajectory;
``python -m repro.bench compare`` diffs two reports and fails on
regressions beyond a threshold.  See ``docs/benchmarking.md``.
"""

from repro.bench.report import (
    BenchReport,
    BenchReportError,
    Comparison,
    ScenarioDelta,
    ScenarioResult,
    compare_reports,
    environment_fingerprint,
    next_report_index,
)
from repro.bench.runner import BenchmarkRunner, run_and_save
from repro.bench.scenarios import (
    ComponentScenario,
    SampledSweepScenario,
    SimulationScenario,
    component_scenarios,
    headline_scenario,
    sampled_sweep_scenarios,
    simulation_scenarios,
)

__all__ = [
    "BenchReport",
    "BenchReportError",
    "BenchmarkRunner",
    "Comparison",
    "ComponentScenario",
    "ScenarioDelta",
    "ScenarioResult",
    "SampledSweepScenario",
    "SimulationScenario",
    "compare_reports",
    "component_scenarios",
    "environment_fingerprint",
    "headline_scenario",
    "next_report_index",
    "run_and_save",
    "sampled_sweep_scenarios",
    "simulation_scenarios",
]
