"""Command-line interface of the performance subsystem.

Run the benchmark matrix and append the next report to the trajectory::

    python -m repro.bench --quick            # CI-sized budgets
    python -m repro.bench --output-dir out   # write out/BENCH_<n>.json

Diff two reports (exit code 1 when a scenario regressed by more than the
threshold — this is the CI perf gate)::

    python -m repro.bench compare BENCH_1.json BENCH_2.json --threshold 0.25
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.report import BenchReport, BenchReportError, compare_reports
from repro.bench.runner import run_and_save
from repro.bench.scenarios import scenario_overview


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command")

    parser.add_argument("--quick", action="store_true",
                        help="reduced instruction budgets (CI-sized run)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timed runs per scenario; best is reported (default: 2)")
    parser.add_argument("--output-dir", default=".",
                        help="directory for the new BENCH_<n>.json (default: .)")
    parser.add_argument("--index", type=int, default=None,
                        help="force the report index instead of auto-numbering")
    parser.add_argument("--filter", dest="name_filter", default=None,
                        help="only run scenarios whose name contains this substring")
    parser.add_argument("--no-components", action="store_true",
                        help="skip the component microbenchmarks")
    parser.add_argument("--list", action="store_true",
                        help="list the scenario matrix and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress on stderr")

    compare = sub.add_parser(
        "compare", help="diff two reports and fail on regression")
    compare.add_argument("baseline", help="baseline BENCH_<n>.json")
    compare.add_argument("current", help="current BENCH_<n>.json")
    compare.add_argument("--threshold", type=float, default=0.25,
                         help="tolerated slowdown fraction (default: 0.25)")
    compare.add_argument("--raw", action="store_true",
                         help="compare raw rates instead of "
                              "calibration-normalized ones")
    return parser


def _run_compare(args: argparse.Namespace) -> int:
    try:
        baseline = BenchReport.load(args.baseline)
        current = BenchReport.load(args.current)
        comparison = compare_reports(
            baseline, current,
            threshold=args.threshold,
            normalize=not args.raw,
        )
    except BenchReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(comparison.render())
    return 0 if comparison.ok else 1


def _run_bench(args: argparse.Namespace) -> int:
    if args.repeats <= 0:
        print("error: --repeats must be positive", file=sys.stderr)
        return 2
    if args.list:
        for line in scenario_overview(args.quick):
            print(line)
        return 0

    def progress(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr, flush=True)

    try:
        report, path = run_and_save(
            output_dir=args.output_dir,
            quick=args.quick,
            repeats=args.repeats,
            index=args.index,
            name_filter=args.name_filter,
            include_components=not args.no_components,
            progress=progress,
        )
    except OSError as error:
        print(f"error: cannot write report: {error}", file=sys.stderr)
        return 2
    headline = next((r for r in report.scenarios
                     if r.metadata.get("headline")), None)
    if headline is not None:
        print(f"headline: {headline.cycles_per_second:,.0f} cycles/s "
              f"({headline.name})")
    print(f"wrote {path} ({len(report.scenarios)} scenarios, "
          f"calibration {report.calibration_score:,.0f} ops/s)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _run_compare(args)
    return _run_bench(args)


if __name__ == "__main__":
    sys.exit(main())
