"""Schema-versioned benchmark reports and report comparison.

A :class:`BenchReport` is what one ``python -m repro.bench`` invocation
produces: an environment fingerprint, a calibration measurement and one
:class:`ScenarioResult` per benchmark scenario.  Reports are written as
``BENCH_<n>.json`` files — the committed ones form the repository's
performance trajectory, and :func:`compare_reports` diffs two of them to
drive the CI perf gate.

Raw wall-clock rates are not comparable across machines, so every report
carries a *calibration score*: the throughput of a fixed pure-Python
loop measured right before the scenarios.  :func:`compare_reports`
normalizes each scenario rate by its report's calibration score by
default, which makes "did the simulator get slower?" meaningful even
when the baseline report was produced on different hardware (e.g. a
committed baseline vs a CI runner).
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.version import __version__

#: Bump when the report layout changes; ``compare`` refuses mismatches.
SCHEMA_VERSION = 1

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


class BenchReportError(ReproError):
    """A benchmark report could not be read, written or compared."""


@dataclass
class ScenarioResult:
    """Measured outcome of one benchmark scenario."""

    name: str
    kind: str  # "simulation", "sweep", "service", "store" or "component"
    wall_seconds: float  # best over ``repeats`` timed runs
    repeats: int
    #: Simulation scenarios: simulated cycles / committed instructions and
    #: the derived rates.  Component scenarios: operations per run.
    cycles: Optional[int] = None
    instructions: Optional[int] = None
    cycles_per_second: Optional[float] = None
    instructions_per_second: Optional[float] = None
    operations: Optional[int] = None
    operations_per_second: Optional[float] = None
    #: SHA-256 over the canonical stats dictionary — a cheap determinism
    #: guard: two reports of the same code must agree on every digest.
    stats_digest: Optional[str] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def rate(self) -> float:
        """The scenario's primary throughput metric (higher is better)."""
        if self.cycles_per_second is not None:
            return self.cycles_per_second
        if self.operations_per_second is not None:
            return self.operations_per_second
        return 1.0 / self.wall_seconds if self.wall_seconds > 0 else 0.0


@dataclass
class BenchReport:
    """One benchmark run: environment, calibration, scenario results."""

    index: int
    created: str
    environment: Dict[str, object]
    calibration_score: float
    scenarios: List[ScenarioResult]
    quick: bool = False
    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------------

    def scenario(self, name: str) -> Optional[ScenarioResult]:
        for result in self.scenarios:
            if result.name == name:
                return result
        return None

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "index": self.index,
            "created": self.created,
            "quick": self.quick,
            "environment": self.environment,
            "calibration_score": self.calibration_score,
            "scenarios": [asdict(result) for result in self.scenarios],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BenchReport":
        if payload.get("schema") != SCHEMA_VERSION:
            raise BenchReportError(
                f"unsupported report schema {payload.get('schema')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        known = {spec for spec in ScenarioResult.__dataclass_fields__}
        scenarios = [
            ScenarioResult(**{k: v for k, v in entry.items() if k in known})
            for entry in payload.get("scenarios", [])
        ]
        return cls(
            index=int(payload["index"]),
            created=str(payload.get("created", "")),
            quick=bool(payload.get("quick", False)),
            environment=dict(payload.get("environment", {})),
            calibration_score=float(payload.get("calibration_score", 0.0)),
            scenarios=scenarios,
        )

    # ------------------------------------------------------------------

    def save(self, directory: str) -> str:
        """Write the report as ``BENCH_<index>.json`` under ``directory``."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"BENCH_{self.index}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise BenchReportError(f"cannot read bench report {path!r}: {exc}") from exc
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# environment fingerprint and calibration
# ----------------------------------------------------------------------


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit SHA, or ``None`` outside a repository."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def environment_fingerprint() -> Dict[str, object]:
    """Everything needed to interpret the absolute numbers of a report."""
    return {
        "repro_version": __version__,
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_revision(),
        "argv": list(sys.argv),
    }


def calibration_score(duration: float = 0.1) -> float:
    """Interpreter-speed proxy: iterations/second of a fixed dict/arith loop.

    The loop exercises the operations the simulator leans on (dict
    access, integer arithmetic, attribute-free function calls) but no
    repository code, so normalizing scenario rates by this score cancels
    machine speed without masking real simulator regressions.
    """
    table = {i: i * 3 for i in range(512)}
    iterations = 0
    chunk = 20_000
    deadline = time.perf_counter() + duration
    while time.perf_counter() < deadline:
        acc = 0
        for i in range(chunk):
            acc += table[i & 511]
        iterations += chunk
    elapsed = duration + (time.perf_counter() - deadline)
    return iterations / elapsed


def peak_rss_kilobytes() -> Optional[int]:
    """Peak resident set size of this process, in kilobytes (None if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        return usage // 1024
    return usage


def next_report_index(directories: Sequence[str]) -> int:
    """1 + the highest ``BENCH_<n>.json`` index found in ``directories``."""
    highest = 0
    for directory in directories:
        try:
            names = os.listdir(directory)
        except OSError:
            continue
        for name in names:
            match = _BENCH_NAME.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
    return highest + 1


# ----------------------------------------------------------------------
# comparison (the CI perf gate)
# ----------------------------------------------------------------------


@dataclass
class ScenarioDelta:
    """Rate change of one scenario between two reports."""

    name: str
    baseline_rate: float
    current_rate: float
    change_fraction: float  # +0.25 = 25% faster, -0.25 = 25% slower
    normalized: bool

    def describe(self) -> str:
        direction = "faster" if self.change_fraction >= 0 else "slower"
        return (
            f"{self.name}: {self.baseline_rate:.4g} -> {self.current_rate:.4g} "
            f"({abs(self.change_fraction) * 100.0:.1f}% {direction}"
            + (", calibration-normalized)" if self.normalized else ")")
        )


@dataclass
class Comparison:
    """Outcome of diffing two reports."""

    deltas: List[ScenarioDelta]
    regressions: List[ScenarioDelta]
    missing_scenarios: List[str]
    new_scenarios: List[str]
    threshold: float

    @property
    def ok(self) -> bool:
        # Scenarios present in the baseline but absent from the current
        # report fail the gate too: a run that silently lost coverage
        # (e.g. the component benchmarks stopped importing) must not pass
        # just because nothing *comparable* regressed.
        return not self.regressions and not self.missing_scenarios

    def render(self) -> str:
        lines = [
            f"perf gate: threshold {self.threshold * 100.0:.0f}%, "
            f"{len(self.deltas)} scenarios compared, "
            f"{len(self.regressions)} regression(s)"
        ]
        lines.extend("  " + delta.describe() for delta in self.deltas)
        if self.missing_scenarios:
            lines.append("  MISSING from current report (fails the gate): "
                         + ", ".join(self.missing_scenarios))
        if self.new_scenarios:
            lines.append("  new in current report: " + ", ".join(self.new_scenarios))
        verdict = "OK" if self.ok else (
            "REGRESSION" if self.regressions else "LOST COVERAGE"
        )
        lines.append(f"perf gate verdict: {verdict}")
        return "\n".join(lines)


def compare_reports(
    baseline: BenchReport,
    current: BenchReport,
    threshold: float = 0.25,
    normalize: bool = True,
) -> Comparison:
    """Diff two reports, flagging scenarios slower than ``threshold``.

    Rates are divided by each report's calibration score when
    ``normalize`` is true and both reports carry one, so a committed
    baseline from one machine gates a run on another.
    """
    if threshold <= 0:
        raise BenchReportError("comparison threshold must be positive")
    can_normalize = (
        normalize
        and baseline.calibration_score > 0
        and current.calibration_score > 0
    )
    deltas: List[ScenarioDelta] = []
    regressions: List[ScenarioDelta] = []
    current_names = {result.name for result in current.scenarios}
    for base_result in baseline.scenarios:
        cur_result = current.scenario(base_result.name)
        if cur_result is None:
            continue
        base_rate = base_result.rate
        cur_rate = cur_result.rate
        if can_normalize:
            base_rate /= baseline.calibration_score
            cur_rate /= current.calibration_score
        if base_rate <= 0:
            continue
        delta = ScenarioDelta(
            name=base_result.name,
            baseline_rate=base_rate,
            current_rate=cur_rate,
            change_fraction=cur_rate / base_rate - 1.0,
            normalized=can_normalize,
        )
        deltas.append(delta)
        if delta.change_fraction < -threshold:
            regressions.append(delta)
    baseline_names = {result.name for result in baseline.scenarios}
    return Comparison(
        deltas=deltas,
        regressions=regressions,
        missing_scenarios=sorted(baseline_names - current_names),
        new_scenarios=sorted(current_names - baseline_names),
        threshold=threshold,
    )
