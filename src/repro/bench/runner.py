"""The benchmark runner behind ``python -m repro.bench``.

:class:`BenchmarkRunner` executes the scenario matrix from
:mod:`repro.bench.scenarios`, times every scenario (best of ``repeats``
runs), hashes the resulting statistics as a determinism guard, and
assembles a :class:`~repro.bench.report.BenchReport` that is written as
the next ``BENCH_<n>.json`` in the performance trajectory.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Callable, List, Optional, Sequence

from repro.bench.report import (
    BenchReport,
    ScenarioResult,
    calibration_score,
    environment_fingerprint,
    next_report_index,
    peak_rss_kilobytes,
)
from repro.bench.scenarios import (
    ComponentScenario,
    SampledSweepScenario,
    ServiceScenario,
    SimulationScenario,
    StoreScenario,
    SweepScenario,
    component_scenarios,
    sampled_sweep_scenarios,
    service_scenarios,
    simulation_scenarios,
    store_scenarios,
    sweep_scenarios,
)

#: Progress sink for one-line status messages.
ProgressCallback = Callable[[str], None]


def _stats_digest(stats) -> str:
    payload = json.dumps(stats.to_dict(), sort_keys=True,
                         separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class BenchmarkRunner:
    """Runs the benchmark matrix and produces a :class:`BenchReport`.

    ``quick`` shrinks the instruction budgets (for CI); ``repeats`` is
    the number of timed runs per scenario, of which the best is reported
    (minimum wall time is the standard noise-robust estimator for
    deterministic workloads).
    """

    quick: bool = False
    repeats: int = 2
    include_components: bool = True
    name_filter: Optional[str] = None
    progress: Optional[ProgressCallback] = None
    #: Scenario overrides, mainly for tests; defaults to the full matrix.
    simulations: Optional[Sequence[SimulationScenario]] = None
    sweeps: Optional[Sequence[SweepScenario]] = None
    sampled_sweeps: Optional[Sequence[SampledSweepScenario]] = None
    services: Optional[Sequence[ServiceScenario]] = None
    stores: Optional[Sequence[StoreScenario]] = None
    components: Optional[Sequence[ComponentScenario]] = None
    results: List[ScenarioResult] = field(default_factory=list)

    # ------------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def _selected(self, scenarios: Sequence) -> List:
        if self.name_filter is None:
            return list(scenarios)
        return [s for s in scenarios if self.name_filter in s.name]

    def _time(self, run: Callable[[], object]) -> tuple[float, object]:
        """Best wall time over ``repeats`` runs, plus the last result."""
        best = float("inf")
        result: object = None
        for _ in range(max(1, self.repeats)):
            started = time.perf_counter()
            result = run()
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
        return best, result

    # ------------------------------------------------------------------

    def run_simulation(self, scenario: SimulationScenario) -> ScenarioResult:
        wall, stats = self._time(scenario.run)
        cycles = stats.cycles
        instructions = stats.committed_instructions
        return ScenarioResult(
            name=scenario.name,
            kind="simulation",
            wall_seconds=wall,
            repeats=max(1, self.repeats),
            cycles=cycles,
            instructions=instructions,
            cycles_per_second=cycles / wall if wall > 0 else 0.0,
            instructions_per_second=instructions / wall if wall > 0 else 0.0,
            stats_digest=_stats_digest(stats),
            metadata=scenario.metadata(),
        )

    def run_sweep(self, scenario: SweepScenario) -> ScenarioResult:
        """Time one sweep; the primary metric is points per second.

        A sweep is timed once (``repeats`` is ignored): it is long
        compared to single simulations and internally amortized, and the
        compare gate's calibration normalization absorbs machine-speed
        noise the same way it does for the other kinds.
        """
        started = time.perf_counter()
        outcome = scenario.run()
        wall = time.perf_counter() - started
        points = int(outcome["points"])
        metadata = scenario.metadata()
        metadata["scheduler_summary"] = outcome["summary"]
        metadata["points_per_minute"] = round(60.0 * points / wall, 1) if wall else 0.0
        return ScenarioResult(
            name=scenario.name,
            kind="sweep",
            wall_seconds=wall,
            repeats=1,
            operations=points,
            operations_per_second=points / wall if wall > 0 else 0.0,
            stats_digest=str(outcome["stats_digest"]),
            metadata=metadata,
        )

    def run_sampled_sweep(self, scenario: SampledSweepScenario) -> ScenarioResult:
        """Time one exact-vs-sampled sweep; the headline is the speedup.

        Timed once, like the other sweeps.  ``per_point_speedup`` (exact
        replay seconds over sampled seconds, summed across the matrix)
        lands in the metadata — it is a self-relative ratio, so it needs
        no calibration normalization and is what the committed
        trajectory's ≥5× claim refers to.
        """
        started = time.perf_counter()
        outcome = scenario.run()
        wall = time.perf_counter() - started
        points = int(outcome["points"])
        metadata = scenario.metadata()
        metadata["points_per_minute"] = round(60.0 * points / wall, 1) if wall else 0.0
        for key in ("exact_seconds", "sampled_seconds", "per_point_speedup",
                    "sampling", "summary"):
            metadata[key] = outcome[key]
        return ScenarioResult(
            name=scenario.name,
            kind="sweep",
            wall_seconds=wall,
            repeats=1,
            operations=points,
            operations_per_second=points / wall if wall > 0 else 0.0,
            stats_digest=str(outcome["stats_digest"]),
            metadata=metadata,
        )

    def run_service(self, scenario: ServiceScenario) -> ScenarioResult:
        """Time one service round trip; the metric is points per second.

        Like sweeps, a service scenario is timed once: it is internally
        amortized and the compare gate normalizes by calibration.  A
        scenario that runs several internal passes (the overhead
        comparisons) reports the wall of the pass its metric describes
        via ``wall_seconds_override``.
        """
        started = time.perf_counter()
        outcome = scenario.run()
        wall = time.perf_counter() - started
        wall = float(outcome.get("wall_seconds_override", wall))
        points = int(outcome["points"])
        metadata = scenario.metadata()
        metadata["job_counters"] = outcome["summary"]
        metadata["points_per_minute"] = round(60.0 * points / wall, 1) if wall else 0.0
        return ScenarioResult(
            name=scenario.name,
            kind="service",
            wall_seconds=wall,
            repeats=1,
            operations=points,
            operations_per_second=points / wall if wall > 0 else 0.0,
            stats_digest=str(outcome["stats_digest"]),
            metadata=metadata,
        )

    def run_store(self, scenario: StoreScenario) -> ScenarioResult:
        """Time one store workout; the metric is operations per second."""
        wall, outcome = self._time(scenario.run)
        operations = int(outcome["operations"])
        metadata = scenario.metadata()
        metadata["store_stats"] = outcome["store_stats"]
        return ScenarioResult(
            name=scenario.name,
            kind="store",
            wall_seconds=wall,
            repeats=max(1, self.repeats),
            operations=operations,
            operations_per_second=operations / wall if wall > 0 else 0.0,
            stats_digest=str(outcome["stats_digest"]),
            metadata=metadata,
        )

    def run_component(self, scenario: ComponentScenario) -> ScenarioResult:
        wall, operations = self._time(scenario.run)
        count = int(operations) if isinstance(operations, int) else 0
        return ScenarioResult(
            name=scenario.name,
            kind="component",
            wall_seconds=wall,
            repeats=max(1, self.repeats),
            operations=count,
            operations_per_second=count / wall if wall > 0 and count else None,
            metadata={"source": scenario.source},
        )

    def run(self, index: int) -> BenchReport:
        """Execute every selected scenario and assemble the report."""
        self.results = []
        simulations = self._selected(
            self.simulations if self.simulations is not None
            else simulation_scenarios(self.quick)
        )
        sweeps = self._selected(
            self.sweeps if self.sweeps is not None
            else sweep_scenarios(self.quick)
        )
        sampled_sweeps = self._selected(
            self.sampled_sweeps if self.sampled_sweeps is not None
            else sampled_sweep_scenarios(self.quick)
        )
        services = self._selected(
            self.services if self.services is not None
            else service_scenarios(self.quick)
        )
        stores = self._selected(
            self.stores if self.stores is not None
            else store_scenarios(self.quick)
        )
        components: Sequence[ComponentScenario] = []
        if self.include_components:
            components = self._selected(
                self.components if self.components is not None
                else component_scenarios(self.quick)
            )
        total = (len(simulations) + len(sweeps) + len(sampled_sweeps)
                 + len(services) + len(stores) + len(components))
        self._say(f"bench: {total} scenarios ({'quick' if self.quick else 'full'} "
                  f"matrix), {max(1, self.repeats)} repeats each")
        calibration = calibration_score()
        done = 0
        for scenario in simulations:
            result = self.run_simulation(scenario)
            self.results.append(result)
            done += 1
            self._say(f"[{done}/{total}] {result.name}: "
                      f"{result.cycles_per_second:,.0f} cycles/s "
                      f"({result.wall_seconds:.3f}s)")
        for scenario in sweeps:
            result = self.run_sweep(scenario)
            self.results.append(result)
            done += 1
            self._say(f"[{done}/{total}] {result.name}: "
                      f"{result.metadata['points_per_minute']:,} points/min "
                      f"({result.wall_seconds:.2f}s)")
        for scenario in sampled_sweeps:
            result = self.run_sampled_sweep(scenario)
            self.results.append(result)
            done += 1
            self._say(f"[{done}/{total}] {result.name}: "
                      f"{result.metadata['per_point_speedup']}x per-point "
                      f"speedup ({result.wall_seconds:.2f}s)")
        for scenario in services:
            result = self.run_service(scenario)
            self.results.append(result)
            done += 1
            self._say(f"[{done}/{total}] {result.name}: "
                      f"{result.metadata['points_per_minute']:,} points/min "
                      f"via HTTP ({result.wall_seconds:.2f}s)")
        for scenario in stores:
            result = self.run_store(scenario)
            self.results.append(result)
            done += 1
            self._say(f"[{done}/{total}] {result.name}: "
                      f"{result.operations_per_second:,.0f} store ops/s "
                      f"({result.wall_seconds:.2f}s)")
        for scenario in components:
            result = self.run_component(scenario)
            self.results.append(result)
            done += 1
            ops = (f"{result.operations_per_second:,.0f} ops/s"
                   if result.operations_per_second else f"{result.wall_seconds:.3f}s")
            self._say(f"[{done}/{total}] {result.name}: {ops}")
        environment = environment_fingerprint()
        environment["peak_rss_kb"] = peak_rss_kilobytes()
        return BenchReport(
            index=index,
            created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            quick=self.quick,
            environment=environment,
            calibration_score=calibration,
            scenarios=self.results,
        )


def run_and_save(
    output_dir: str,
    quick: bool = False,
    repeats: int = 2,
    index: Optional[int] = None,
    index_dirs: Sequence[str] = (),
    name_filter: Optional[str] = None,
    include_components: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> tuple[BenchReport, str]:
    """Run the matrix and write ``BENCH_<n>.json``; returns (report, path).

    The index is chosen as 1 + the highest existing report in
    ``output_dir`` and any extra ``index_dirs`` (typically the repository
    root, so CI runs continue the committed trajectory).
    """
    resolved = index if index is not None else next_report_index(
        [output_dir, *index_dirs]
    )
    runner = BenchmarkRunner(
        quick=quick,
        repeats=repeats,
        include_components=include_components,
        name_filter=name_filter,
        progress=progress,
    )
    report = runner.run(resolved)
    path = report.save(output_dir)
    return report, path
