"""The fixed benchmark matrix executed by :mod:`repro.bench`.

Two kinds of scenarios:

* **simulation scenarios** — end-to-end runs of the cycle-level
  simulator: synthetic profiles × register-file architectures ×
  instruction budgets.  The ``headline`` scenario (gcc on the paper's
  register file cache) is the number the performance work is judged by.
* **component scenarios** — microbenchmarks of the simulator's building
  blocks, reused from the repository's ``benchmarks/`` pytest-benchmark
  suite via a small timing shim, so the same kernels back both harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.experiments.common import (
    OneLevelBankedFactory,
    RegisterFileCacheFactory,
    SingleBankedFactory,
)
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Extra stream slack so the pipeline never drains before the commit cap.
_STREAM_SLACK = 1.5


@dataclass(frozen=True)
class SimulationScenario:
    """One (profile, architecture, instruction budget) simulation."""

    name: str
    profile: str
    factory: Callable[[], object]
    instructions: int
    architecture: str
    collect_occupancy: bool = False
    headline: bool = False

    def run(self) -> SimulationStats:
        workload = SyntheticWorkload(get_profile(self.profile))
        config = ProcessorConfig(
            max_instructions=self.instructions,
            collect_occupancy=self.collect_occupancy,
        )
        stream = workload.instructions(int(self.instructions * _STREAM_SLACK))
        return simulate(stream, self.factory, config, benchmark_name=self.profile)

    def metadata(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "architecture": self.architecture,
            "instructions": self.instructions,
            "collect_occupancy": self.collect_occupancy,
            "headline": self.headline,
        }


@dataclass(frozen=True)
class ComponentScenario:
    """One microbenchmark kernel borrowed from ``benchmarks/``."""

    name: str
    source: str  # qualified name of the reused benchmark function
    runner: Callable[[], int] = field(compare=False)

    def run(self) -> int:
        """Execute the kernel once; returns its operation count."""
        return self.runner()


#: The architectures swept by the simulation matrix.
_ARCHITECTURES: Dict[str, Callable[[], object]] = {
    "1-cycle": SingleBankedFactory(latency=1, bypass_levels=1,
                                   name="1-cycle single-banked"),
    "2-cycle-1-bypass": SingleBankedFactory(
        latency=2, bypass_levels=1, name="2-cycle single-banked, 1 bypass"),
    "one-level-banked": OneLevelBankedFactory(
        num_banks=4, read_ports_per_bank=2, write_ports_per_bank=2),
    "register-file-cache": RegisterFileCacheFactory(),
}

#: The headline architecture: the paper's proposal with limited resources.
_HEADLINE_FACTORY = RegisterFileCacheFactory(
    upper_read_ports=4, upper_write_ports=2, lower_write_ports=4, buses=2,
)


def simulation_scenarios(quick: bool = False) -> List[SimulationScenario]:
    """The simulation matrix (reduced budgets in ``quick`` mode)."""
    headline_budget = 4000 if quick else 12000
    matrix_budget = 1500 if quick else 6000
    scenarios = [
        SimulationScenario(
            name="headline/gcc/register-file-cache",
            profile="gcc",
            factory=_HEADLINE_FACTORY,
            instructions=headline_budget,
            architecture="register file cache (4R/2W upper, 2 buses)",
            headline=True,
        )
    ]
    for arch_key, factory in _ARCHITECTURES.items():
        for profile in ("gcc", "swim"):
            scenarios.append(
                SimulationScenario(
                    name=f"matrix/{profile}/{arch_key}",
                    profile=profile,
                    factory=factory,
                    instructions=matrix_budget,
                    architecture=arch_key,
                )
            )
    scenarios.append(
        SimulationScenario(
            name="matrix/gcc/register-file-cache/occupancy",
            profile="gcc",
            factory=_ARCHITECTURES["register-file-cache"],
            instructions=matrix_budget,
            architecture="register-file-cache",
            collect_occupancy=True,
        )
    )
    return scenarios


def headline_scenario(quick: bool = False) -> SimulationScenario:
    """The scenario the ≥1.5× cycles/sec acceptance target refers to."""
    return next(s for s in simulation_scenarios(quick) if s.headline)


# ----------------------------------------------------------------------
# component microbenchmarks, reused from benchmarks/bench_components.py
# ----------------------------------------------------------------------


class _OnceShim:
    """Minimal stand-in for the pytest-benchmark ``benchmark`` fixture.

    The functions in ``benchmarks/bench_components.py`` call
    ``benchmark(fn)`` and assert on the returned value; this shim runs
    the kernel exactly once, hands the result back to that assertion and
    records it, so the bench runner can do its own repeat/timing policy
    around the whole call.
    """

    def __init__(self) -> None:
        self.result: Optional[int] = None

    def __call__(self, fn: Callable[[], int]) -> int:
        self.result = fn()
        return self.result


def _load_component_benchmarks() -> Optional[object]:
    """Import ``benchmarks.bench_components`` when the repo root allows it.

    The ``benchmarks/`` tree sits next to ``src/`` rather than inside the
    package, so it is importable when running from a repository checkout
    but not from an installed wheel; component scenarios simply drop out
    in the latter case.
    """
    try:
        from benchmarks import bench_components
    except ImportError:
        return None
    return bench_components


def component_scenarios(quick: bool = False) -> List[ComponentScenario]:
    """Microbenchmark scenarios (empty when ``benchmarks/`` is absent)."""
    module = _load_component_benchmarks()
    if module is None:
        return []
    names = [
        "bench_workload_generation",
        "bench_gshare_prediction_throughput",
        "bench_dcache_accesses",
        "bench_pseudo_lru_operations",
        "bench_register_file_cache_writeback_path",
    ]
    scenarios: List[ComponentScenario] = []
    for name in names:
        fn = getattr(module, name, None)
        if fn is None:
            continue
        short = name.removeprefix("bench_")

        def runner(fn=fn) -> int:
            shim = _OnceShim()
            fn(shim)
            return shim.result if shim.result is not None else 0

        scenarios.append(
            ComponentScenario(
                name=f"component/{short}",
                source=f"benchmarks.bench_components.{name}",
                runner=runner,
            )
        )
    return scenarios


def scenario_overview(quick: bool = False) -> List[str]:
    """Human-readable one-liners for ``python -m repro.bench --list``."""
    lines = []
    for sim in simulation_scenarios(quick):
        tag = " [headline]" if sim.headline else ""
        lines.append(
            f"{sim.name}: {sim.instructions} instructions on "
            f"{sim.architecture}{tag}"
        )
    for comp in component_scenarios(quick):
        lines.append(f"{comp.name}: reuses {comp.source}")
    return lines


def with_budget(scenario: SimulationScenario, instructions: int) -> SimulationScenario:
    """Copy of ``scenario`` with a different instruction budget."""
    return replace(scenario, instructions=instructions)
