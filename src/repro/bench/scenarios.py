"""The fixed benchmark matrix executed by :mod:`repro.bench`.

Three kinds of scenarios:

* **simulation scenarios** — end-to-end runs of the cycle-level
  simulator: synthetic profiles × register-file architectures ×
  instruction budgets.  The ``headline`` scenario (gcc on the paper's
  register file cache) is the number the single-run performance work is
  judged by.
* **sweep scenarios** — a figure-style sweep (one workload through a
  matrix of register-file architectures × register budgets) executed
  through the experiment scheduler, measured in points/minute.  The
  ``replay`` variant exercises the trace-once/replay-many engine, the
  ``live`` variant the per-point live frontend it replaced — their ratio
  is the sweep-throughput headline.
* **service scenarios** — a figure plan pushed through the sweep
  service's full HTTP path (submit via :class:`ServiceClient`, execute
  on the service's :class:`~repro.experiments.scheduler.SweepEngine`,
  poll to completion), measured in points/minute — the perf gate's view
  of the :mod:`repro.service` subsystem.
* **store scenarios** — the sharded segment-log store hammered
  directly (writes, re-reads, deletes, compaction, a cold reopen),
  measured in store operations/second — the perf gate's view of the
  :mod:`repro.storage` subsystem every cache hit rides on.
* **component scenarios** — microbenchmarks of the simulator's building
  blocks, reused from the repository's ``benchmarks/`` pytest-benchmark
  suite via a small timing shim, so the same kernels back both harnesses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.experiments.common import (
    OneLevelBankedFactory,
    RegisterFileCacheFactory,
    SingleBankedFactory,
)
from repro.experiments.scheduler import SimulationPoint, execute_points
from repro.experiments.store import ResultStore
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Extra stream slack so the pipeline never drains before the commit cap.
_STREAM_SLACK = 1.5


@dataclass(frozen=True)
class SimulationScenario:
    """One (profile, architecture, instruction budget) simulation."""

    name: str
    profile: str
    factory: Callable[[], object]
    instructions: int
    architecture: str
    collect_occupancy: bool = False
    headline: bool = False

    def run(self) -> SimulationStats:
        workload = SyntheticWorkload(get_profile(self.profile))
        config = ProcessorConfig(
            max_instructions=self.instructions,
            collect_occupancy=self.collect_occupancy,
        )
        stream = workload.instructions(int(self.instructions * _STREAM_SLACK))
        return simulate(stream, self.factory, config, benchmark_name=self.profile)

    def metadata(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "architecture": self.architecture,
            "instructions": self.instructions,
            "collect_occupancy": self.collect_occupancy,
            "headline": self.headline,
        }


@dataclass(frozen=True)
class ComponentScenario:
    """One microbenchmark kernel borrowed from ``benchmarks/``."""

    name: str
    source: str  # qualified name of the reused benchmark function
    runner: Callable[[], int] = field(compare=False)

    def run(self) -> int:
        """Execute the kernel once; returns its operation count."""
        return self.runner()


#: The architectures swept by the simulation matrix.
_ARCHITECTURES: Dict[str, Callable[[], object]] = {
    "1-cycle": SingleBankedFactory(latency=1, bypass_levels=1,
                                   name="1-cycle single-banked"),
    "2-cycle-1-bypass": SingleBankedFactory(
        latency=2, bypass_levels=1, name="2-cycle single-banked, 1 bypass"),
    "one-level-banked": OneLevelBankedFactory(
        num_banks=4, read_ports_per_bank=2, write_ports_per_bank=2),
    "register-file-cache": RegisterFileCacheFactory(),
}

#: The headline architecture: the paper's proposal with limited resources.
_HEADLINE_FACTORY = RegisterFileCacheFactory(
    upper_read_ports=4, upper_write_ports=2, lower_write_ports=4, buses=2,
)


def simulation_scenarios(quick: bool = False) -> List[SimulationScenario]:
    """The simulation matrix (reduced budgets in ``quick`` mode)."""
    headline_budget = 4000 if quick else 12000
    matrix_budget = 1500 if quick else 6000
    scenarios = [
        SimulationScenario(
            name="headline/gcc/register-file-cache",
            profile="gcc",
            factory=_HEADLINE_FACTORY,
            instructions=headline_budget,
            architecture="register file cache (4R/2W upper, 2 buses)",
            headline=True,
        )
    ]
    for arch_key, factory in _ARCHITECTURES.items():
        for profile in ("gcc", "swim"):
            scenarios.append(
                SimulationScenario(
                    name=f"matrix/{profile}/{arch_key}",
                    profile=profile,
                    factory=factory,
                    instructions=matrix_budget,
                    architecture=arch_key,
                )
            )
    scenarios.append(
        SimulationScenario(
            name="matrix/gcc/register-file-cache/occupancy",
            profile="gcc",
            factory=_ARCHITECTURES["register-file-cache"],
            instructions=matrix_budget,
            architecture="register-file-cache",
            collect_occupancy=True,
        )
    )
    return scenarios


def headline_scenario(quick: bool = False) -> SimulationScenario:
    """The scenario the ≥1.5× cycles/sec acceptance target refers to."""
    return next(s for s in simulation_scenarios(quick) if s.headline)


# ----------------------------------------------------------------------
# sweep scenarios (trace-once / replay-many engine)
# ----------------------------------------------------------------------

#: The figure-style sweep matrix: every register-file family of the
#: paper (three monolithic timings, one-level banked, the register file
#: cache across caching/fetch policies and a port-constrained point).
_SWEEP_ARCHITECTURES: Dict[str, Callable[[], object]] = {
    "mono-1c": SingleBankedFactory(
        latency=1, bypass_levels=1, name="1-cycle single-banked"),
    "mono-2c-full-bypass": SingleBankedFactory(
        latency=2, bypass_levels=2, name="2-cycle single-banked, full bypass"),
    "mono-2c-1-bypass": SingleBankedFactory(
        latency=2, bypass_levels=1, name="2-cycle single-banked, 1 bypass"),
    "banked-4x2r2w": OneLevelBankedFactory(
        num_banks=4, read_ports_per_bank=2, write_ports_per_bank=2),
    "rfc-non-bypass": RegisterFileCacheFactory(
        caching="non-bypass", fetch="prefetch-first-pair"),
    "rfc-ready": RegisterFileCacheFactory(
        caching="ready", fetch="prefetch-first-pair"),
    "rfc-always-demand": RegisterFileCacheFactory(
        caching="always", fetch="fetch-on-demand"),
    "rfc-ported": RegisterFileCacheFactory(
        upper_read_ports=4, upper_write_ports=2, lower_write_ports=4, buses=2),
}

#: Physical-register budgets swept per architecture (figure-1 style).
_SWEEP_REGISTER_BUDGETS = (128, 64)


@dataclass(frozen=True)
class SweepScenario:
    """One figure-style sweep through the experiment scheduler.

    All points share one (workload, frontend configuration), so the
    trace-replay engine records once and replays the whole matrix; the
    ``live`` variant runs the identical matrix with per-point workload
    generation and a live frontend.  The primary metric is
    points/minute over the full sweep, scheduler included.
    """

    name: str
    profile: str
    instructions: int
    use_trace_replay: bool
    headline_sweep: bool = False

    def points(self) -> List[SimulationPoint]:
        matrix: List[SimulationPoint] = []
        for budget in _SWEEP_REGISTER_BUDGETS:
            config = ProcessorConfig(
                max_instructions=self.instructions,
                num_int_physical=budget,
                num_fp_physical=budget,
            )
            for arch_key, factory in _SWEEP_ARCHITECTURES.items():
                matrix.append(
                    SimulationPoint(
                        benchmark=self.profile,
                        factory=factory,
                        architecture=f"{arch_key}/r{budget}",
                        config=config,
                    )
                )
        return matrix

    def run(self) -> Dict[str, object]:
        """Execute the sweep cold (fresh stores) and digest every result."""
        points = self.points()
        store = ResultStore()
        summary = execute_points(
            points, store, jobs=1, use_trace_replay=self.use_trace_replay
        )
        digest = hashlib.sha256()
        for point in points:
            stats = store.get(point.store_key())
            payload = json.dumps(stats.to_dict(), sort_keys=True,
                                 separators=(",", ":"), default=str)
            digest.update(payload.encode("utf-8"))
        return {
            "points": len(points),
            "summary": summary,
            "stats_digest": digest.hexdigest(),
        }

    def metadata(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "instructions": self.instructions,
            "points": len(self.points()),
            "architectures": len(_SWEEP_ARCHITECTURES),
            "register_budgets": list(_SWEEP_REGISTER_BUDGETS),
            "use_trace_replay": self.use_trace_replay,
            "headline_sweep": self.headline_sweep,
        }


@dataclass(frozen=True)
class SampledSweepScenario:
    """Exact-vs-sampled replay of one figure-style architecture matrix.

    One decoded trace is recorded and every architecture replays it
    twice: once exactly (every instruction gets detailed timing) and
    once through the systematic-sampling engine (detailed windows at a
    fixed stride, functional warm-up between them, IPC as mean ± CI).
    The committed metric is ``per_point_speedup`` — exact seconds over
    sampled seconds, averaged across the matrix — the factor the
    sampling engine buys per sweep point; the accuracy side of the same
    trade is gated separately by ``repro.validate --sampled-accuracy``.
    """

    name: str
    profile: str
    instructions: int
    sample: str  # SamplingSpec text, "STRIDE:WINDOW[:WARMUP]"
    architectures: tuple  # keys into _SWEEP_ARCHITECTURES
    register_budget: int = 128

    def run(self) -> Dict[str, object]:
        import time

        from repro.sampling import parse_sampling, sampled_simulate
        from repro.trace import record_trace, replay_simulate

        spec = parse_sampling(self.sample)
        config = ProcessorConfig(
            max_instructions=self.instructions,
            num_int_physical=self.register_budget,
            num_fp_physical=self.register_budget,
        )
        workload = SyntheticWorkload(get_profile(self.profile))
        trace = record_trace(
            self.profile,
            workload.instructions(int(self.instructions * _STREAM_SLACK)),
            config,
            {
                "kind": "bench-sampled-sweep",
                "benchmark": self.profile,
                "instructions": self.instructions,
            },
        )
        digest = hashlib.sha256()
        exact_seconds = 0.0
        sampled_seconds = 0.0
        for arch_key in self.architectures:
            factory = _SWEEP_ARCHITECTURES[arch_key]
            started = time.perf_counter()
            exact = replay_simulate(trace, factory, config,
                                    benchmark_name=self.profile)
            exact_seconds += time.perf_counter() - started
            started = time.perf_counter()
            sampled = sampled_simulate(trace, factory, config, spec,
                                       benchmark_name=self.profile)
            sampled_seconds += time.perf_counter() - started
            for stats in (exact, sampled):
                payload = json.dumps(stats.to_dict(), sort_keys=True,
                                     separators=(",", ":"), default=str)
                digest.update(payload.encode("utf-8"))
        points = len(self.architectures)
        return {
            "points": points,
            "summary": {
                "architectures": list(self.architectures),
                "exact_points": points,
                "sampled_points": points,
            },
            "stats_digest": digest.hexdigest(),
            "exact_seconds": round(exact_seconds, 3),
            "sampled_seconds": round(sampled_seconds, 3),
            "per_point_speedup": round(
                exact_seconds / sampled_seconds, 2
            ) if sampled_seconds > 0 else 0.0,
            "sampling": spec.to_payload(),
        }

    def metadata(self) -> Dict[str, object]:
        return {
            "profile": self.profile,
            "instructions": self.instructions,
            "sample": self.sample,
            "architectures": list(self.architectures),
            "register_budget": self.register_budget,
        }


def sampled_sweep_scenarios(quick: bool = False) -> List[SampledSweepScenario]:
    """Exact-vs-sampled comparison sweeps.

    The instruction budget stays at sampling scale even in ``quick``
    mode — systematic sampling needs a stream long enough to hold its
    stride plan — so quick mode shrinks the architecture matrix
    instead.  The spec (stride 3000, window 200, warm-up 200) keeps
    ~7% of instructions detailed, which is where the ≥5× per-point
    speedup the trajectory commits to comes from.
    """
    architectures = (
        ("mono-1c", "mono-2c-1-bypass", "rfc-ported")
        if quick else tuple(_SWEEP_ARCHITECTURES)
    )
    return [
        SampledSweepScenario(
            name="sweep/gcc/sampled-vs-exact",
            profile="gcc",
            instructions=24000,
            sample="3000:200:200",
            architectures=architectures,
        )
    ]


def sweep_scenarios(quick: bool = False) -> List[SweepScenario]:
    """The sweep matrices in both execution modes.

    Two benchmarks bracket the engine's win: ``fpppp`` (FP; the heaviest
    workload generation, so trace-once amortizes the most — the sweep
    headline) and ``gcc`` (INT; generation-light, the conservative end).
    Each also runs in ``live`` mode — the identical matrix through the
    pre-trace-engine execution model — so every report carries its own
    like-for-like ratio.
    """
    budget = 1500 if quick else 6000
    scenarios = []
    for profile, headline in (("fpppp", True), ("gcc", False)):
        for replay in (True, False):
            mode = "replay" if replay else "live"
            scenarios.append(
                SweepScenario(
                    name=f"sweep/{profile}/figure-matrix-{mode}",
                    profile=profile,
                    instructions=budget,
                    use_trace_replay=replay,
                    headline_sweep=headline and replay,
                )
            )
    return scenarios


# ----------------------------------------------------------------------
# service scenarios (submit -> complete through the HTTP sweep service)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ServiceScenario:
    """One figure plan through the sweep service's full HTTP path.

    Each run boots a cold in-process service (fresh stores, a free
    port), submits the plan with the client, polls it to completion and
    tears the service down — so the measured points/minute includes
    admission, queueing, scheduling and result assembly, everything a
    real client pays on top of the raw engine.
    """

    name: str
    figure: str
    instructions: int
    warmup_instructions: int
    benchmarks: tuple

    def run(self) -> Dict[str, object]:
        import shutil
        import tempfile
        import threading

        from repro.errors import SimulationError
        from repro.service.app import ServiceApp
        from repro.service.client import ServiceClient
        from repro.service.server import build_server

        tmp = tempfile.mkdtemp(prefix="repro-bench-service-")
        app = ServiceApp(cache_dir=tmp, jobs=1, job_concurrency=1)
        server = build_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        app.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}"
            )
            job = client.submit({
                "figure": self.figure,
                "settings": {
                    "instructions": self.instructions,
                    "warmup_instructions": self.warmup_instructions,
                    "benchmarks": list(self.benchmarks),
                },
            })
            final = client.watch(job["id"], interval=0.05, timeout=1800)
            if final.get("state") != "completed":
                raise SimulationError(
                    f"service bench job did not complete: {final.get('error')}"
                )
            result = client.result(job["id"])
            digest = hashlib.sha256(
                json.dumps(result["result"], sort_keys=True,
                           separators=(",", ":"), default=str).encode("utf-8")
            ).hexdigest()
            return {
                "points": int(final["counters"]["unique"]),
                "summary": final["counters"],
                "stats_digest": digest,
            }
        finally:
            server.shutdown()
            server.server_close()
            app.stop()
            shutil.rmtree(tmp, ignore_errors=True)

    def metadata(self) -> Dict[str, object]:
        return {
            "figure": self.figure,
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "benchmarks": list(self.benchmarks),
            "transport": "http",
        }


@dataclass(frozen=True)
class ResilienceOverheadScenario:
    """The chaos seams must cost nothing when no injector is installed.

    Runs the same figure plan through the service twice on cold cache
    trees: once with the seams disabled (the production default) and
    once with a zero-fault injector installed (every seam guard takes
    its slow path).  The scenario's throughput metric is the *disabled*
    pass — directly comparable to ``service_throughput`` numbers such
    as BENCH_6's — while the instrumented/disabled wall ratio lands in
    the metadata.  Both passes must produce byte-identical results; a
    divergence fails the run outright.
    """

    name: str
    figure: str
    instructions: int
    warmup_instructions: int
    benchmarks: tuple

    def _one_pass(self) -> Dict[str, object]:
        import shutil
        import tempfile
        import threading
        import time as time_mod

        from repro.errors import SimulationError
        from repro.service.app import ServiceApp
        from repro.service.client import ServiceClient
        from repro.service.server import build_server

        tmp = tempfile.mkdtemp(prefix="repro-bench-resilience-")
        app = ServiceApp(cache_dir=tmp, jobs=1, job_concurrency=1)
        server = build_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        app.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}"
            )
            started = time_mod.perf_counter()
            job = client.submit({
                "figure": self.figure,
                "settings": {
                    "instructions": self.instructions,
                    "warmup_instructions": self.warmup_instructions,
                    "benchmarks": list(self.benchmarks),
                },
            })
            final = client.watch(job["id"], interval=0.05, timeout=1800)
            wall = time_mod.perf_counter() - started
            if final.get("state") != "completed":
                raise SimulationError(
                    f"resilience bench job did not complete: "
                    f"{final.get('error')}"
                )
            result = client.result(job["id"])
            digest = hashlib.sha256(
                json.dumps(result["result"], sort_keys=True,
                           separators=(",", ":"), default=str).encode("utf-8")
            ).hexdigest()
            return {
                "points": int(final["counters"]["unique"]),
                "wall_seconds": wall,
                "digest": digest,
            }
        finally:
            server.shutdown()
            server.server_close()
            app.stop()
            shutil.rmtree(tmp, ignore_errors=True)

    def run(self) -> Dict[str, object]:
        from repro.chaos import seams
        from repro.chaos.faults import FaultInjector
        from repro.errors import SimulationError

        if seams.installed():
            raise SimulationError(
                "resilience bench needs the chaos seams disabled at entry"
            )
        disabled = self._one_pass()
        seams.install(FaultInjector([]))
        try:
            instrumented = self._one_pass()
        finally:
            seams.uninstall()
        if disabled["digest"] != instrumented["digest"]:
            raise SimulationError(
                "instrumented (no-fault) service pass diverged from the "
                "plain pass — the seams are not transparent"
            )
        ratio = (
            instrumented["wall_seconds"] / disabled["wall_seconds"]
            if disabled["wall_seconds"] else 0.0
        )
        return {
            "points": disabled["points"],
            "summary": {
                "disabled_wall_seconds": round(disabled["wall_seconds"], 3),
                "instrumented_wall_seconds": round(
                    instrumented["wall_seconds"], 3
                ),
                "instrumented_over_disabled": round(ratio, 3),
            },
            "stats_digest": disabled["digest"],
        }

    def metadata(self) -> Dict[str, object]:
        return {
            "figure": self.figure,
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "benchmarks": list(self.benchmarks),
            "transport": "http",
            "passes": ["seams-disabled", "noop-injector"],
        }


@dataclass(frozen=True)
class ObsOverheadScenario:
    """Telemetry must be nearly free: spans + histograms + the event log.

    Runs the same figure plan through the service on cold cache trees
    with full telemetry (the production default — metrics registry,
    span event log, SSE bus) and with a bare registry (no event log,
    no bus), the cheapest configuration the app supports.  The passes
    alternate bare/full for ``pairs`` rounds and the best wall per
    side is compared — the interleaved best-of estimator from
    ``docs/benchmarking.md``, because a single ~1 s service wall
    carries enough scheduler and watch-poll noise to swamp a 5%
    ratio.  The throughput metric is the *full-telemetry* wall — that
    is what production pays — and the full/bare ratio lands in the
    summary next to the ``threshold`` it is expected to stay under
    (1.05×).  Every pass must produce byte-identical results.
    """

    name: str
    figure: str
    instructions: int
    warmup_instructions: int
    benchmarks: tuple

    #: Expected upper bound on the full/bare wall ratio.
    threshold: float = 1.05
    #: Alternating bare/full rounds; best wall per side is compared.
    pairs: int = 3

    def _one_pass(self, full_telemetry: bool) -> Dict[str, object]:
        import shutil
        import tempfile
        import threading
        import time as time_mod

        from repro.errors import SimulationError
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.telemetry import Telemetry
        from repro.service.app import ServiceApp
        from repro.service.client import ServiceClient
        from repro.service.server import build_server

        tmp = tempfile.mkdtemp(prefix="repro-bench-obs-")
        telemetry = (
            None if full_telemetry  # the app builds log + bus itself
            else Telemetry(registry=MetricsRegistry())
        )
        app = ServiceApp(cache_dir=tmp, jobs=1, job_concurrency=1,
                         telemetry=telemetry)
        server = build_server(app, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        app.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_address[1]}"
            )
            started = time_mod.perf_counter()
            job = client.submit({
                "figure": self.figure,
                "settings": {
                    "instructions": self.instructions,
                    "warmup_instructions": self.warmup_instructions,
                    "benchmarks": list(self.benchmarks),
                },
            })
            final = client.watch(job["id"], interval=0.05, timeout=1800)
            wall = time_mod.perf_counter() - started
            if final.get("state") != "completed":
                raise SimulationError(
                    f"obs bench job did not complete: {final.get('error')}"
                )
            result = client.result(job["id"])
            digest = hashlib.sha256(
                json.dumps(result["result"], sort_keys=True,
                           separators=(",", ":"), default=str).encode("utf-8")
            ).hexdigest()
            return {
                "points": int(final["counters"]["unique"]),
                "wall_seconds": wall,
                "digest": digest,
            }
        finally:
            server.shutdown()
            server.server_close()
            app.stop()
            shutil.rmtree(tmp, ignore_errors=True)

    def run(self) -> Dict[str, object]:
        from repro.errors import SimulationError

        bare_walls, full_walls = [], []
        full = None
        digest = None
        for _ in range(max(1, self.pairs)):
            bare = self._one_pass(full_telemetry=False)
            full = self._one_pass(full_telemetry=True)
            if digest is None:
                digest = bare["digest"]
            if bare["digest"] != digest or full["digest"] != digest:
                raise SimulationError(
                    "full-telemetry service pass diverged from the bare-"
                    "registry pass — observability is not transparent"
                )
            bare_walls.append(bare["wall_seconds"])
            full_walls.append(full["wall_seconds"])
        best_bare, best_full = min(bare_walls), min(full_walls)
        ratio = best_full / best_bare if best_bare else 0.0
        return {
            "points": full["points"],
            "wall_seconds_override": best_full,
            "summary": {
                "bare_wall_seconds": round(best_bare, 3),
                "full_wall_seconds": round(best_full, 3),
                "full_over_bare": round(ratio, 3),
                "pairs": max(1, self.pairs),
                "threshold": self.threshold,
                "within_threshold": ratio <= self.threshold,
            },
            "stats_digest": digest,
        }

    def metadata(self) -> Dict[str, object]:
        return {
            "figure": self.figure,
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "benchmarks": list(self.benchmarks),
            "transport": "http",
            "passes": ["bare-registry", "full-telemetry"],
        }


def service_scenarios(quick: bool = False) -> List[object]:
    """The service-path scenarios (quick-eligible, so CI gates them too)."""
    return [
        ServiceScenario(
            name="service_throughput/figure6",
            figure="figure6",
            instructions=1500 if quick else 6000,
            warmup_instructions=300 if quick else 2000,
            benchmarks=("gcc", "swim"),
        ),
        ResilienceOverheadScenario(
            name="resilience_overhead/figure6",
            figure="figure6",
            instructions=1500 if quick else 6000,
            warmup_instructions=300 if quick else 2000,
            benchmarks=("gcc",),
        ),
        # Deliberately NOT shrunk under --quick: on a sub-second job the
        # client's 50 ms watch-poll quantisation swamps the ratio being
        # measured; the full-size plan keeps the signal above the noise.
        ObsOverheadScenario(
            name="obs_overhead/figure6",
            figure="figure6",
            instructions=6000,
            warmup_instructions=2000,
            benchmarks=("gcc",),
        ),
    ]


# ----------------------------------------------------------------------
# store scenarios (sharded segment-log store, hammered directly)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StoreScenario:
    """One write/read/compact workout of the sharded segment-log store.

    The run writes ``entries`` deterministic values, re-reads the whole
    key space ``read_passes`` times, overwrites half the keys (creating
    dead bytes), deletes a quarter, compacts, and finally reopens the
    tree cold — the index rebuild every replica pays at startup.  The
    metric is store operations/second over the whole sequence; the
    digest hashes every byte read, so a payload corruption anywhere
    fails the determinism gate.
    """

    name: str
    entries: int
    value_bytes: int
    read_passes: int = 2

    def _key(self, index: int) -> str:
        return hashlib.sha256(f"bench-store-{index}".encode()).hexdigest()

    def _value(self, index: int, generation: int) -> bytes:
        seed = f"{self.name}:{index}:{generation}".encode()
        block = hashlib.sha256(seed).digest()
        repeated = block * (self.value_bytes // len(block) + 1)
        return repeated[: self.value_bytes]

    def run(self) -> Dict[str, object]:
        import shutil
        import tempfile

        from repro.storage.sharded import ShardedStore

        tmp = tempfile.mkdtemp(prefix="repro-bench-store-")
        digest = hashlib.sha256()
        operations = 0
        try:
            store = ShardedStore(tmp, num_shards=16)
            for index in range(self.entries):
                store.put(self._key(index), self._value(index, 0))
            operations += self.entries
            for _ in range(self.read_passes):
                for index in range(self.entries):
                    digest.update(store.get(self._key(index)) or b"")
                operations += self.entries
            for index in range(0, self.entries, 2):  # dead bytes to compact
                store.put(self._key(index), self._value(index, 1))
                operations += 1
            for index in range(0, self.entries, 4):
                store.delete(self._key(index))
                operations += 1
            store.compact()
            operations += 1
            stats = store.stats()  # counters of the instance that did the work
            reopened = ShardedStore(tmp, num_shards=16)  # cold index rebuild
            for index in range(self.entries):
                digest.update(reopened.get(self._key(index)) or b"")
            operations += self.entries
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        return {
            "operations": operations,
            "stats_digest": digest.hexdigest(),
            "store_stats": stats,
        }

    def metadata(self) -> Dict[str, object]:
        return {
            "entries": self.entries,
            "value_bytes": self.value_bytes,
            "read_passes": self.read_passes,
            "num_shards": 16,
        }


def store_scenarios(quick: bool = False) -> List[StoreScenario]:
    """The store-throughput scenario (quick-eligible, so CI gates it)."""
    return [
        StoreScenario(
            name="store_throughput/sharded-segment-log",
            entries=400 if quick else 2000,
            value_bytes=2048 if quick else 8192,
        )
    ]


# ----------------------------------------------------------------------
# component microbenchmarks, reused from benchmarks/bench_components.py
# ----------------------------------------------------------------------


class _OnceShim:
    """Minimal stand-in for the pytest-benchmark ``benchmark`` fixture.

    The functions in ``benchmarks/bench_components.py`` call
    ``benchmark(fn)`` and assert on the returned value; this shim runs
    the kernel exactly once, hands the result back to that assertion and
    records it, so the bench runner can do its own repeat/timing policy
    around the whole call.
    """

    def __init__(self) -> None:
        self.result: Optional[int] = None

    def __call__(self, fn: Callable[[], int]) -> int:
        self.result = fn()
        return self.result


def _load_component_benchmarks() -> Optional[object]:
    """Import ``benchmarks.bench_components`` when the repo root allows it.

    The ``benchmarks/`` tree sits next to ``src/`` rather than inside the
    package, so it is importable when running from a repository checkout
    but not from an installed wheel; component scenarios simply drop out
    in the latter case.
    """
    try:
        from benchmarks import bench_components
    except ImportError:
        return None
    return bench_components


def component_scenarios(quick: bool = False) -> List[ComponentScenario]:
    """Microbenchmark scenarios (empty when ``benchmarks/`` is absent)."""
    module = _load_component_benchmarks()
    if module is None:
        return []
    names = [
        "bench_workload_generation",
        "bench_gshare_prediction_throughput",
        "bench_dcache_accesses",
        "bench_pseudo_lru_operations",
        "bench_register_file_cache_writeback_path",
    ]
    scenarios: List[ComponentScenario] = []
    for name in names:
        fn = getattr(module, name, None)
        if fn is None:
            continue
        short = name.removeprefix("bench_")

        def runner(fn=fn) -> int:
            shim = _OnceShim()
            fn(shim)
            return shim.result if shim.result is not None else 0

        scenarios.append(
            ComponentScenario(
                name=f"component/{short}",
                source=f"benchmarks.bench_components.{name}",
                runner=runner,
            )
        )
    return scenarios


def scenario_overview(quick: bool = False) -> List[str]:
    """Human-readable one-liners for ``python -m repro.bench --list``."""
    lines = []
    for sim in simulation_scenarios(quick):
        tag = " [headline]" if sim.headline else ""
        lines.append(
            f"{sim.name}: {sim.instructions} instructions on "
            f"{sim.architecture}{tag}"
        )
    for sweep in sweep_scenarios(quick):
        tag = " [sweep headline]" if sweep.headline_sweep else ""
        mode = "trace replay" if sweep.use_trace_replay else "live frontend"
        lines.append(
            f"{sweep.name}: {len(sweep.points())} points x "
            f"{sweep.instructions} instructions via {mode}{tag}"
        )
    for sampled in sampled_sweep_scenarios(quick):
        lines.append(
            f"{sampled.name}: {len(sampled.architectures)} architectures x "
            f"{sampled.instructions} instructions, exact vs sampled "
            f"({sampled.sample})"
        )
    for service in service_scenarios(quick):
        lines.append(
            f"{service.name}: {service.figure} plan over "
            f"{'/'.join(service.benchmarks)} x {service.instructions} "
            f"instructions through the HTTP sweep service"
        )
    for store in store_scenarios(quick):
        lines.append(
            f"{store.name}: {store.entries} x {store.value_bytes}B entries "
            f"through the sharded segment-log store"
        )
    for comp in component_scenarios(quick):
        lines.append(f"{comp.name}: reuses {comp.source}")
    return lines


def with_budget(scenario: SimulationScenario, instructions: int) -> SimulationScenario:
    """Copy of ``scenario`` with a different instruction budget."""
    return replace(scenario, instructions=instructions)
