"""Deterministic fault injection and the chaos scenario harness.

The paper's core claim is that the register-file cache is architecturally
transparent under any timing perturbation; this package extends the same
discipline to the service infrastructure: under any injected fault the
fleet must produce bit-identical results or a clean, attributed failure
— never a hang, a steal loop, or silent data loss.

Layout:

* :mod:`repro.chaos.seams` — the injectable seam registry production
  code consults.  A seam is **disabled by default**: the check is one
  module-attribute load and an ``is None`` test, so the hot path pays
  nothing when chaos is off (proven by the ``resilience_overhead``
  bench scenario).
* :mod:`repro.chaos.faults` — :class:`~repro.chaos.faults.Fault` and the
  seeded :class:`~repro.chaos.faults.FaultInjector` that decides, fully
  deterministically for a given seed, which seam calls fail and how.
* :mod:`repro.chaos.harness` — boots a live in-process fleet (service
  apps + HTTP servers + real client), runs one scenario against it and
  asserts the global invariants.
* :mod:`repro.chaos.scenarios` — the scenario matrix: segment-log bit
  flips and torn tails, ENOSPC, hung/slow/crashing workers, replica
  SIGKILL mid-lease, clock skew on heartbeat renewal, dropped/delayed/
  reset HTTP responses, queue overload and poison jobs.

Run the matrix::

    python -m repro.chaos --seed 0 --quick
    python -m repro.chaos --scenarios enospc,replica-sigkill --json out.json

Keep this module import-light: production seams import
:mod:`repro.chaos.seams`, which must never pull the harness in.
"""

from repro.chaos.faults import Fault, FaultInjector
from repro.chaos.seams import installed

__all__ = ["Fault", "FaultInjector", "installed"]
