"""``python -m repro.chaos`` — run the deterministic chaos matrix.

Boots real service machinery, injects seeded faults through the chaos
seams, and asserts the global robustness invariants (no lost completed
job, single-flight accounting respected, fault-free runs byte-identical
to plain runs, every failure carries a structured cause, no hangs).

Exit status is 0 only when **every** scenario ran with **zero**
invariant violations — this is the contract the CI ``chaos`` job pins.

Examples::

    python -m repro.chaos --list
    python -m repro.chaos --seed 0 --quick
    python -m repro.chaos --seed 7 --scenarios enospc,replica-sigkill
    python -m repro.chaos --quick --json chaos-report.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.chaos.harness import run_matrix, summarize
from repro.chaos.scenarios import QUICK_SCENARIOS, SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic fault-injection matrix for the sweep "
                    "service: seeded faults against a live in-process "
                    "fleet, checked against the robustness invariants.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for every injected fault and corruption "
                             "(default: 0)")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated scenario names to run "
                             "(default: all, or the quick subset with "
                             "--quick)")
    parser.add_argument("--quick", action="store_true",
                        help="run the CI subset with smaller workloads "
                             "(still covers SIGKILL and ENOSPC)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write the machine-readable summary to "
                             "this file")
    parser.add_argument("--list", action="store_true",
                        help="list scenario names and exit")
    return parser


def _select(args) -> List[str]:
    if args.scenarios:
        names = [name.strip() for name in args.scenarios.split(",")
                 if name.strip()]
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            raise SystemExit(
                f"unknown scenario(s): {', '.join(unknown)} "
                f"(see --list)"
            )
        return names
    if args.quick:
        return list(QUICK_SCENARIOS)
    return list(SCENARIOS)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        quick = set(QUICK_SCENARIOS)
        for name, func in SCENARIOS.items():
            doc = (func.__doc__ or "").strip().splitlines()[0]
            marker = "*" if name in quick else " "
            print(f"  {marker} {name:<20} {doc}")
        print("\n  (* = in the --quick subset)")
        return 0

    names = _select(args)
    print(f"chaos: {len(names)} scenario(s), seed {args.seed}"
          f"{' (quick)' if args.quick else ''}")
    results = run_matrix(names, seed=args.seed, quick=args.quick,
                         progress=print)
    summary = summarize(results)

    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"chaos: wrote {args.json_path}")

    failed = summary["failed"]
    total = summary["total"]
    if failed:
        print(f"\nchaos: {failed}/{total} scenario(s) VIOLATED invariants:")
        for line in summary["violations"]:
            print(f"  - {line}")
        return 1
    print(f"\nchaos: all {total} scenario(s) passed with zero invariant "
          f"violations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
