"""Seeded, deterministic fault specifications and the injector.

A :class:`Fault` names a seam, an action, and a *window* of matching
calls it fires on; a :class:`FaultInjector` owns a list of faults plus a
``random.Random(seed)`` and counts every seam call so that, for a given
seed and fault list, exactly the same calls fail in exactly the same way
on every run.

Actions fall in two groups:

* **raising** — ``enospc`` (``OSError(ENOSPC)``), ``oserror`` (generic
  ``OSError`` with a configurable errno) and ``crash``
  (:class:`ChaosFault`, a :class:`~repro.errors.ReproError`, so the
  service attributes it as a structured ``execution_error``).  These
  raise out of :meth:`FaultInjector.fire` into the production call.
* **advisory** — ``delay`` / ``hang`` sleep for ``delay_s`` seconds and
  return ``None``; ``drop`` and ``reset`` return the action string and
  the call site interprets it (the HTTP seam closes or resets the
  connection).  ``hang`` is a bounded stall, long relative to the
  scenario's deadlines/lease TTLs but never infinite, so a buggy
  resilience layer fails the scenario instead of wedging the harness.

Call counting is per seam name, under a lock (the HTTP seam fires from
server threads).  ``at`` is 1-based: ``Fault(seam="storage.append",
action="enospc", at=3)`` fires on the third append only; ``count=None``
keeps firing for every matching call from ``at`` onward (how ENOSPC
stays stuck until the scenario ends).
"""

from __future__ import annotations

import errno as _errno
import threading
import time
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError


class ChaosFault(ReproError):
    """An injected worker crash — attributed, never silent."""


#: Actions that raise out of the seam into production code.
RAISING_ACTIONS = ("enospc", "oserror", "crash")
#: Actions the call site interprets from fire()'s return value.
ADVISORY_ACTIONS = ("delay", "hang", "drop", "reset")


@dataclass
class Fault:
    """One injected failure: *what* goes wrong, *where*, and *when*."""

    seam: str
    action: str
    #: 1-based index of the first matching seam call that fires.
    at: int = 1
    #: How many consecutive matching calls fire; ``None`` = forever.
    count: Optional[int] = 1
    #: Sleep length for ``delay`` / ``hang`` actions, seconds.
    delay_s: float = 0.0
    #: errno for the ``oserror`` action (``enospc`` hardwires ENOSPC).
    errno_code: int = _errno.EIO
    message: str = "injected fault"
    #: Optional context-equality filter, e.g. ``{"route": "/jobs"}``:
    #: the fault only matches calls whose ``fire(**ctx)`` context
    #: contains every listed key with an equal value.
    match: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.action not in RAISING_ACTIONS + ADVISORY_ACTIONS:
            raise ValueError(f"unknown fault action: {self.action!r}")
        if self.at < 1:
            raise ValueError("fault 'at' is 1-based and must be >= 1")
        if self.count is not None and self.count < 1:
            raise ValueError("fault 'count' must be >= 1 (None = forever)")
        if self.delay_s < 0:
            raise ValueError("fault 'delay_s' must be >= 0")

    def matches(self, seam: str, nth: int, ctx: Dict[str, Any]) -> bool:
        """Whether this fault fires on the *nth* matching call at *seam*."""
        if seam != self.seam:
            return False
        for key, value in self.match.items():
            if ctx.get(key) != value:
                return False
        if nth < self.at:
            return False
        if self.count is not None and nth >= self.at + self.count:
            return False
        return True


class FaultInjector:
    """Deterministically applies a fault list to seam calls.

    The injector is installed process-globally via
    :func:`repro.chaos.seams.install`; production guards then route every
    seam call through :meth:`fire`.  ``seed`` feeds ``self.rng``, which
    scenarios use for data-corruption choices (which byte to flip, how
    many bytes to tear); the *schedule* of faults is fixed by the fault
    list itself, so two runs with the same seed and faults are
    byte-identical in what they inject.
    """

    def __init__(self, faults: Optional[List[Fault]] = None, seed: int = 0):
        self.rng = random.Random(seed)
        self.seed = seed
        self.faults = list(faults or [])
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}
        #: Per-fault match counts, parallel to ``self.faults`` — a fault
        #: with ``match`` filters advances only on calls it could match.
        self._fault_calls: List[int] = [0] * len(self.faults)
        self.fired: List[Dict[str, Any]] = []

    def calls(self, seam: str) -> int:
        """How many times *seam* has fired so far."""
        with self._lock:
            return self._calls.get(seam, 0)

    def log(self) -> List[Dict[str, Any]]:
        """Copy of the injected-fault log (seam, action, call #, ctx)."""
        with self._lock:
            return list(self.fired)

    def fire(self, seam: str, **ctx: Any) -> Optional[str]:
        """Account one call at *seam*; inject the first matching fault.

        Returns ``None`` (no fault, or a sleep already served), or an
        advisory action string (``"drop"`` / ``"reset"``) for the call
        site to interpret.  Raising actions raise.
        """
        with self._lock:
            nth = self._calls.get(seam, 0) + 1
            self._calls[seam] = nth
            hit: Optional[Fault] = None
            for index, fault in enumerate(self.faults):
                if fault.seam != seam:
                    continue
                # Context-filtered faults keep their own call count so
                # "3rd POST /jobs" means what it says even when other
                # routes share the seam.
                if fault.match:
                    filtered_ok = all(
                        ctx.get(key) == value
                        for key, value in fault.match.items()
                    )
                    if not filtered_ok:
                        continue
                    self._fault_calls[index] += 1
                    local_nth = self._fault_calls[index]
                else:
                    local_nth = nth
                if hit is None and fault.matches(seam, local_nth, ctx):
                    hit = fault
            if hit is None:
                return None
            self.fired.append(
                {"seam": seam, "action": hit.action, "call": nth,
                 "ctx": dict(ctx)}
            )
        # Act outside the lock: sleeps and raises must not serialize
        # other seams.
        if hit.action == "enospc":
            raise OSError(_errno.ENOSPC, hit.message or "injected ENOSPC")
        if hit.action == "oserror":
            raise OSError(hit.errno_code, hit.message)
        if hit.action == "crash":
            raise ChaosFault(hit.message)
        if hit.action in ("delay", "hang"):
            time.sleep(hit.delay_s)
            return None
        return hit.action  # "drop" | "reset"
