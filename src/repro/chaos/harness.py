"""Scenario execution: a live fleet, injected faults, checked invariants.

A scenario boots real service machinery — in-process
:class:`~repro.service.app.ServiceApp` instances behind real
``ThreadingHTTPServer`` sockets, talked to by the real
:class:`~repro.service.client.ServiceClient`, optionally joined by a
genuine ``python -m repro.service serve`` subprocess for kill tests —
injects faults through the seams, and then asserts the **global
invariants** of the robustness contract:

1. *No completed job is ever lost* — a job observed ``completed`` keeps
   its result.
2. *No point executes beyond single-flight accounting* — a completed
   job's ``executed`` never exceeds its ``unique`` point count.
3. *Every failure carries a structured cause* — a ``failed`` job has a
   non-empty ``error.code``, and scenarios additionally pin the set of
   causes they consider correct.
4. *No hangs* — every wait in the harness is bounded; a timeout is an
   invariant violation, not an exception.

Scenario outcomes are :class:`ScenarioResult` records; the CLI
(:mod:`repro.chaos.__main__`) renders them and exits non-zero if any
scenario reports a violation.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos import seams
from repro.chaos.faults import FaultInjector
from repro.service.app import ServiceApp
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import build_server

#: Upper bound on any single scenario wait; hitting it is a violation.
DEFAULT_WAIT_S = 120.0


@dataclass
class ScenarioResult:
    """What one scenario did and whether the invariants held."""

    name: str
    seed: int
    ok: bool = True
    #: Invariant violations; any entry fails the scenario (and the run).
    violations: List[str] = field(default_factory=list)
    #: Informational observations (retry counts, who stole what).
    notes: List[str] = field(default_factory=list)
    faults_injected: int = 0
    duration_s: float = 0.0

    def violate(self, message: str) -> None:
        self.violations.append(message)
        self.ok = False

    def note(self, message: str) -> None:
        self.notes.append(message)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "violations": list(self.violations),
            "notes": list(self.notes),
            "faults_injected": self.faults_injected,
            "duration_s": round(self.duration_s, 2),
        }


class ServiceUnderTest:
    """One in-process replica: app + HTTP server + a client to it.

    ``client_kwargs`` tune the retry policy of the returned client;
    scenarios that must observe raw failures pass ``retries=0``.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 client_kwargs: Optional[dict] = None,
                 **app_kwargs) -> None:
        app_kwargs.setdefault("jobs", 1)  # seams fire in-process only
        app_kwargs.setdefault("job_concurrency", 1)
        self.app = ServiceApp(cache_dir=cache_dir, **app_kwargs)
        self.server = build_server(self.app, port=0)
        self.port = self.server.server_address[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()
        self.app.start()
        kwargs = dict(client_kwargs or {})
        kwargs.setdefault("timeout", 30.0)
        self.client = ServiceClient(self.url, **kwargs)

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.app.stop(drain=True, timeout=30.0)


class scenario_env:
    """Context manager: temp cache tree + installed injector + cleanup.

    Everything a scenario allocates through :meth:`service` is stopped
    (drained) *before* the injector is uninstalled, so no seam ever
    fires half-disabled.
    """

    def __init__(self, injector: Optional[FaultInjector] = None) -> None:
        self.injector = injector
        self.services: List[ServiceUnderTest] = []
        self.root: Optional[str] = None

    def __enter__(self) -> "scenario_env":
        self.root = tempfile.mkdtemp(prefix="repro-chaos-")
        if self.injector is not None:
            seams.install(self.injector)
        return self

    def cache_dir(self, name: str = "cache") -> str:
        import os

        path = os.path.join(self.root, name)  # type: ignore[arg-type]
        os.makedirs(path, exist_ok=True)
        return path

    def service(self, cache_dir: Optional[str] = None,
                client_kwargs: Optional[dict] = None,
                **app_kwargs) -> ServiceUnderTest:
        sut = ServiceUnderTest(cache_dir=cache_dir,
                               client_kwargs=client_kwargs, **app_kwargs)
        self.services.append(sut)
        return sut

    def __exit__(self, *exc_info) -> None:
        for sut in self.services:
            try:
                sut.stop()
            except Exception:  # noqa: BLE001 - cleanup must not mask results
                pass
        seams.uninstall()
        if self.root:
            shutil.rmtree(self.root, ignore_errors=True)


# ----------------------------------------------------------------------
# invariant helpers
# ----------------------------------------------------------------------


def canonical_result_bytes(result_payload: dict) -> bytes:
    """The byte-identity form of a job result (order-independent JSON)."""
    return json.dumps(result_payload, sort_keys=True,
                      separators=(",", ":"), default=str).encode("utf-8")


def check_terminal_record(record: dict, result: ScenarioResult,
                          allowed_failures: Optional[List[str]] = None) -> None:
    """Assert the per-job invariants on a terminal job record."""
    state = record.get("state")
    job_id = record.get("id")
    if state == "completed":
        counters = record.get("counters") or {}
        executed = int(counters.get("executed", 0))
        unique = int(counters.get("unique",
                                  (record.get("points") or {}).get("unique", 0)))
        if executed > unique:
            result.violate(
                f"job {job_id}: executed {executed} > unique {unique} "
                f"(single-flight accounting broken)"
            )
    elif state == "failed":
        error = record.get("error") or {}
        code = error.get("code")
        if not code:
            result.violate(f"job {job_id}: failed without a structured cause")
        elif allowed_failures is not None and code not in allowed_failures:
            result.violate(
                f"job {job_id}: unexpected failure cause {code!r} "
                f"(allowed: {allowed_failures})"
            )
    else:
        result.violate(f"job {job_id}: not terminal (state {state!r})")


def watch_bounded(client: ServiceClient, job_id: str,
                  result: ScenarioResult,
                  timeout: float = DEFAULT_WAIT_S) -> Optional[dict]:
    """Watch a job to a terminal state; a timeout is a hang violation."""
    try:
        return client.watch(job_id, interval=0.05, timeout=timeout,
                            unreachable_timeout=timeout)
    except ServiceError as error:
        if error.code == "watch_timeout":
            result.violate(f"job {job_id}: hang — not terminal "
                           f"after {timeout:.0f}s")
        else:
            result.violate(f"job {job_id}: watch failed: {error}")
        return None


def check_event_timeline(cache_dir: str, result: ScenarioResult,
                         source: Optional[str] = None) -> None:
    """Assert the telemetry span timeline under ``cache_dir`` is whole.

    After a drained (non-kill) scenario every ``span_start`` must have a
    matching ``span_end`` — an unfinished span means an operation
    crashed or leaked past its guard.  Kill scenarios skip this check:
    a SIGKILL legitimately tears spans mid-flight.
    """
    from repro.obs.events import read_events, unfinished_spans
    from repro.service.app import EVENTS_SUBDIR
    import os

    events_dir = os.path.join(cache_dir, EVENTS_SUBDIR)

    def load():
        loaded = read_events(events_dir)
        if source is not None:
            loaded = [e for e in loaded if e.get("source") == source]
        return loaded

    # The client can observe a terminal job a beat before the final
    # span_end flushes; give the log a bounded moment to settle.
    events = load()
    deadline = time.monotonic() + 10.0
    while (not events or unfinished_spans(events)) \
            and time.monotonic() < deadline:
        time.sleep(0.05)
        events = load()
    if not events:
        result.violate(f"no telemetry events under {cache_dir!r} — "
                       f"the event log never wrote")
        return
    dangling = unfinished_spans(events)
    for start in dangling:
        result.violate(
            f"span {start.get('span')!r} (span_id {start.get('span_id')}, "
            f"job {start.get('job_id')}) started but never ended"
        )
    spans = sum(1 for e in events if e.get("kind") == "span_end")
    result.note(f"timeline: {len(events)} events, {spans} complete spans, "
                f"{len(dangling)} dangling")


def wait_until(predicate, timeout: float, interval: float = 0.05) -> bool:
    """Poll ``predicate`` until true or ``timeout``; returns the verdict."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())


# ----------------------------------------------------------------------
# matrix runner
# ----------------------------------------------------------------------


def run_matrix(names: List[str], seed: int,
               quick: bool = False,
               progress=None) -> List[ScenarioResult]:
    """Run the named scenarios in order; never raises on a failure."""
    from repro.chaos.scenarios import SCENARIOS

    results: List[ScenarioResult] = []
    for name in names:
        func = SCENARIOS[name]
        if progress is not None:
            progress(f"chaos: running {name} (seed {seed})")
        started = time.monotonic()
        result = ScenarioResult(name=name, seed=seed)
        try:
            func(result, seed=seed, quick=quick)
        except Exception as error:  # noqa: BLE001 - a crash is a violation
            result.violate(
                f"scenario crashed: {type(error).__name__}: {error}"
            )
            seams.uninstall()  # belt and braces if the env didn't unwind
        result.duration_s = time.monotonic() - started
        if progress is not None:
            status = "ok" if result.ok else "FAIL"
            progress(f"chaos: {name}: {status} "
                     f"({result.duration_s:.1f}s, "
                     f"{result.faults_injected} faults)")
        results.append(result)
    return results


def summarize(results: List[ScenarioResult]) -> Dict[str, object]:
    """Machine-readable run summary (the --json payload)."""
    return {
        "scenarios": [result.to_dict() for result in results],
        "total": len(results),
        "failed": sum(1 for result in results if not result.ok),
        "violations": [
            f"{result.name}: {violation}"
            for result in results
            for violation in result.violations
        ],
    }
