"""The chaos scenario matrix.

Each scenario is a function ``f(result, seed, quick)`` that boots real
service machinery inside a :class:`~repro.chaos.harness.scenario_env`,
injects one family of faults, and records invariant violations on the
:class:`~repro.chaos.harness.ScenarioResult`.  Scenarios never raise on
a *robustness* failure — they call ``result.violate`` — so one broken
invariant doesn't hide the others.  A scenario that crashes outright is
itself counted as a violation by the matrix runner.

Determinism: every scenario derives all randomness from ``seed`` (via
``random.Random(seed)`` or the injector's seeded RNG).  Wall-clock
still varies run to run, so scenarios assert *outcomes* (terminal
states, causes, counters), never timings.

``SCENARIOS`` maps name -> function; ``QUICK_SCENARIOS`` is the subset
run by ``python -m repro.chaos --quick`` (CI) and includes the
replica-SIGKILL and ENOSPC scenarios required by the robustness
contract.
"""

from __future__ import annotations

import glob
import json
import os
import random
import signal
import subprocess
import sys
import time

import repro
from repro.chaos.faults import Fault, FaultInjector
from repro.chaos.harness import (
    ScenarioResult,
    canonical_result_bytes,
    check_event_timeline,
    check_terminal_record,
    scenario_env,
    wait_until,
    watch_bounded,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import RUNNING, Job, JobStore
from repro.storage.sharded import ShardedStore


def _points_spec(n: int = 1, instructions: int = 400,
                 deadline_s=None, priority: int = 0) -> dict:
    """An explicit-points submission of ``n`` distinct tiny points."""
    points = [
        {
            "benchmark": "gcc",
            "architecture": f"chaos/{index}",
            "config": {"max_instructions": instructions + index},
        }
        for index in range(n)
    ]
    spec = {"points": points, "priority": priority}
    if deadline_s is not None:
        spec["deadline_s"] = deadline_s
    return spec


def _run_one_job(env: scenario_env, result: ScenarioResult, spec: dict,
                 **service_kwargs):
    """Boot a service, run one job to terminal, return (sut, record)."""
    sut = env.service(**service_kwargs)
    job = sut.client.submit(spec)
    record = watch_bounded(sut.client, job["id"], result)
    return sut, record


# ----------------------------------------------------------------------
# baseline identity: fault-free chaos run == plain run, byte for byte
# ----------------------------------------------------------------------


def scenario_baseline_identity(result: ScenarioResult, seed: int,
                               quick: bool) -> None:
    """A no-fault injector must not perturb results at all.

    Runs the same job twice on fresh cache trees — once with no seams
    installed, once with an installed injector holding zero faults —
    and compares the canonical bytes of the result payloads.  Also
    checks the seams actually fired (the injector counted calls), so
    identity is proven *through* the instrumented path, not around it.
    """
    spec = _points_spec(n=2, instructions=300 if quick else 1500)

    with scenario_env() as env:
        sut, record = _run_one_job(env, result, spec,
                                   cache_dir=env.cache_dir("plain"))
        if record is None or record.get("state") != "completed":
            result.violate(f"plain run did not complete: {record}")
            return
        # The /result record carries the (random) job id; identity is on
        # the simulation payload itself.
        plain_bytes = canonical_result_bytes(
            sut.client.result(record["id"]).get("result")
        )

    injector = FaultInjector([], seed=seed)
    with scenario_env(injector) as env:
        sut, record = _run_one_job(env, result, spec,
                                   cache_dir=env.cache_dir("chaos"))
        if record is None or record.get("state") != "completed":
            result.violate(f"instrumented run did not complete: {record}")
            return
        chaos_bytes = canonical_result_bytes(
            sut.client.result(record["id"]).get("result")
        )
        check_terminal_record(record, result)
        check_event_timeline(env.cache_dir("chaos"), result)

    if plain_bytes != chaos_bytes:
        result.violate("fault-free instrumented run is not byte-identical "
                       "to the plain run")
    for seam in ("http.response", "engine.point", "storage.append"):
        calls = injector.calls(seam)
        if calls == 0:
            result.violate(f"seam {seam!r} never fired during the "
                           f"instrumented run — identity proven around, "
                           f"not through, the seams")
        result.note(f"seam {seam}: {calls} calls, 0 faults")
    result.faults_injected = len(injector.log())


# ----------------------------------------------------------------------
# storage corruption: torn tails and bit flips are misses, not crashes
# ----------------------------------------------------------------------


def _segment_files(root: str):
    return sorted(glob.glob(os.path.join(root, "*", "seg-*.log")))


def scenario_torn_tail(result: ScenarioResult, seed: int,
                       quick: bool) -> None:
    """Truncate a segment mid-record; the tail is lost, nothing crashes."""
    rng = random.Random(seed)
    with scenario_env() as env:
        root = env.cache_dir("store")
        store = ShardedStore(root, num_shards=1)
        payloads = {
            f"torn-key-{index}": bytes(rng.randrange(256) for _ in range(64))
            for index in range(5)
        }
        for key, data in payloads.items():
            store.put(key, data)

        segments = _segment_files(root)
        if not segments:
            result.violate("no segment file written")
            return
        tail = segments[-1]
        size = os.path.getsize(tail)
        cut = rng.randrange(1, 32)  # always lands inside the last record
        with open(tail, "r+b") as handle:
            handle.truncate(size - cut)

        reopened = ShardedStore(root, num_shards=1)
        keys = list(payloads)
        missing = []
        for key in keys:
            try:
                value = reopened.get(key)
            except Exception as error:  # noqa: BLE001 - crash IS the bug
                result.violate(f"get({key!r}) crashed on torn tail: {error}")
                return
            if value is None:
                missing.append(key)
            elif value != payloads[key]:
                result.violate(f"get({key!r}) returned corrupt bytes "
                               f"after torn tail")
        if missing != [keys[-1]]:
            result.violate(f"torn tail should lose exactly the last record; "
                           f"lost {missing!r}")
        if reopened.stats().get("torn_tails", 0) < 1:
            result.violate("torn tail not counted in stats()['torn_tails']")
        # The miss is recomputable: re-put and the store heals.
        reopened.put(keys[-1], payloads[keys[-1]])
        if reopened.get(keys[-1]) != payloads[keys[-1]]:
            result.violate("re-put after torn tail did not heal the store")
        result.note(f"cut {cut} bytes off the tail; lost 1 record, "
                    f"healed by recompute")
        result.faults_injected = 1


def scenario_bit_flip(result: ScenarioResult, seed: int,
                      quick: bool) -> None:
    """Flip one byte mid-segment; CRC catches it, readers see a miss."""
    rng = random.Random(seed + 1)
    with scenario_env() as env:
        root = env.cache_dir("store")
        store = ShardedStore(root, num_shards=1)
        payloads = {
            f"flip-key-{index}": bytes(rng.randrange(256) for _ in range(64))
            for index in range(5)
        }
        for key, data in payloads.items():
            store.put(key, data)

        segments = _segment_files(root)
        tail = segments[-1]
        size = os.path.getsize(tail)
        offset = rng.randrange(size // 2, size - 1)
        with open(tail, "r+b") as handle:
            handle.seek(offset)
            original = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([original[0] ^ 0xFF]))

        reopened = ShardedStore(root, num_shards=1)
        misses = 0
        for key, data in payloads.items():
            try:
                value = reopened.get(key)
            except Exception as error:  # noqa: BLE001 - crash IS the bug
                result.violate(f"get({key!r}) crashed on bit flip: {error}")
                return
            if value is None:
                misses += 1
            elif value != data:
                result.violate(f"get({key!r}) returned corrupt bytes — "
                               f"bit flip not caught by CRC")
        if misses < 1:
            result.violate("bit flip at offset inside the log caused no "
                           "miss — corruption went undetected")
        # Heal every miss by recompute (re-put); all keys readable after.
        for key, data in payloads.items():
            if reopened.get(key) is None:
                reopened.put(key, data)
        for key, data in payloads.items():
            if reopened.get(key) != data:
                result.violate(f"store did not heal {key!r} after re-put")
        result.note(f"flipped byte at offset {offset}; {misses} record(s) "
                    f"rejected by CRC, healed by recompute")
        result.faults_injected = 1


# ----------------------------------------------------------------------
# disk full: sticky read-only degradation, jobs still complete
# ----------------------------------------------------------------------


def scenario_enospc(result: ScenarioResult, seed: int, quick: bool) -> None:
    """ENOSPC on every write: storage degrades, execution continues."""
    injector = FaultInjector([
        Fault(seam="storage.append", action="enospc", at=1, count=None),
        Fault(seam="jobs.save", action="enospc", at=2, count=None),
    ], seed=seed)
    with scenario_env(injector) as env:
        sut, record = _run_one_job(
            env, result, _points_spec(n=2, instructions=300),
            cache_dir=env.cache_dir("full-disk"),
        )
        if record is None:
            return
        check_terminal_record(record, result)
        if record.get("state") != "completed":
            result.violate(f"job should complete from memory tiers on a "
                           f"full disk; got {record.get('state')}: "
                           f"{record.get('error')}")
            return
        health = sut.client.health()
        if health.get("status") != "degraded":
            result.violate(f"health status should be 'degraded' on ENOSPC; "
                           f"got {health.get('status')!r}")
        storage = (health.get("components") or {}).get("storage") or {}
        if storage.get("writable", True):
            result.violate("health.components.storage.writable should be "
                           "false after ENOSPC")
        metrics = sut.client.metrics()
        results_stats = (metrics.get("storage") or {}).get("results") or {}
        if not results_stats.get("read_only"):
            result.violate("metrics.storage.results.read_only should be set")
        # Dedup survives degradation: the same spec again is all cache hits.
        again = sut.client.submit(_points_spec(n=2, instructions=300))
        record2 = watch_bounded(sut.client, again["id"], result)
        if record2 is not None:
            check_terminal_record(record2, result)
            executed = int((record2.get("counters") or {}).get("executed", -1))
            if record2.get("state") == "completed" and executed != 0:
                result.violate(f"resubmission on a degraded store should be "
                               f"served from memory (executed == 0); "
                               f"executed {executed}")
        save_errors = (metrics.get("job_store") or {}).get("save_errors")
        check_event_timeline(env.cache_dir("full-disk"), result)
        result.note(f"write errors absorbed: "
                    f"storage={results_stats.get('write_errors')}, "
                    f"job-store={save_errors}")
        result.faults_injected = len(injector.log())


# ----------------------------------------------------------------------
# worker pathologies: slow, hung (deadline), crashing
# ----------------------------------------------------------------------


def scenario_slow_worker(result: ScenarioResult, seed: int,
                         quick: bool) -> None:
    """Slow point execution delays completion but corrupts nothing."""
    injector = FaultInjector([
        Fault(seam="engine.point", action="delay", at=1, count=None,
              delay_s=0.1 if quick else 0.25),
    ], seed=seed)
    with scenario_env(injector) as env:
        sut, record = _run_one_job(
            env, result, _points_spec(n=2, instructions=300),
            cache_dir=env.cache_dir("slow"),
        )
        if record is None:
            return
        check_terminal_record(record, result)
        if record.get("state") != "completed":
            result.violate(f"slow worker should still complete; got "
                           f"{record.get('state')}: {record.get('error')}")
        check_event_timeline(env.cache_dir("slow"), result)
        result.note(f"{injector.calls('engine.point')} slowed point starts")
        result.faults_injected = len(injector.log())


def scenario_hung_worker_deadline(result: ScenarioResult, seed: int,
                                  quick: bool) -> None:
    """A hung worker is bounded by the job deadline; the lease is freed."""
    hang_s = 4.0 if quick else 8.0
    injector = FaultInjector([
        Fault(seam="engine.point", action="hang", at=1, count=None,
              delay_s=hang_s),
    ], seed=seed)
    with scenario_env(injector) as env:
        sut = env.service(cache_dir=env.cache_dir("hung"))
        job = sut.client.submit(
            _points_spec(n=2, instructions=300, deadline_s=1.0)
        )
        record = watch_bounded(sut.client, job["id"], result,
                               timeout=hang_s + 30.0)
        if record is None:
            return
        check_terminal_record(record, result,
                              allowed_failures=["deadline_exceeded"])
        if record.get("state") != "failed":
            result.violate(f"hung job should fail with deadline_exceeded; "
                           f"got {record.get('state')}")
            return
        if not wait_until(lambda: sut.app.leases.holder(job["id"]) is None,
                          timeout=10.0):
            result.violate("lease not released after deadline kill")
        metrics = sut.client.metrics()
        if not (metrics.get("jobs") or {}).get("deadline_failures"):
            result.violate("metrics.jobs.deadline_failures not incremented")
        # Even a deadline-killed job leaves a whole span timeline: the
        # hung worker's execute span ends (with an error) once it wakes.
        check_event_timeline(env.cache_dir("hung"), result)
        result.note("deadline watchdog fired while the worker hung; "
                    "lease released")
        result.faults_injected = len(injector.log())


def scenario_crash_worker(result: ScenarioResult, seed: int,
                          quick: bool) -> None:
    """A crashing point execution fails the job with a structured cause."""
    injector = FaultInjector([
        Fault(seam="engine.point", action="crash", at=1, count=None,
              message="chaos: worker crash"),
    ], seed=seed)
    with scenario_env(injector) as env:
        sut, record = _run_one_job(
            env, result, _points_spec(n=2, instructions=300),
            cache_dir=env.cache_dir("crash"),
        )
        if record is None:
            return
        check_terminal_record(record, result,
                              allowed_failures=["execution_error"])
        if record.get("state") != "failed":
            result.violate(f"crashing worker should fail the job; got "
                           f"{record.get('state')}")
        check_event_timeline(env.cache_dir("crash"), result)
        result.note(f"cause: {(record.get('error') or {}).get('code')}")
        result.faults_injected = len(injector.log())


# ----------------------------------------------------------------------
# fleet faults: replica SIGKILL mid-lease, skewed heartbeat clocks
# ----------------------------------------------------------------------


def scenario_replica_sigkill(result: ScenarioResult, seed: int,
                             quick: bool) -> None:
    """SIGKILL a real serve subprocess mid-job; a survivor steals it.

    The victim is a genuine ``python -m repro.service serve`` process
    (ephemeral port, short lease TTL) sharing a cache tree with an
    in-process survivor replica.  The kill is a hard SIGKILL — no
    drain, no goodbye — so recovery rides entirely on lease expiry and
    the survivor's fleet poller.
    """
    lease_ttl = 2.0
    with scenario_env() as env:
        shared = env.cache_dir("shared")
        port_file = os.path.join(env.root, "victim.port")
        pkg_root = os.path.dirname(os.path.dirname(repro.__file__))
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = pkg_root + (
            os.pathsep + child_env["PYTHONPATH"]
            if child_env.get("PYTHONPATH") else ""
        )
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", "0", "--port-file", port_file,
             "--cache-dir", shared, "--jobs", "1",
             "--job-concurrency", "1",
             "--lease-ttl", str(lease_ttl),
             "--claim-ttl", "3",
             "--replica-id", "victim", "--quiet"],
            env=child_env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            if not wait_until(
                lambda: os.path.exists(port_file)
                and os.path.getsize(port_file) > 0,
                timeout=30.0,
            ):
                result.violate("victim replica never wrote its port file")
                return
            with open(port_file, "r", encoding="utf-8") as handle:
                victim_port = int(handle.readline().strip())
            victim_client = ServiceClient(
                f"http://127.0.0.1:{victim_port}", timeout=10.0
            )
            # Enough work that the kill lands mid-job, small enough that
            # the re-run stays fast.
            spec = _points_spec(n=3, instructions=4000 if quick else 12000)
            job = victim_client.submit(spec)
            job_id = job["id"]
            if not wait_until(
                lambda: victim_client.status(job_id).get("state") == "running",
                timeout=30.0,
            ):
                result.violate("victim never started running the job")
                return
            # Short claim TTL on both sides: the dead victim's point
            # claims expire quickly, so the survivor's reclaim path —
            # not a 120s default timeout — is what this scenario times.
            survivor = env.service(
                cache_dir=shared, replica_id="survivor",
                lease_ttl=lease_ttl, fleet_poll_interval=0.2,
                claim_ttl=3.0,
            )
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)
            record = watch_bounded(survivor.client, job_id, result,
                                   timeout=90.0)
            if record is None:
                return
            # Completion is the expected outcome; a structured 'poisoned'
            # verdict is tolerated only if repeated steals hit the cap.
            check_terminal_record(record, result,
                                  allowed_failures=["poisoned"])
            if record.get("state") == "completed":
                stolen = survivor.app.stolen_jobs + survivor.app.resumed_jobs
                if victim_client_saw_completion(record):
                    result.note("victim finished before the kill landed; "
                                "survivor only observed")
                elif stolen < 1:
                    result.violate("job completed but the survivor neither "
                                   "stole nor resumed it — who ran it?")
                if survivor.app.stolen_jobs > 3:
                    result.violate(f"steal loop: job stolen "
                                   f"{survivor.app.stolen_jobs} times")
                result.note(f"survivor stole {survivor.app.stolen_jobs}, "
                            f"resumed {survivor.app.resumed_jobs}")
            else:
                result.note(f"job ended {record.get('state')} with cause "
                            f"{(record.get('error') or {}).get('code')}")
            result.faults_injected = 1  # the SIGKILL itself
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=10.0)


def victim_client_saw_completion(record: dict) -> bool:
    """True when the job finished before the victim died (no steal)."""
    history = record.get("fault_history") or []
    return not any(entry.get("event") in ("lease_expired", "resume_requeue")
                   for entry in history)


def scenario_clock_skew(result: ScenarioResult, seed: int,
                        quick: bool) -> None:
    """One replica's lease clock runs fast; jobs still terminate sanely.

    The skewed replica believes every lease is ancient and steals
    eagerly; the sticky terminal marks and the poison cap must keep
    that from becoming a steal livelock or double completion.
    """
    lease_ttl = 3.0
    skew_s = 2.0 * lease_ttl
    with scenario_env() as env:
        shared = env.cache_dir("shared")
        steady = env.service(cache_dir=shared, replica_id="steady",
                             lease_ttl=lease_ttl, fleet_poll_interval=0.2)
        skewed = env.service(cache_dir=shared, replica_id="skewed",
                             lease_ttl=lease_ttl, fleet_poll_interval=0.2)
        skewed.app.leases.clock = lambda: time.time() + skew_s
        spec = _points_spec(n=2, instructions=2000 if quick else 6000)
        job = steady.client.submit(spec)
        record = watch_bounded(steady.client, job["id"], result,
                               timeout=90.0)
        if record is None:
            return
        # Either replica may win; a poison verdict (too many steals) is a
        # structured outcome, not a hang — both satisfy the contract.
        check_terminal_record(record, result, allowed_failures=["poisoned"])
        total_steals = steady.app.stolen_jobs + skewed.app.stolen_jobs
        if total_steals > 6:
            result.violate(f"clock skew caused a steal storm: "
                           f"{total_steals} steals of one job")
        result.note(f"outcome {record.get('state')}; steals: "
                    f"steady={steady.app.stolen_jobs} "
                    f"skewed={skewed.app.stolen_jobs}")
        result.faults_injected = 1  # the skewed clock


# ----------------------------------------------------------------------
# network faults and backpressure
# ----------------------------------------------------------------------


def scenario_http_flaky(result: ScenarioResult, seed: int,
                        quick: bool) -> None:
    """Dropped/reset/slow HTTP responses are absorbed by client retries."""
    injector = FaultInjector([
        Fault(seam="http.response", action="drop", at=2),
        Fault(seam="http.response", action="reset", at=3),
        Fault(seam="http.response", action="delay", at=4, delay_s=0.3),
    ], seed=seed)
    with scenario_env(injector) as env:
        sut = env.service(
            cache_dir=env.cache_dir("flaky"),
            client_kwargs={"retries": 6, "retry_base": 0.05,
                           "retry_cap": 0.5, "timeout": 10.0},
        )
        job = sut.client.submit(_points_spec(n=1, instructions=300))
        record = watch_bounded(sut.client, job["id"], result)
        if record is None:
            return
        check_terminal_record(record, result)
        if record.get("state") != "completed":
            result.violate(f"job should complete despite flaky transport; "
                           f"got {record.get('state')}")
        if sut.client.retried < 1:
            result.violate("client never retried — the injected drops "
                           "were not exercised")
        # Even if the dropped POST was re-sent as a duplicate job, the
        # store dedupes: fleet-wide executed never exceeds unique points.
        metrics = sut.client.metrics()
        points = metrics.get("points") or {}
        executed = points.get("executed")
        unique = points.get("unique")
        if (isinstance(executed, int) and isinstance(unique, int)
                and executed > unique):
            result.violate(f"fleet executed {executed} > unique {unique}")
        check_event_timeline(env.cache_dir("flaky"), result)
        result.note(f"client retried {sut.client.retried} time(s) across "
                    f"{len(injector.log())} transport faults")
        result.faults_injected = len(injector.log())


def scenario_overload(result: ScenarioResult, seed: int,
                      quick: bool) -> None:
    """A full queue returns structured 503s; patient clients get through."""
    injector = FaultInjector([
        Fault(seam="engine.point", action="delay", at=1, count=None,
              delay_s=0.4),
    ], seed=seed)
    with scenario_env(injector) as env:
        sut = env.service(
            cache_dir=env.cache_dir("busy"),
            max_queue_depth=1,
            client_kwargs={"retries": 0},
        )
        raw = sut.client  # no retries: sees the 503 as the server sent it
        first = raw.submit(_points_spec(n=2, instructions=300))
        if not wait_until(
            lambda: raw.status(first["id"]).get("state") == "running",
            timeout=30.0,
        ):
            result.violate("first job never started running")
            return
        queued = raw.submit(_points_spec(n=2, instructions=600))
        overloaded = None
        try:
            raw.submit(_points_spec(n=2, instructions=900))
        except ServiceError as error:
            overloaded = error
        if overloaded is None:
            result.violate("submit into a full queue was not rejected")
        else:
            if overloaded.status != 503 or overloaded.code != "overloaded":
                result.violate(f"expected 503 overloaded; got "
                               f"{overloaded.status} {overloaded.code}")
            if overloaded.retry_after is None:
                result.violate("503 overloaded carried no Retry-After")
        # A retrying client waits out the backpressure and gets through.
        patient = ServiceClient(sut.url, timeout=10.0, retries=8,
                                retry_base=0.2, retry_cap=2.0,
                                retry_budget_s=60.0)
        third = patient.submit(_points_spec(n=1, instructions=900))
        for job_id in (first["id"], queued["id"], third["id"]):
            record = watch_bounded(patient, job_id, result)
            if record is not None:
                check_terminal_record(record, result)
        metrics = patient.metrics()
        rejected = (metrics.get("queue") or {}).get("rejected_overloaded")
        if not rejected:
            result.violate("metrics.queue.rejected_overloaded not counted")
        check_event_timeline(env.cache_dir("busy"), result)
        result.note(f"server rejected {rejected} submit(s); patient client "
                    f"retried {patient.retried} time(s) and got through")
        result.faults_injected = len(injector.log())


# ----------------------------------------------------------------------
# poison jobs
# ----------------------------------------------------------------------


def scenario_poison_quarantine(result: ScenarioResult, seed: int,
                               quick: bool) -> None:
    """A job that keeps dying is quarantined with its fault history."""
    with scenario_env() as env:
        shared = env.cache_dir("shared")
        # Forge the on-disk record of a job that already burned through
        # its attempts on replicas that are now gone: state RUNNING, no
        # live lease, attempts at the poison threshold.
        store = JobStore(shared)
        job = Job(id="poisonjob0001",
                  spec=_points_spec(n=1, instructions=300),
                  state=RUNNING, attempts=3)
        job.points = {"requested": 1, "unique": 1, "completed": 0}
        job.record_fault("crash", "synthetic pre-history", replica="ghost-1")
        job.record_fault("lease_expired", "synthetic pre-history",
                         replica="ghost-2")
        store.save(job)

        sut = env.service(cache_dir=shared, lease_ttl=2.0,
                          fleet_poll_interval=0.1, poison_attempts=3)
        record = None

        def _terminal() -> bool:
            nonlocal record
            record = sut.client.status("poisonjob0001")
            return record.get("state") in ("completed", "failed")

        if not wait_until(_terminal, timeout=30.0):
            result.violate("poison job never reached a terminal state")
            return
        check_terminal_record(record, result, allowed_failures=["poisoned"])
        if record.get("state") != "failed":
            result.violate(f"poison job should fail, got "
                           f"{record.get('state')}")
            return
        quarantine_path = os.path.join(shared, "jobs", "quarantine",
                                       "poisonjob0001.json")
        if not os.path.exists(quarantine_path):
            result.violate("no quarantine record written for poisoned job")
        else:
            with open(quarantine_path, "r", encoding="utf-8") as handle:
                quarantined = json.load(handle)
            history = quarantined.get("fault_history") or []
            if len(history) < 2:
                result.violate("quarantine record lost the fault history")
        metrics = sut.client.metrics()
        if not (metrics.get("jobs") or {}).get("poisoned"):
            result.violate("metrics.jobs.poisoned not counted")
        result.note(f"quarantined after {record.get('attempts')} attempts "
                    f"with {len(record.get('fault_history') or [])} "
                    f"fault-history entries")
        result.faults_injected = 1  # the forged crash history


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------


#: Every scenario, in execution order.
SCENARIOS = {
    "baseline-identity": scenario_baseline_identity,
    "torn-tail": scenario_torn_tail,
    "bit-flip": scenario_bit_flip,
    "enospc": scenario_enospc,
    "slow-worker": scenario_slow_worker,
    "hung-worker": scenario_hung_worker_deadline,
    "crash-worker": scenario_crash_worker,
    "replica-sigkill": scenario_replica_sigkill,
    "clock-skew": scenario_clock_skew,
    "http-flaky": scenario_http_flaky,
    "overload": scenario_overload,
    "poison": scenario_poison_quarantine,
}

#: The CI subset: every fault family, sized for speed.  Must include
#: replica-sigkill and enospc (the robustness contract pins them).
QUICK_SCENARIOS = (
    "baseline-identity",
    "torn-tail",
    "enospc",
    "hung-worker",
    "crash-worker",
    "replica-sigkill",
    "http-flaky",
    "overload",
    "poison",
)
