"""The injectable seam registry production code consults.

A *seam* is a named point in production code where the chaos harness may
inject a fault.  Production call sites are written as::

    from repro.chaos import seams as _seams
    ...
    if _seams.active is not None:
        _seams.active.fire("storage.append", path=str(path))

When chaos is disabled (the default, always true in production) the
guard is a single module-attribute load plus an ``is None`` test — no
function call, no allocation, no lock.  The ``resilience_overhead``
bench scenario holds this path to within noise of the un-seamed
baseline.

Seam names currently wired into production code:

=====================  ====================================================
``storage.append``     :class:`repro.storage.sharded.ShardedStore` write
                       funnel, before bytes hit the segment file.
``jobs.save``          :class:`repro.service.jobs.JobStore` atomic record
                       write, before the temp file is written.
``engine.point``       :func:`repro.experiments.scheduler.run_simulation_point`,
                       before the simulation body runs (slow / hung /
                       crashing worker faults).
``http.response``      :class:`repro.service.server.ServiceRequestHandler`
                       just before a response body is sent (drop / delay /
                       connection-reset faults).
=====================  ====================================================

Only the chaos harness should call :func:`install` / :func:`uninstall`;
they are process-global and not reentrant.  ``installed()`` is the
read-only introspection hook (used by ``/healthz`` so a chaos-wrapped
replica is honest about it).
"""

from __future__ import annotations

#: The active fault injector, or ``None`` when chaos is disabled.  Kept a
#: bare module attribute (not behind a function) so the production guard
#: stays one attribute load.
active = None


def install(injector) -> None:
    """Make *injector* the process-global fault source.

    Raises :class:`RuntimeError` if a different injector is already
    installed — overlapping chaos runs in one process would corrupt each
    other's deterministic call counts.
    """
    global active
    if active is not None and active is not injector:
        raise RuntimeError("a fault injector is already installed")
    active = injector


def uninstall() -> None:
    """Disable chaos; production guards go back to the no-op path."""
    global active
    active = None


def installed() -> bool:
    """Whether a fault injector is currently active in this process."""
    return active is not None
