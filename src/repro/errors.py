"""Exception hierarchy for the repro package.

All errors raised deliberately by the library derive from
:class:`ReproError` so that callers can catch library-specific failures
without accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad mnemonic, undefined label...)."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class RenameError(SimulationError):
    """Register renaming failed (e.g. free-list underflow or bad mapping)."""


class RegisterFileError(SimulationError):
    """A register-file bank was used inconsistently (bad port counts,
    reading a register that was never written, ...)."""


class WorkloadError(ReproError):
    """A workload profile or generator was mis-specified."""


class ValidationError(ReproError):
    """The differential validation subsystem found an inconsistency
    (malformed instruction stream, incomparable reports, bad fault spec)."""


class ModelError(ReproError):
    """The analytical area/access-time model was queried out of range."""
