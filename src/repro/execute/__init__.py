"""Execution core: functional units, issue queue, ROB, bypass, scoreboard."""

from repro.execute.functional_units import FunctionalUnitPool, FunctionalUnitConfig
from repro.execute.rob import ReorderBuffer, ROBEntry
from repro.execute.scoreboard import ValueScoreboard, ValueState
from repro.execute.bypass import BypassNetwork
from repro.execute.issue_queue import IssueQueue, IssueQueueEntry

__all__ = [
    "FunctionalUnitPool",
    "FunctionalUnitConfig",
    "ReorderBuffer",
    "ROBEntry",
    "ValueScoreboard",
    "ValueState",
    "BypassNetwork",
    "IssueQueue",
    "IssueQueueEntry",
]
