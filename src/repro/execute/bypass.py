"""Bypass (forwarding) network timing model.

The paper's comparison hinges on how many *levels* of bypass a register
file architecture needs.  A register file with ``read_stages`` cycles of
operand read requires ``read_stages`` levels of bypass for dependent
instructions to execute back-to-back; every missing level adds one cycle
of effective producer→consumer latency (keeping only the *last* level
avoids "holes": once a value leaves the bypass network it is already
readable from the register file).

This module encapsulates that arithmetic and counts how operands are
actually delivered (bypass vs register file), which both the statistics
and the non-bypass caching policy rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BypassTiming:
    """Derived timing facts for one (read_stages, bypass_levels) pair."""

    read_stages: int
    bypass_levels: int
    #: Extra cycles of effective producer→consumer latency caused by the
    #: missing bypass levels (0 when fully bypassed).
    extra_consumer_latency: int


class BypassNetwork:
    """Availability calculations for a given bypass configuration."""

    def __init__(self, read_stages: int, bypass_levels: int) -> None:
        if read_stages <= 0:
            raise ConfigurationError("read_stages must be positive")
        if not 0 <= bypass_levels <= read_stages:
            raise ConfigurationError(
                "bypass_levels must be between 0 and read_stages (full bypass)"
            )
        self.read_stages = read_stages
        self.bypass_levels = bypass_levels
        # statistics
        self.operands_from_bypass = 0
        self.operands_from_regfile = 0

    @property
    def timing(self) -> BypassTiming:
        return BypassTiming(
            read_stages=self.read_stages,
            bypass_levels=self.bypass_levels,
            extra_consumer_latency=self.read_stages - self.bypass_levels,
        )

    # ------------------------------------------------------------------

    def earliest_consumer_execute(self, producer_ex_end: int) -> int:
        """Earliest cycle a dependent instruction can start executing.

        With full bypass this is the cycle right after the producer
        finishes; each missing bypass level costs one more cycle.
        """
        return producer_ex_end + 1 + (self.read_stages - self.bypass_levels)

    def served_by_bypass(self, producer_ex_end: int, rf_ready_cycle: int | None,
                         consumer_ex_start: int) -> bool:
        """Whether a consumer executing at ``consumer_ex_start`` gets the
        operand from the bypass network rather than the register file.

        The operand comes from the register file only if the read that
        started ``read_stages`` cycles before execution could already see
        the value there; otherwise it must have been bypassed.
        """
        if rf_ready_cycle is None:
            return True
        read_start = consumer_ex_start - self.read_stages
        return read_start < rf_ready_cycle

    # ------------------------------------------------------------------

    def record_bypass_read(self) -> None:
        self.operands_from_bypass += 1

    def record_regfile_read(self) -> None:
        self.operands_from_regfile += 1

    @property
    def bypass_fraction(self) -> float:
        total = self.operands_from_bypass + self.operands_from_regfile
        return self.operands_from_bypass / total if total else 0.0
