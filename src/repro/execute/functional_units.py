"""Functional unit pool.

Table 1 of the paper: 6 simple integer units (1 cycle), 3 integer
mult/div units (2-cycle multiply, 14-cycle divide), 4 simple FP units
(2 cycles), 2 FP divide units (14 cycles) and 4 load/store units.
Branches execute on the simple integer units.

All units are fully pipelined except the dividers, which are busy for the
whole operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.isa.opcodes import OpClass


@dataclass(frozen=True)
class FunctionalUnitConfig:
    """Number of functional units of each kind (Table 1 defaults)."""

    simple_int: int = 6
    int_mul_div: int = 3
    simple_fp: int = 4
    fp_div: int = 2
    load_store: int = 4

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigurationError(f"functional unit count {name} must be positive")


#: Which FU group executes each operation class.
_GROUP_FOR_CLASS: dict[OpClass, str] = {
    OpClass.INT_ALU: "simple_int",
    OpClass.BRANCH: "simple_int",
    OpClass.NOP: "simple_int",
    OpClass.INT_MUL: "int_mul_div",
    OpClass.INT_DIV: "int_mul_div",
    OpClass.FP_ALU: "simple_fp",
    OpClass.FP_MUL: "simple_fp",
    OpClass.FP_DIV: "fp_div",
    OpClass.LOAD: "load_store",
    OpClass.STORE: "load_store",
}

#: Operation classes whose units are NOT pipelined (busy for the full latency).
_UNPIPELINED_CLASSES = frozenset({OpClass.INT_DIV, OpClass.FP_DIV})


@dataclass
class _Group:
    count: int
    name: str = ""
    issued_this_cycle: int = 0
    #: cycles at which currently busy (unpipelined) units become free
    busy_until: list[int] = field(default_factory=list)


class FunctionalUnitPool:
    """Tracks per-cycle functional unit availability."""

    def __init__(self, config: FunctionalUnitConfig | None = None) -> None:
        self.config = config or FunctionalUnitConfig()
        self._groups: dict[str, _Group] = {
            "simple_int": _Group(self.config.simple_int, "simple_int"),
            "int_mul_div": _Group(self.config.int_mul_div, "int_mul_div"),
            "simple_fp": _Group(self.config.simple_fp, "simple_fp"),
            "fp_div": _Group(self.config.fp_div, "fp_div"),
            "load_store": _Group(self.config.load_store, "load_store"),
        }
        # Resolve op class -> group once; ``can_issue``/``issue`` run for
        # every issued instruction.
        self._group_for_class: dict[OpClass, _Group] = {
            op_class: self._groups[name]
            for op_class, name in _GROUP_FOR_CLASS.items()
        }
        self._cycle = -1
        self._dirty = False
        # statistics
        self.issues_by_group: dict[str, int] = {name: 0 for name in self._groups}
        self.structural_stalls = 0

    @staticmethod
    def group_for(op_class: OpClass) -> str:
        """Name of the FU group that executes ``op_class``."""
        return _GROUP_FOR_CLASS[op_class]

    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle issue counters and retire finished busy units.

        Skipped outright (cheap flag test) on the many cycles where no
        unit issued since the last reset and no unpipelined operation is
        still busy — the per-group loop showed up in profiles.
        """
        self._cycle = cycle
        if not self._dirty:
            return
        dirty = False
        for group in self._groups.values():
            group.issued_this_cycle = 0
            if group.busy_until:
                group.busy_until = [c for c in group.busy_until if c > cycle]
                if group.busy_until:
                    dirty = True
        self._dirty = dirty

    def can_issue(self, op_class: OpClass, cycle: int) -> bool:
        """Whether a unit for ``op_class`` can accept a new operation now."""
        group = self._group_for_class[op_class]
        available = group.count - group.issued_this_cycle
        if available <= 0:
            return False
        # ``busy_until`` is only populated by the (rare) unpipelined
        # divides; count in place rather than building a filtered list.
        for busy_cycle in group.busy_until:
            if busy_cycle > cycle:
                available -= 1
        return available > 0

    def issue(self, op_class: OpClass, cycle: int, latency: int) -> None:
        """Record that an operation started executing this cycle.

        Callers must have checked :meth:`can_issue`; issuing beyond
        capacity raises ``ConfigurationError`` to surface scheduler bugs.
        """
        if not self.can_issue(op_class, cycle):
            raise ConfigurationError(
                f"no free {_GROUP_FOR_CLASS[op_class]} unit at cycle {cycle}"
            )
        self.issue_unchecked(op_class, cycle, latency)

    def issue_unchecked(self, op_class: OpClass, cycle: int, latency: int) -> None:
        """:meth:`issue` without re-running the availability check.

        The pipeline's issue stage calls :meth:`can_issue` moments before
        committing to the issue (with no intervening FU state change), so
        re-checking inside :meth:`issue` doubled the per-issue cost.
        """
        group = self._group_for_class[op_class]
        group.issued_this_cycle += 1
        self._dirty = True
        if op_class in _UNPIPELINED_CLASSES:
            group.busy_until.append(cycle + latency)
        self.issues_by_group[group.name] += 1

    def record_structural_stall(self) -> None:
        self.structural_stalls += 1

    def utilization(self, total_cycles: int) -> dict[str, float]:
        """Issues per unit per cycle, per group (rough utilization proxy)."""
        if total_cycles <= 0:
            return {name: 0.0 for name in self._groups}
        return {
            name: self.issues_by_group[name] / (group.count * total_cycles)
            for name, group in self._groups.items()
        }
