"""Issue queue (instruction window) with wakeup/select.

Instructions wait here after dispatch until their source operands are
available and the structural resources they need (functional unit,
register-file read ports, a present upper-level copy for a register file
cache) can be secured.  The queue keeps, per physical register, the list
of waiting consumers so that

* producers finishing execution wake their dependents, and
* the register-file caching policies ("ready caching") and the
  prefetch-first-pair scheme can ask which consumers of a value exist in
  the window and whether they are ready.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.execute.bypass import BypassNetwork
from repro.execute.scoreboard import ValueScoreboard
from repro.isa.instruction import RegisterClass
from repro.rename.renamer import PhysicalRegister, RenamedInstruction


@dataclass(slots=True)
class IssueQueueEntry:
    """One instruction waiting in the window."""

    renamed: RenamedInstruction
    dispatch_cycle: int
    #: ``uid``s of source registers whose producer completion time is not
    #: yet known (integer keys hash at C speed).  ``None`` until the first
    #: pending source appears — falsy either way for ``data_ready`` and
    #: the select loop, and it skips a set allocation for the many
    #: entries that dispatch with all operands already produced.
    pending: Optional[set[int]] = None
    #: Earliest cycle this instruction could start executing, considering
    #: operand availability through bypass/register file (structural
    #: hazards can push the real execution later).
    earliest_ex_cycle: int = 0
    issued: bool = False
    issue_cycle: Optional[int] = None
    #: Cached copy of ``renamed.seq``: the select loop reads the sequence
    #: number for every window entry every cycle, and the property chain
    #: through two dataclasses is measurably slow.  Filled by
    #: ``__post_init__``; the constructor argument is ignored.
    seq: int = -1
    #: Per-source ``(register, scoreboard state, is_int)`` triples,
    #: resolved once at dispatch.  Issue attempts re-plan operand reads
    #: every retry; resolving the scoreboard state and register class here
    #: removes two lookups per source per attempt.  The state object for
    #: a live register is stable from allocation to release, and a source
    #: register cannot be released while a consumer still waits (its
    #: releaser commits after the consumer).
    operand_plan: tuple = ()

    def __post_init__(self) -> None:
        self.seq = self.renamed.instruction.seq

    @property
    def data_ready(self) -> bool:
        """All source operands have a known availability time."""
        return not self.pending


class IssueQueue:
    """Bounded out-of-order issue window."""

    def __init__(
        self,
        capacity: int,
        scoreboard: ValueScoreboard,
        bypass: BypassNetwork,
        track_consumers: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("issue queue capacity must be positive")
        self.capacity = capacity
        self.scoreboard = scoreboard
        self.bypass = bypass
        #: Whether the per-register consumer index is maintained.  Only
        #: the register-file-cache policies query it
        #: (:meth:`waiting_consumers_of`); the pipeline disables it for
        #: architectures that never ask (see
        #: ``RegisterFileModel.needs_consumer_index``), which removes one
        #: list append per source at dispatch and one list scan per
        #: source at issue.
        self.track_consumers = track_consumers
        #: Window entries keyed by sequence number.  Dispatch happens in
        #: program order and Python dictionaries preserve insertion order,
        #: so iterating the values is oldest-first *by construction* —
        #: the select loop relies on this instead of sorting every cycle.
        #: The dictionary object is never rebound (the pipeline hot loop
        #: holds a direct reference to it).
        self._entries: Dict[int, IssueQueueEntry] = {}
        # Waiter/consumer indexes keyed by ``PhysicalRegister.uid``.
        self._waiters: Dict[int, List[IssueQueueEntry]] = {}
        self._consumers: Dict[int, List[IssueQueueEntry]] = {}
        self.max_occupancy = 0
        # Hot-path caches (both objects are immutable after construction).
        self._read_stages = bypass.read_stages
        self._scoreboard_get = scoreboard.get

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def occupancy(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # dispatch / wakeup
    # ------------------------------------------------------------------

    def dispatch(self, renamed: RenamedInstruction, cycle: int) -> IssueQueueEntry:
        """Insert a renamed instruction into the window."""
        entries = self._entries
        if len(entries) >= self.capacity:
            raise SimulationError("issue queue overflow")
        # An instruction cannot be selected in the cycle it is dispatched;
        # the earliest issue is the next cycle, hence the earliest execute
        # is ``dispatch + 1 + read_stages``.
        entry = IssueQueueEntry(renamed=renamed, dispatch_cycle=cycle,
                                earliest_ex_cycle=cycle + 1 + self._read_stages)
        consumers = self._consumers
        waiters = self._waiters
        scoreboard_get = self._scoreboard_get
        earliest_consumer_execute = self.bypass.earliest_consumer_execute
        sources = renamed.sources
        if sources:
            track_consumers = self.track_consumers
            plan = []
            for register in sources:
                uid = register.uid
                if track_consumers:
                    consumer_list = consumers.get(uid)
                    if consumer_list is None:
                        consumers[uid] = [entry]
                    else:
                        consumer_list.append(entry)
                state = scoreboard_get(register)
                plan.append(
                    (register, state, register.reg_class is RegisterClass.INT)
                )
                if state.ex_end_cycle is not None:
                    availability = earliest_consumer_execute(state.ex_end_cycle)
                    if availability > entry.earliest_ex_cycle:
                        entry.earliest_ex_cycle = availability
                else:
                    if entry.pending is None:
                        entry.pending = {uid}
                    else:
                        entry.pending.add(uid)
                    waiter_list = waiters.get(uid)
                    if waiter_list is None:
                        waiters[uid] = [entry]
                    else:
                        waiter_list.append(entry)
            entry.operand_plan = tuple(plan)
        entries[entry.seq] = entry
        if len(entries) > self.max_occupancy:
            self.max_occupancy = len(entries)
        return entry

    def wakeup(self, register: PhysicalRegister, ex_end_cycle: int) -> List[IssueQueueEntry]:
        """Notify waiting consumers that ``register``'s producer finishes at
        ``ex_end_cycle``.  Returns the entries that became data-ready."""
        became_ready: List[IssueQueueEntry] = []
        uid = register.uid
        waiters = self._waiters.pop(uid, [])
        availability = self.bypass.earliest_consumer_execute(ex_end_cycle)
        for entry in waiters:
            if entry.issued:
                continue
            pending = entry.pending
            if pending is not None:
                pending.discard(uid)
            entry.earliest_ex_cycle = max(entry.earliest_ex_cycle, availability)
            if entry.data_ready:
                became_ready.append(entry)
        return became_ready

    # ------------------------------------------------------------------
    # select
    # ------------------------------------------------------------------

    _NO_ENTRIES: List[IssueQueueEntry] = []  # shared; callers must not mutate

    def schedulable(self, cycle: int) -> List[IssueQueueEntry]:
        """Entries whose operands allow execution to start at
        ``cycle + read_stages``, oldest first."""
        entries = self._entries
        if not entries:
            return self._NO_ENTRIES
        ex_start = cycle + self._read_stages
        # Oldest-first without sorting: insertion order is program order
        # (see ``_entries``), and issued entries are removed on selection,
        # so every resident entry has ``issued == False``.
        return [
            entry
            for entry in entries.values()
            if not entry.pending and entry.earliest_ex_cycle <= ex_start
        ]

    def mark_issued(self, entry: IssueQueueEntry, cycle: int) -> None:
        """Remove an entry from the window once it has been selected."""
        if entry.issued:
            raise SimulationError(f"instruction {entry.seq} issued twice")
        entry.issued = True
        entry.issue_cycle = cycle
        self._entries.pop(entry.seq, None)
        index_maps = (
            (self._consumers, self._waiters) if self.track_consumers
            else (self._waiters,)
        )
        for register in entry.renamed.sources:
            uid = register.uid
            for index_map in index_maps:
                waiting = index_map.get(uid)
                if waiting is None:
                    continue
                for index, candidate in enumerate(waiting):
                    if candidate is entry:
                        del waiting[index]
                        break
                if not waiting:
                    del index_map[uid]

    def defer(self, entry: IssueQueueEntry, until_cycle: int) -> None:
        """Delay an entry (e.g. waiting for an upper-level fill)."""
        earliest = until_cycle + self._read_stages
        if earliest > entry.earliest_ex_cycle:
            entry.earliest_ex_cycle = earliest

    # ------------------------------------------------------------------
    # queries used by caching / prefetch policies and statistics
    # ------------------------------------------------------------------

    def waiting_consumers_of(self, register: PhysicalRegister) -> List[IssueQueueEntry]:
        """Not-yet-issued window entries that source ``register``."""
        return [e for e in self._consumers.get(register.uid, []) if not e.issued]

    def entries(self) -> List[IssueQueueEntry]:
        return list(self._entries.values())

    def oldest_seq(self) -> Optional[int]:
        """Sequence number of the oldest instruction still waiting, if any."""
        for seq in self._entries:
            return seq
        return None

    def waiting_source_registers(self) -> set[PhysicalRegister]:
        """All physical registers that are sources of waiting instructions."""
        registers: set[PhysicalRegister] = set()
        for entry in self._entries.values():
            registers.update(entry.renamed.sources)
        return registers
