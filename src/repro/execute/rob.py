"""Reorder buffer.

Instructions enter the ROB in program order at dispatch and leave in
program order at commit, up to the commit width per cycle, once they have
completed execution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.rename.renamer import RenamedInstruction


@dataclass(slots=True)
class ROBEntry:
    """Lifecycle record of one in-flight instruction."""

    renamed: RenamedInstruction
    dispatch_cycle: int
    completed: bool = False
    complete_cycle: Optional[int] = None
    issue_cycle: Optional[int] = None

    @property
    def seq(self) -> int:
        return self.renamed.seq


class ReorderBuffer:
    """A bounded, program-ordered reorder buffer."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ConfigurationError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, ROBEntry]" = OrderedDict()
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    def dispatch(self, renamed: RenamedInstruction, cycle: int) -> ROBEntry:
        """Insert an instruction at the tail (program order)."""
        if self.full:
            raise SimulationError("ROB overflow")
        if self._entries and next(reversed(self._entries)) >= renamed.seq:
            raise SimulationError("ROB entries must be dispatched in program order")
        entry = ROBEntry(renamed=renamed, dispatch_cycle=cycle)
        self._entries[renamed.seq] = entry
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        return entry

    def mark_issued(self, seq: int, cycle: int) -> None:
        entry = self._get(seq)
        entry.issue_cycle = cycle

    def mark_completed(self, seq: int, cycle: int) -> None:
        entry = self._get(seq)
        entry.completed = True
        entry.complete_cycle = cycle

    def _get(self, seq: int) -> ROBEntry:
        entry = self._entries.get(seq)
        if entry is None:
            raise SimulationError(f"no ROB entry for seq {seq}")
        return entry

    _NO_ENTRIES: List[ROBEntry] = []  # shared; callers must not mutate

    def committable(self, width: int, cycle: int) -> List[ROBEntry]:
        """Return up to ``width`` head entries that completed before ``cycle``.

        A completed instruction commits at the earliest one cycle after it
        completes (write-back and commit are separate stages).
        """
        if width <= 0:
            return self._NO_ENTRIES
        # Allocation-free fast path: most cycles nothing is committable.
        ready: Optional[List[ROBEntry]] = None
        for entry in self._entries.values():
            if (entry.completed and entry.complete_cycle is not None
                    and entry.complete_cycle < cycle):
                if ready is None:
                    ready = [entry]
                else:
                    ready.append(entry)
                if len(ready) >= width:
                    break
            else:
                break
        return ready if ready is not None else self._NO_ENTRIES

    def commit(self, seq: int) -> ROBEntry:
        """Remove and return the head entry, which must have seq ``seq``."""
        if not self._entries:
            raise SimulationError("commit from an empty ROB")
        head_seq = next(iter(self._entries))
        if head_seq != seq:
            raise SimulationError(f"commit out of order: head is {head_seq}, got {seq}")
        return self._entries.popitem(last=False)[1]

    def occupancy(self) -> int:
        return len(self._entries)

    def entries(self) -> List[ROBEntry]:
        return list(self._entries.values())
