"""Value scoreboard: timing state of every physical register's value.

The scoreboard records, for each physical register currently in use, when
its value is produced (end of the producer's execution), when it becomes
readable from the register file (after write-port arbitration), and
whether any consumer obtained it through the bypass network.  Both the
issue logic and the register-file caching policies consult it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.rename.renamer import PhysicalRegister


#: Sentinel for "not yet known".
UNKNOWN = None


@dataclass(slots=True)
class ValueState:
    """Timing state of the value held by one physical register."""

    register: PhysicalRegister
    producer_seq: Optional[int] = None
    #: Cycle at the end of which the producing operation finishes executing
    #: (None while unknown, e.g. the producer has not started executing).
    ex_end_cycle: Optional[int] = None
    #: Cycle from which the value can be read from the register file
    #: (lowest level for a register file cache).
    rf_ready_cycle: Optional[int] = None
    #: Whether at least one consumer obtained this value from the bypass
    #: network (input to the non-bypass caching policy).
    consumed_via_bypass: bool = False
    #: Total number of consumers that have read the value so far, and how.
    reads_from_bypass: int = 0
    reads_from_upper: int = 0
    reads_from_lower: int = 0
    #: Whether the value has been written back to the (lowest) bank.
    written_back: bool = False
    #: For architecture-specific annotations (e.g. pending fill).  Lazily
    #: created by whoever needs it: one state is allocated per renamed
    #: destination, and an always-empty dictionary per state was
    #: measurable allocation churn.
    annotations: Optional[dict] = None

    @property
    def produced(self) -> bool:
        """Whether the producing instruction's finish time is known."""
        return self.ex_end_cycle is not None


class ValueScoreboard:
    """Tracks :class:`ValueState` for all live physical registers."""

    def __init__(self) -> None:
        #: State per live physical register, keyed by the register's
        #: cached integer ``uid`` — integers hash at C speed, and this is
        #: one of the hottest dictionaries in the simulator.  The
        #: dictionary object is never rebound: the pipeline hot loop
        #: keeps a direct reference to it to skip a method call per
        #: operand lookup.
        self._states: Dict[int, ValueState] = {}
        # Architected (initial) values are considered always available.
        self._architected: set[int] = set()

    # ------------------------------------------------------------------

    def seed_architected(self, register: PhysicalRegister) -> None:
        """Mark ``register`` as holding an architected value available from
        cycle 0 (used for the initial logical→physical mappings)."""
        state = ValueState(
            register=register,
            producer_seq=-1,
            ex_end_cycle=-1,
            rf_ready_cycle=0,
            written_back=True,
        )
        self._states[register.uid] = state
        self._architected.add(register.uid)

    def allocate(self, register: PhysicalRegister, producer_seq: int) -> ValueState:
        """Create a fresh state when ``register`` is allocated at rename."""
        state = ValueState(register=register, producer_seq=producer_seq)
        self._states[register.uid] = state
        return state

    def release(self, register: PhysicalRegister) -> None:
        """Drop the state when the register returns to the free list."""
        self._states.pop(register.uid, None)
        self._architected.discard(register.uid)

    def get(self, register: PhysicalRegister) -> ValueState:
        """Return the state of ``register``.

        Raises
        ------
        SimulationError
            If the register has no recorded state (reading a register that
            was never allocated indicates a renaming bug).
        """
        state = self._states.get(register.uid)
        if state is None:
            raise SimulationError(f"no scoreboard state for {register}")
        return state

    def contains(self, register: PhysicalRegister) -> bool:
        return register.uid in self._states

    # ------------------------------------------------------------------
    # producer-side updates
    # ------------------------------------------------------------------

    def set_execution_end(self, register: PhysicalRegister, ex_end_cycle: int) -> None:
        """Record the cycle at which the producer finishes executing."""
        state = self.get(register)
        state.ex_end_cycle = ex_end_cycle

    def set_rf_ready(self, register: PhysicalRegister, cycle: int) -> None:
        """Record when the value becomes readable from the register file."""
        state = self.get(register)
        state.rf_ready_cycle = cycle
        state.written_back = True

    # ------------------------------------------------------------------
    # consumer-side updates
    # ------------------------------------------------------------------

    def record_read(self, register: PhysicalRegister, source: str) -> None:
        """Record a consumer read; ``source`` is 'bypass', 'upper' or 'lower'."""
        state = self.get(register)
        if source == "bypass":
            state.consumed_via_bypass = True
            state.reads_from_bypass += 1
        elif source == "upper":
            state.reads_from_upper += 1
        elif source == "lower":
            state.reads_from_lower += 1
        else:
            raise SimulationError(f"unknown read source {source!r}")

    # ------------------------------------------------------------------

    def live_registers(self) -> list[PhysicalRegister]:
        return [state.register for state in self._states.values()]

    def __len__(self) -> int:
        return len(self._states)
