"""Experiment harness: one module per figure/table of the paper's evaluation.

Every experiment module exposes two functions:

* ``plan(settings)`` declares the simulation points the experiment needs
  as :class:`~repro.experiments.scheduler.SimulationPoint` objects; the
  scheduler deduplicates them across experiments and fans them out over
  worker processes.
* ``run(settings, cache=...)`` assembles an
  :class:`~repro.experiments.common.ExperimentResult` (whose ``render()``
  prints the same rows/series the paper reports) from cached results,
  simulating in-process anything the plan missed.

The :mod:`repro.experiments.runner` module ties them together for the
command line::

    python -m repro.experiments.runner --experiment figure6 --instructions 8000
    python -m repro.experiments.runner --experiment all --jobs 8 --cache-dir .simcache
"""

from repro.experiments.common import (
    ExperimentSettings,
    ExperimentResult,
    SimulationCache,
    architecture_factories,
    one_cycle_factory,
    two_cycle_full_bypass_factory,
    two_cycle_one_bypass_factory,
    register_file_cache_factory,
)
from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_table2,
    value_reuse,
    headline,
)

__all__ = [
    "ExperimentSettings",
    "ExperimentResult",
    "SimulationCache",
    "architecture_factories",
    "one_cycle_factory",
    "two_cycle_full_bypass_factory",
    "two_cycle_one_bypass_factory",
    "register_file_cache_factory",
    "figure1",
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9_table2",
    "value_reuse",
    "headline",
    "ablations",
]
