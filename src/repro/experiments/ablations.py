"""Ablation studies beyond the paper's published figures.

The paper's conclusions call out several design choices whose sensitivity
is worth quantifying, and mention the one-level organisation as ongoing
work.  This module provides four ablations of the register file cache on
a configurable benchmark subset:

* **upper-level capacity** — how large does the upper bank have to be
  (the paper fixes 16 registers)?
* **caching policy** — non-bypass and ready caching versus the
  always-cache and never-cache baselines.
* **number of buses** — how much inter-level bandwidth is needed for the
  demand fills and prefetches?
* **one-level banked organisation** — the alternative sketched in
  Figure 4a, with the register file split into interleaved banks that all
  feed the functional units.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.tables import format_series
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    OneLevelBankedFactory,
    SimulationCache,
    one_cycle_factory,
    register_file_cache_factory,
    suite_harmonic_mean,
    suite_points,
)

#: Upper-level capacities swept by the capacity ablation.
UPPER_CAPACITIES: Sequence[int] = (4, 8, 16, 32, 64)
#: Bus counts swept by the bandwidth ablation.
BUS_COUNTS: Sequence[int] = (1, 2, 4)
#: Caching policies compared by the policy ablation.
CACHING_POLICIES: Sequence[str] = ("non-bypass", "ready", "always", "never")
#: Bank counts for the one-level organisation.
BANK_COUNTS: Sequence[int] = (2, 4)


def _suite_hmeans(cache: SimulationCache, factory, key: str) -> Dict[str, float]:
    return {
        label: suite_harmonic_mean(cache.suite_ipcs(suite, factory, key))
        for suite, label in cache.settings.active_suite_labels()
    }


def _rfc_baseline_arch() -> tuple:
    return (register_file_cache_factory(), "rfc/non-bypass/prefetch-first-pair")


def _capacity_arch(capacity: int) -> tuple:
    return (register_file_cache_factory(upper_capacity=capacity),
            f"rfc/cap{capacity}")


def _policy_arch(policy: str) -> tuple:
    return (register_file_cache_factory(caching=policy), f"rfc/policy/{policy}")


def _bus_arch(buses: int) -> tuple:
    return (register_file_cache_factory(buses=buses), f"rfc/buses{buses}")


def _banked_arch(banks: int, read_ports_per_bank: int = 2,
                 write_ports_per_bank: int = 2) -> tuple:
    return (
        OneLevelBankedFactory(
            num_banks=banks,
            read_ports_per_bank=read_ports_per_bank,
            write_ports_per_bank=write_ports_per_bank,
        ),
        f"one-level/{banks}banks",
    )


def _swept_architectures(
    capacities: Sequence[int] = UPPER_CAPACITIES,
    policies: Sequence[str] = CACHING_POLICIES,
    bus_counts: Sequence[int] = BUS_COUNTS,
    bank_counts: Sequence[int] = BANK_COUNTS,
) -> list:
    """Every (factory, key) pair the four ablation sweeps evaluate."""
    pairs: list = [
        (one_cycle_factory(), "1-cycle"),
        _rfc_baseline_arch(),
    ]
    pairs += [_capacity_arch(capacity) for capacity in capacities]
    pairs += [_policy_arch(policy) for policy in policies]
    pairs += [_bus_arch(buses) for buses in bus_counts]
    pairs += [_banked_arch(banks) for banks in bank_counts]
    return pairs


def plan(settings: ExperimentSettings) -> list:
    """Simulation points the ablation sweeps need (parallel scheduler)."""
    points: list = []
    for factory, key in _swept_architectures():
        points += suite_points(settings, ("int", "fp"), factory, key)
    return points


def upper_capacity_sweep(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
    capacities: Sequence[int] = UPPER_CAPACITIES,
) -> ExperimentResult:
    """IPC of the register file cache as the upper-level size varies."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    series: Dict[str, Dict[str, float]] = {
        label: {} for _suite, label in settings.active_suite_labels()
    }
    for capacity in capacities:
        hmeans = _suite_hmeans(cache, *_capacity_arch(capacity))
        for suite, value in hmeans.items():
            series[suite][f"{capacity} regs"] = value
    baseline = _suite_hmeans(cache, one_cycle_factory(), "1-cycle")
    for suite, value in baseline.items():
        series[suite]["1-cycle file"] = value
    body = format_series(series, title="Harmonic-mean IPC vs upper-level capacity")
    return ExperimentResult(
        name="Ablation: upper-level capacity",
        title="Register file cache IPC for varying upper-level sizes",
        body=body,
        data={"series": series, "capacities": list(capacities)},
    )


def caching_policy_sweep(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
    policies: Sequence[str] = CACHING_POLICIES,
) -> ExperimentResult:
    """IPC of the register file cache under different caching policies."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    series: Dict[str, Dict[str, float]] = {
        label: {} for _suite, label in settings.active_suite_labels()
    }
    for policy in policies:
        hmeans = _suite_hmeans(cache, *_policy_arch(policy))
        for suite, value in hmeans.items():
            series[suite][policy] = value
    body = format_series(series, title="Harmonic-mean IPC vs caching policy")
    return ExperimentResult(
        name="Ablation: caching policy",
        title="Register file cache IPC under different caching policies",
        body=body,
        data={"series": series},
    )


def bus_count_sweep(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
    bus_counts: Sequence[int] = BUS_COUNTS,
) -> ExperimentResult:
    """IPC of the register file cache as inter-level bandwidth varies."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    series: Dict[str, Dict[str, float]] = {
        label: {} for _suite, label in settings.active_suite_labels()
    }
    for buses in bus_counts:
        hmeans = _suite_hmeans(cache, *_bus_arch(buses))
        for suite, value in hmeans.items():
            series[suite][f"{buses} buses"] = value
    body = format_series(series, title="Harmonic-mean IPC vs number of inter-level buses")
    return ExperimentResult(
        name="Ablation: inter-level buses",
        title="Register file cache IPC for varying bus counts",
        body=body,
        data={"series": series},
    )


def one_level_banked_comparison(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
    bank_counts: Sequence[int] = BANK_COUNTS,
    read_ports_per_bank: int = 2,
    write_ports_per_bank: int = 2,
) -> ExperimentResult:
    """The one-level multiple-banked organisation vs the register file cache."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    series: Dict[str, Dict[str, float]] = {
        label: {} for _suite, label in settings.active_suite_labels()
    }
    for banks in bank_counts:
        hmeans = _suite_hmeans(
            cache, *_banked_arch(banks, read_ports_per_bank, write_ports_per_bank)
        )
        for suite, value in hmeans.items():
            series[suite][f"one-level, {banks} banks"] = value
    rfc = _suite_hmeans(cache, *_rfc_baseline_arch())
    one_cycle = _suite_hmeans(cache, one_cycle_factory(), "1-cycle")
    for suite in series:
        series[suite]["register file cache"] = rfc[suite]
        series[suite]["1-cycle file"] = one_cycle[suite]
    body = format_series(series, title="Harmonic-mean IPC, one-level banked organisation")
    return ExperimentResult(
        name="Ablation: one-level organisation",
        title="One-level multiple-banked register file vs the register file cache",
        body=body,
        data={"series": series},
    )


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Run all four ablations and concatenate their reports."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    parts = [
        upper_capacity_sweep(settings, cache),
        caching_policy_sweep(settings, cache),
        bus_count_sweep(settings, cache),
        one_level_banked_comparison(settings, cache),
    ]
    body = "\n\n".join(part.body for part in parts)
    return ExperimentResult(
        name="Ablations",
        title="Design-choice ablations of the register file cache",
        body=body,
        data={part.name: part.data for part in parts},
    )
