"""Shared infrastructure for the experiment harness.

The register-file architecture factories defined here are **frozen
dataclasses**, not lambdas: the parallel scheduler ships them to worker
processes (they must pickle) and the persistent result store fingerprints
their parameters (they must be introspectable).  Calling an instance
builds a fresh register-file model, exactly like the old closures did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import harmonic_mean
from repro.errors import ConfigurationError
from repro.experiments.scheduler import SimulationPoint, run_simulation_point
from repro.experiments.store import ResultStore
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimulationStats
from repro.regfile.banked import OneLevelBankedRegisterFile
from repro.regfile.base import RegisterFileModel, UNLIMITED
from repro.regfile.cache import RegisterFileCache
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.regfile.policies import caching_policy_by_name
from repro.regfile.prefetch import fetch_policy_by_name
from repro.sampling.spec import SamplingSpec
from repro.workloads.spec_suites import SPECFP95, SPECINT95

#: Type of a register file factory as accepted by the processor model.
RegfileFactory = Callable[[], RegisterFileModel]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    ``instructions_per_benchmark`` trades fidelity for run time; the
    default keeps a full-suite experiment in the tens of seconds on a
    laptop.  ``benchmarks`` restricts the suite (useful for quick looks
    and for the pytest-benchmark harness).  ``sampling`` switches every
    point of the run from exact simulation to systematic interval
    sampling (``--sample`` on the runner; exact is the default).
    """

    instructions_per_benchmark: int = 8_000
    warmup_instructions: int = 2_000
    benchmarks: Optional[Sequence[str]] = None
    base_config: ProcessorConfig = field(default_factory=ProcessorConfig)
    sampling: Optional[SamplingSpec] = None

    def __post_init__(self) -> None:
        if self.instructions_per_benchmark <= 0:
            raise ConfigurationError("instructions_per_benchmark must be positive")
        if self.warmup_instructions < 0:
            raise ConfigurationError("warmup_instructions cannot be negative")
        if self.benchmarks is not None and not list(self.benchmarks):
            raise ConfigurationError(
                "benchmark filter is empty (omit it to run the full suite)"
            )

    def suite_selection(self, which: str) -> Sequence[str]:
        """Benchmarks of a suite ("int", "fp" or "all"), honouring the filter.

        May be empty (a valid FP-only filter selects nothing from "int";
        experiments simply skip that suite).  A filter naming benchmarks
        that do not exist anywhere raises, listing the unknown names —
        the old behaviour of silently falling back to the suite's first
        benchmark hid typos.
        """
        if which == "int":
            names = SPECINT95
        elif which == "fp":
            names = SPECFP95
        else:
            names = SPECINT95 + SPECFP95
        if self.benchmarks is None:
            return names
        known = set(SPECINT95 + SPECFP95)
        unknown = sorted(name for name in self.benchmarks if name not in known)
        if unknown:
            raise ConfigurationError(
                f"unknown benchmarks in filter: {', '.join(unknown)} "
                f"(known: {', '.join(SPECINT95 + SPECFP95)})"
            )
        return [name for name in names if name in self.benchmarks]

    def suite(self, which: str) -> Sequence[str]:
        """Like :meth:`suite_selection`, but an empty selection raises.

        Raises
        ------
        ConfigurationError
            If the ``benchmarks`` filter names unknown benchmarks, or if
            it excludes every benchmark of the explicitly requested suite.
        """
        selected = self.suite_selection(which)
        if not selected:
            raise ConfigurationError(
                f"benchmark filter {sorted(self.benchmarks or ())} matches "
                f"no benchmark of suite {which!r}"
            )
        return selected

    def active_suite_labels(self) -> List[tuple]:
        """The ("int"/"fp", display label) pairs the filter leaves non-empty.

        Experiments iterate this instead of a hard-coded
        ``(("int", "SpecInt95"), ("fp", "SpecFP95"))`` so that a
        single-suite ``--benchmarks`` filter runs the one suite it names
        rather than failing on the other.
        """
        return [
            (suite, label)
            for suite, label in (("int", "SpecInt95"), ("fp", "SpecFP95"))
            if self.suite_selection(suite)
        ]

    def processor_config(self, **overrides) -> ProcessorConfig:
        """Processor configuration with the experiment's instruction budget."""
        merged = {"max_instructions": self.instructions_per_benchmark}
        merged.update(overrides)
        return self.base_config.with_overrides(**merged)


@dataclass
class ExperimentResult:
    """The outcome of one experiment: a title, text body and raw data."""

    name: str
    title: str
    body: str
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        header = f"=== {self.name}: {self.title} ==="
        return f"{header}\n{self.body}\n"


# ----------------------------------------------------------------------
# architecture factories (picklable, introspectable)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SingleBankedFactory:
    """Builds single-banked register files of a fixed latency/bypass depth."""

    latency: int = 1
    bypass_levels: int = 1
    read_ports: Optional[int] = UNLIMITED
    write_ports: Optional[int] = UNLIMITED
    name: str = "single-banked"

    def __call__(self) -> SingleBankedRegisterFile:
        return SingleBankedRegisterFile(
            latency=self.latency,
            bypass_levels=self.bypass_levels,
            read_ports=self.read_ports,
            write_ports=self.write_ports,
            name=self.name,
        )


@dataclass(frozen=True)
class RegisterFileCacheFactory:
    """Builds register file caches; policies are referenced by name."""

    caching: str = "non-bypass"
    fetch: str = "prefetch-first-pair"
    upper_read_ports: Optional[int] = UNLIMITED
    upper_write_ports: Optional[int] = UNLIMITED
    lower_write_ports: Optional[int] = UNLIMITED
    buses: Optional[int] = UNLIMITED
    upper_capacity: int = 16
    lower_read_latency: int = 1

    def __call__(self) -> RegisterFileCache:
        return RegisterFileCache(
            upper_capacity=self.upper_capacity,
            caching_policy=caching_policy_by_name(self.caching),
            fetch_policy=fetch_policy_by_name(self.fetch),
            upper_read_ports=self.upper_read_ports,
            upper_write_ports=self.upper_write_ports,
            lower_write_ports=self.lower_write_ports,
            num_buses=self.buses,
            lower_read_latency=self.lower_read_latency,
        )


@dataclass(frozen=True)
class OneLevelBankedFactory:
    """Builds the one-level interleaved-bank organisation of Figure 4a."""

    num_banks: int = 2
    read_ports_per_bank: int = 2
    write_ports_per_bank: int = 2

    def __call__(self) -> OneLevelBankedRegisterFile:
        return OneLevelBankedRegisterFile(
            num_banks=self.num_banks,
            read_ports_per_bank=self.read_ports_per_bank,
            write_ports_per_bank=self.write_ports_per_bank,
        )


def one_cycle_factory(read_ports: Optional[int] = UNLIMITED,
                      write_ports: Optional[int] = UNLIMITED) -> RegfileFactory:
    """Non-pipelined single-banked register file (1 cycle, 1 bypass level)."""
    return SingleBankedFactory(
        latency=1, bypass_levels=1, read_ports=read_ports, write_ports=write_ports,
        name="1-cycle single-banked",
    )


def two_cycle_full_bypass_factory(read_ports: Optional[int] = UNLIMITED,
                                  write_ports: Optional[int] = UNLIMITED) -> RegfileFactory:
    """Pipelined single-banked register file with full (two-level) bypass."""
    return SingleBankedFactory(
        latency=2, bypass_levels=2, read_ports=read_ports, write_ports=write_ports,
        name="2-cycle single-banked, full bypass",
    )


def two_cycle_one_bypass_factory(read_ports: Optional[int] = UNLIMITED,
                                 write_ports: Optional[int] = UNLIMITED) -> RegfileFactory:
    """Pipelined single-banked register file with a single bypass level."""
    return SingleBankedFactory(
        latency=2, bypass_levels=1, read_ports=read_ports, write_ports=write_ports,
        name="2-cycle single-banked, 1 bypass",
    )


def register_file_cache_factory(
    caching: str = "non-bypass",
    fetch: str = "prefetch-first-pair",
    upper_read_ports: Optional[int] = UNLIMITED,
    upper_write_ports: Optional[int] = UNLIMITED,
    lower_write_ports: Optional[int] = UNLIMITED,
    buses: Optional[int] = UNLIMITED,
    upper_capacity: int = 16,
    lower_read_latency: int = 1,
) -> RegfileFactory:
    """Register file cache with the given policies and port counts.

    ``caching`` accepts any registered policy name ("non-bypass",
    "ready", "always", "never"); ``fetch`` accepts "prefetch-first-pair"
    or "fetch-on-demand".
    """
    return RegisterFileCacheFactory(
        caching=caching,
        fetch=fetch,
        upper_read_ports=upper_read_ports,
        upper_write_ports=upper_write_ports,
        lower_write_ports=lower_write_ports,
        buses=buses,
        upper_capacity=upper_capacity,
        lower_read_latency=lower_read_latency,
    )


def architecture_factories() -> Dict[str, RegfileFactory]:
    """The three architectures compared throughout the paper (unlimited ports)."""
    return {
        "1-cycle": one_cycle_factory(),
        "register file cache": register_file_cache_factory(),
        "2-cycle, 1-bypass": two_cycle_one_bypass_factory(),
        "2-cycle, full bypass": two_cycle_full_bypass_factory(),
    }


# ----------------------------------------------------------------------
# simulation driving and caching
# ----------------------------------------------------------------------


class SimulationCache:
    """Memoizes simulation results, optionally across processes and runs.

    Several figures share the same baseline runs (e.g. the 1-cycle
    unlimited-port configuration); the cache avoids re-simulating them.
    Results live in a :class:`~repro.experiments.store.ResultStore`,
    keyed by a content hash of the benchmark, the architecture (factory
    parameters included) and the **full** processor configuration — two
    configs differing in any field never collide.  Hand the cache a store
    with a ``cache_dir`` and results persist across invocations.
    """

    def __init__(self, settings: ExperimentSettings,
                 store: Optional[ResultStore] = None) -> None:
        self.settings = settings
        self.store = store if store is not None else ResultStore()

    def point(
        self,
        benchmark: str,
        factory: RegfileFactory,
        key: str,
        config: Optional[ProcessorConfig] = None,
    ) -> SimulationPoint:
        """The :class:`SimulationPoint` that :meth:`run` would execute."""
        return SimulationPoint(
            benchmark=benchmark,
            factory=factory,
            architecture=key,
            config=config or self.settings.processor_config(),
            warmup_instructions=self.settings.warmup_instructions,
            sampling=self.settings.sampling,
        )

    def run(
        self,
        benchmark: str,
        factory: RegfileFactory,
        key: str,
        config: Optional[ProcessorConfig] = None,
    ) -> SimulationStats:
        """Simulate ``benchmark`` on the architecture labelled ``key``."""
        point = self.point(benchmark, factory, key, config)
        store_key = point.store_key()
        stats = self.store.get(store_key)
        if stats is None:
            stats = run_simulation_point(point)
            self.store.put(store_key, stats, metadata=point.metadata())
        return stats

    def suite_ipcs(
        self,
        suite: str,
        factory: RegfileFactory,
        key: str,
        config: Optional[ProcessorConfig] = None,
    ) -> Dict[str, float]:
        """IPC of every benchmark of ``suite`` on one architecture."""
        return {
            benchmark: self.run(benchmark, factory, key, config).ipc
            for benchmark in self.settings.suite(suite)
        }


def suite_points(
    settings: ExperimentSettings,
    suites: Sequence[str],
    factory: RegfileFactory,
    key: str,
    config: Optional[ProcessorConfig] = None,
) -> List[SimulationPoint]:
    """The simulation points ``suite_ipcs`` would trigger, one per benchmark.

    The ``plan`` function of each figure module is built out of these;
    the scheduler deduplicates overlapping declarations across figures.
    """
    benchmarks: List[str] = []
    for suite in suites:
        benchmarks.extend(settings.suite_selection(suite))
    resolved = config or settings.processor_config()
    return [
        SimulationPoint(
            benchmark=benchmark,
            factory=factory,
            architecture=key,
            config=resolved,
            warmup_instructions=settings.warmup_instructions,
            sampling=settings.sampling,
        )
        for benchmark in dict.fromkeys(benchmarks)
    ]


def suite_harmonic_mean(ipcs: Mapping[str, float]) -> float:
    """Harmonic mean over a benchmark → IPC mapping."""
    return harmonic_mean(ipcs.values())


def with_hmean(ipcs: Mapping[str, float]) -> Dict[str, float]:
    """Copy of ``ipcs`` with an ``Hmean`` entry appended."""
    extended = dict(ipcs)
    extended["Hmean"] = suite_harmonic_mean(ipcs)
    return extended
