"""Shared infrastructure for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence

from repro.analysis.metrics import harmonic_mean
from repro.errors import ConfigurationError
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.regfile.base import RegisterFileModel, UNLIMITED
from repro.regfile.cache import RegisterFileCache
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.regfile.policies import CachingPolicy, NonBypassCaching, ReadyCaching
from repro.regfile.prefetch import FetchOnDemand, FetchPolicy, PrefetchFirstPair
from repro.workloads.profiles import get_profile
from repro.workloads.spec_suites import SPECFP95, SPECINT95
from repro.workloads.synthetic import SyntheticWorkload

#: Type of a register file factory as accepted by the processor model.
RegfileFactory = Callable[[], RegisterFileModel]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    ``instructions_per_benchmark`` trades fidelity for run time; the
    default keeps a full-suite experiment in the tens of seconds on a
    laptop.  ``benchmarks`` restricts the suite (useful for quick looks
    and for the pytest-benchmark harness).
    """

    instructions_per_benchmark: int = 8_000
    warmup_instructions: int = 2_000
    benchmarks: Optional[Sequence[str]] = None
    base_config: ProcessorConfig = field(default_factory=ProcessorConfig)

    def __post_init__(self) -> None:
        if self.instructions_per_benchmark <= 0:
            raise ConfigurationError("instructions_per_benchmark must be positive")
        if self.warmup_instructions < 0:
            raise ConfigurationError("warmup_instructions cannot be negative")

    def suite(self, which: str) -> Sequence[str]:
        """Benchmarks of a suite ("int", "fp" or "all"), honouring the filter."""
        if which == "int":
            names = SPECINT95
        elif which == "fp":
            names = SPECFP95
        else:
            names = SPECINT95 + SPECFP95
        if self.benchmarks is None:
            return names
        selected = [name for name in names if name in self.benchmarks]
        return selected or list(names[:1])

    def processor_config(self, **overrides) -> ProcessorConfig:
        """Processor configuration with the experiment's instruction budget."""
        merged = {"max_instructions": self.instructions_per_benchmark}
        merged.update(overrides)
        return self.base_config.with_overrides(**merged)


@dataclass
class ExperimentResult:
    """The outcome of one experiment: a title, text body and raw data."""

    name: str
    title: str
    body: str
    data: dict = field(default_factory=dict)

    def render(self) -> str:
        header = f"=== {self.name}: {self.title} ==="
        return f"{header}\n{self.body}\n"


# ----------------------------------------------------------------------
# architecture factories
# ----------------------------------------------------------------------


def one_cycle_factory(read_ports: Optional[int] = UNLIMITED,
                      write_ports: Optional[int] = UNLIMITED) -> RegfileFactory:
    """Non-pipelined single-banked register file (1 cycle, 1 bypass level)."""
    return lambda: SingleBankedRegisterFile(
        latency=1, bypass_levels=1, read_ports=read_ports, write_ports=write_ports,
        name="1-cycle single-banked",
    )


def two_cycle_full_bypass_factory(read_ports: Optional[int] = UNLIMITED,
                                  write_ports: Optional[int] = UNLIMITED) -> RegfileFactory:
    """Pipelined single-banked register file with full (two-level) bypass."""
    return lambda: SingleBankedRegisterFile(
        latency=2, bypass_levels=2, read_ports=read_ports, write_ports=write_ports,
        name="2-cycle single-banked, full bypass",
    )


def two_cycle_one_bypass_factory(read_ports: Optional[int] = UNLIMITED,
                                 write_ports: Optional[int] = UNLIMITED) -> RegfileFactory:
    """Pipelined single-banked register file with a single bypass level."""
    return lambda: SingleBankedRegisterFile(
        latency=2, bypass_levels=1, read_ports=read_ports, write_ports=write_ports,
        name="2-cycle single-banked, 1 bypass",
    )


def register_file_cache_factory(
    caching: str = "non-bypass",
    fetch: str = "prefetch-first-pair",
    upper_read_ports: Optional[int] = UNLIMITED,
    upper_write_ports: Optional[int] = UNLIMITED,
    lower_write_ports: Optional[int] = UNLIMITED,
    buses: Optional[int] = UNLIMITED,
    upper_capacity: int = 16,
    lower_read_latency: int = 1,
) -> RegfileFactory:
    """Register file cache with the given policies and port counts."""

    def build() -> RegisterFileCache:
        caching_policy: CachingPolicy = (
            NonBypassCaching() if caching == "non-bypass" else ReadyCaching()
        )
        fetch_policy: FetchPolicy = (
            PrefetchFirstPair() if fetch == "prefetch-first-pair" else FetchOnDemand()
        )
        return RegisterFileCache(
            upper_capacity=upper_capacity,
            caching_policy=caching_policy,
            fetch_policy=fetch_policy,
            upper_read_ports=upper_read_ports,
            upper_write_ports=upper_write_ports,
            lower_write_ports=lower_write_ports,
            num_buses=buses,
            lower_read_latency=lower_read_latency,
        )

    return build


def architecture_factories() -> Dict[str, RegfileFactory]:
    """The three architectures compared throughout the paper (unlimited ports)."""
    return {
        "1-cycle": one_cycle_factory(),
        "register file cache": register_file_cache_factory(),
        "2-cycle, 1-bypass": two_cycle_one_bypass_factory(),
        "2-cycle, full bypass": two_cycle_full_bypass_factory(),
    }


# ----------------------------------------------------------------------
# simulation driving and caching
# ----------------------------------------------------------------------


class SimulationCache:
    """Memoizes simulation results within one process.

    Several figures share the same baseline runs (e.g. the 1-cycle
    unlimited-port configuration); the cache avoids re-simulating them.
    """

    def __init__(self, settings: ExperimentSettings) -> None:
        self.settings = settings
        self._results: Dict[tuple, SimulationStats] = {}

    def run(
        self,
        benchmark: str,
        factory: RegfileFactory,
        key: str,
        config: Optional[ProcessorConfig] = None,
    ) -> SimulationStats:
        """Simulate ``benchmark`` on the architecture labelled ``key``."""
        config = config or self.settings.processor_config()
        cache_key = (benchmark, key, config.max_instructions,
                     config.num_int_physical, config.collect_occupancy,
                     config.instruction_window, config.rob_size)
        if cache_key in self._results:
            return self._results[cache_key]
        workload = SyntheticWorkload(get_profile(benchmark))
        stream = workload.instructions(
            config.max_instructions + self.settings.warmup_instructions
        )
        stats = simulate(stream, factory, config, benchmark_name=benchmark)
        self._results[cache_key] = stats
        return stats

    def suite_ipcs(
        self,
        suite: str,
        factory: RegfileFactory,
        key: str,
        config: Optional[ProcessorConfig] = None,
    ) -> Dict[str, float]:
        """IPC of every benchmark of ``suite`` on one architecture."""
        return {
            benchmark: self.run(benchmark, factory, key, config).ipc
            for benchmark in self.settings.suite(suite)
        }


def suite_harmonic_mean(ipcs: Mapping[str, float]) -> float:
    """Harmonic mean over a benchmark → IPC mapping."""
    return harmonic_mean(ipcs.values())


def with_hmean(ipcs: Mapping[str, float]) -> Dict[str, float]:
    """Copy of ``ipcs`` with an ``Hmean`` entry appended."""
    extended = dict(ipcs)
    extended["Hmean"] = suite_harmonic_mean(ipcs)
    return extended
