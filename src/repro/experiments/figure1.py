"""Figure 1: IPC versus the number of physical registers.

The paper varies the number of physical registers from 48 to 256 (per
register class) on an 8-way processor with a 256-entry reorder buffer and
instruction queue and a 1-cycle register file, and plots the harmonic
mean IPC of SpecInt95 and SpecFP95.  The expected shape: IPC grows with
the register count and flattens beyond roughly 128 registers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.tables import format_figure
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    suite_harmonic_mean,
)

#: Register counts swept by the paper.
REGISTER_COUNTS: tuple[int, ...] = (48, 64, 96, 128, 160, 192, 224, 256)


def run(
    settings: Optional[ExperimentSettings] = None,
    register_counts: Sequence[int] = REGISTER_COUNTS,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 1."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    factory = one_cycle_factory()

    series: dict[str, list[float]] = {"SpecInt95": [], "SpecFP95": []}
    per_benchmark: dict[int, dict[str, float]] = {}
    for count in register_counts:
        config = settings.processor_config(
            num_int_physical=count,
            num_fp_physical=count,
            instruction_window=256,
            rob_size=256,
        )
        ipcs_int = cache.suite_ipcs("int", factory, f"1-cycle/{count}regs", config)
        ipcs_fp = cache.suite_ipcs("fp", factory, f"1-cycle/{count}regs", config)
        per_benchmark[count] = {**ipcs_int, **ipcs_fp}
        series["SpecInt95"].append(suite_harmonic_mean(ipcs_int))
        series["SpecFP95"].append(suite_harmonic_mean(ipcs_fp))

    body = format_figure(
        list(register_counts),
        series,
        title="Harmonic-mean IPC vs number of physical registers "
              "(1-cycle register file, 256-entry window/ROB)",
    )
    return ExperimentResult(
        name="Figure 1",
        title="IPC for a varying number of physical registers",
        body=body,
        data={"register_counts": list(register_counts), "series": series,
              "per_benchmark": per_benchmark},
    )
