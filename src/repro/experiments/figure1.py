"""Figure 1: IPC versus the number of physical registers.

The paper varies the number of physical registers from 48 to 256 (per
register class) on an 8-way processor with a 256-entry reorder buffer and
instruction queue and a 1-cycle register file, and plots the harmonic
mean IPC of SpecInt95 and SpecFP95.  The expected shape: IPC grows with
the register count and flattens beyond roughly 128 registers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.tables import format_figure
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    suite_harmonic_mean,
    suite_points,
)
from repro.experiments.scheduler import SimulationPoint

#: Register counts swept by the paper.
REGISTER_COUNTS: tuple[int, ...] = (48, 64, 96, 128, 160, 192, 224, 256)


def plan(
    settings: ExperimentSettings,
    register_counts: Sequence[int] = REGISTER_COUNTS,
) -> list[SimulationPoint]:
    """Simulation points Figure 1 needs (for the parallel scheduler)."""
    factory = one_cycle_factory()
    points: list[SimulationPoint] = []
    for count in register_counts:
        config = settings.processor_config(
            num_int_physical=count,
            num_fp_physical=count,
            instruction_window=256,
            rob_size=256,
        )
        points += suite_points(settings, ("int", "fp"), factory,
                               f"1-cycle/{count}regs", config)
    return points


def run(
    settings: Optional[ExperimentSettings] = None,
    register_counts: Sequence[int] = REGISTER_COUNTS,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 1."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    factory = one_cycle_factory()

    labels = settings.active_suite_labels()
    series: dict[str, list[float]] = {label: [] for _suite, label in labels}
    per_benchmark: dict[int, dict[str, float]] = {}
    for count in register_counts:
        config = settings.processor_config(
            num_int_physical=count,
            num_fp_physical=count,
            instruction_window=256,
            rob_size=256,
        )
        merged: dict[str, float] = {}
        for suite, label in labels:
            ipcs = cache.suite_ipcs(suite, factory, f"1-cycle/{count}regs", config)
            merged.update(ipcs)
            series[label].append(suite_harmonic_mean(ipcs))
        per_benchmark[count] = merged

    body = format_figure(
        list(register_counts),
        series,
        title="Harmonic-mean IPC vs number of physical registers "
              "(1-cycle register file, 256-entry window/ROB)",
    )
    return ExperimentResult(
        name="Figure 1",
        title="IPC for a varying number of physical registers",
        body=body,
        data={"register_counts": list(register_counts), "series": series,
              "per_benchmark": per_benchmark},
    )
