"""Figure 2: impact of register file latency and bypass depth.

Per-benchmark IPC of three single-banked register files with unlimited
ports: 1-cycle/1-bypass, 2-cycle/2-bypass (full bypass) and
2-cycle/1-bypass.  Expected shape: the 1-cycle file is fastest, adding a
cycle costs little when full bypass is kept, and costs a lot (especially
for the integer codes) when only one bypass level is available.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_series
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    suite_points,
    two_cycle_full_bypass_factory,
    two_cycle_one_bypass_factory,
    with_hmean,
)

ARCHITECTURES = (
    ("1-cycle, 1-bypass level", one_cycle_factory, "1-cycle"),
    ("2-cycle, 2-bypass levels", two_cycle_full_bypass_factory, "2-cycle-full"),
    ("2-cycle, 1-bypass level", two_cycle_one_bypass_factory, "2-cycle-1byp"),
)


def plan(settings: ExperimentSettings) -> list:
    """Simulation points Figure 2 needs (for the parallel scheduler)."""
    points: list = []
    for _name, factory_builder, key in ARCHITECTURES:
        points += suite_points(settings, ("int", "fp"), factory_builder(), key)
    return points


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 2."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    data: dict[str, dict[str, dict[str, float]]] = {}
    sections = []
    for suite, label in settings.active_suite_labels():
        series = {}
        for name, factory_builder, key in ARCHITECTURES:
            ipcs = cache.suite_ipcs(suite, factory_builder(), key)
            series[name] = with_hmean(ipcs)
        data[label] = series
        sections.append(format_series(series, title=f"{label} IPC"))

    return ExperimentResult(
        name="Figure 2",
        title="IPC for 1-cycle, 2-cycle and 2-cycle/1-bypass register files",
        body="\n\n".join(sections),
        data=data,
    )
