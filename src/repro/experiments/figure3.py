"""Figure 3: how many registers actually hold values that are needed.

For every cycle the paper counts the registers containing a value that is
a source operand of (a) at least one unexecuted instruction in the window
("Value & Instruction"), and (b) an unexecuted instruction whose operands
are all ready ("Value & Ready Instruction"), and plots the cumulative
distribution averaged over each suite.  The punchline: a handful of
registers suffice the vast majority of the time, which is what makes a
small upper-level bank viable.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.distributions import average_cdfs, percentile_from_cdf
from repro.analysis.tables import format_figure
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    suite_points,
)

MAX_REGISTERS = 32


def plan(settings: ExperimentSettings) -> list:
    """Simulation points Figure 3 needs (for the parallel scheduler)."""
    config = settings.processor_config(collect_occupancy=True)
    return suite_points(settings, ("int", "fp"), one_cycle_factory(),
                        "1-cycle/occupancy", config)


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 3."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    factory = one_cycle_factory()

    sections = []
    data: dict[str, dict[str, list[float]]] = {}
    for suite, label in settings.active_suite_labels():
        config = settings.processor_config(collect_occupancy=True)
        needed_cdfs = []
        ready_cdfs = []
        for benchmark in settings.suite(suite):
            stats = cache.run(benchmark, factory, "1-cycle/occupancy", config)
            needed_cdfs.append(stats.occupancy_cdf("needed", MAX_REGISTERS))
            ready_cdfs.append(stats.occupancy_cdf("ready", MAX_REGISTERS))
        needed = average_cdfs(needed_cdfs)
        ready = average_cdfs(ready_cdfs)
        data[label] = {"value_and_instruction": needed, "value_and_ready": ready}
        sections.append(
            format_figure(
                list(range(MAX_REGISTERS + 1)),
                {"Value & Instruction": needed, "Value & Ready Instruction": ready},
                title=(
                    f"{label}: cumulative % of cycles vs number of registers "
                    f"(90% covered by {percentile_from_cdf(needed, 90)} / "
                    f"{percentile_from_cdf(ready, 90)} registers)"
                ),
                value_format="{:.1f}",
            )
        )

    return ExperimentResult(
        name="Figure 3",
        title="Cumulative distribution of the number of registers holding needed values",
        body="\n\n".join(sections),
        data=data,
    )
