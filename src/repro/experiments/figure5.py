"""Figure 5: caching and fetching policies of the register file cache.

Per-benchmark IPC (unlimited ports) of the four combinations of
{ready caching, non-bypass caching} × {fetch-on-demand,
prefetch-first-pair}.  The paper finds non-bypass caching slightly ahead
of ready caching and prefetch-first-pair helping a few programs.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_series
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    register_file_cache_factory,
    suite_points,
    with_hmean,
)

POLICY_COMBINATIONS = (
    ("ready caching + fetch-on-demand", "ready", "fetch-on-demand"),
    ("non-bypass caching + fetch-on-demand", "non-bypass", "fetch-on-demand"),
    ("ready caching + prefetch-first-pair", "ready", "prefetch-first-pair"),
    ("non-bypass caching + prefetch-first-pair", "non-bypass", "prefetch-first-pair"),
)


def plan(settings: ExperimentSettings) -> list:
    """Simulation points Figure 5 needs (for the parallel scheduler)."""
    points: list = []
    for _name, caching, fetch in POLICY_COMBINATIONS:
        factory = register_file_cache_factory(caching=caching, fetch=fetch)
        points += suite_points(settings, ("int", "fp"), factory,
                               f"rfc/{caching}/{fetch}")
    return points


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 5."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    data: dict[str, dict[str, dict[str, float]]] = {}
    sections = []
    for suite, label in settings.active_suite_labels():
        series = {}
        for name, caching, fetch in POLICY_COMBINATIONS:
            factory = register_file_cache_factory(caching=caching, fetch=fetch)
            key = f"rfc/{caching}/{fetch}"
            series[name] = with_hmean(cache.suite_ipcs(suite, factory, key))
        data[label] = series
        sections.append(format_series(series, title=f"{label} IPC (register file cache)"))

    return ExperimentResult(
        name="Figure 5",
        title="IPC for different register file cache caching/fetching policies",
        body="\n\n".join(sections),
        data=data,
    )
