"""Figure 6: register file cache versus single-banked with one bypass level.

Per-benchmark IPC of the best register-file-cache configuration
(non-bypass caching + prefetch-first-pair) against the 1-cycle and
2-cycle single-banked register files, all three with the same bypass
complexity (a single level) and unlimited ports.  Expected shape: the
register file cache sits between the two, clearly ahead of the 2-cycle
design (more so for the integer codes) and below the ideal 1-cycle one.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import percent_change
from repro.analysis.tables import format_series
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    register_file_cache_factory,
    suite_points,
    two_cycle_one_bypass_factory,
    with_hmean,
)


def _architectures() -> tuple:
    return (
        ("1-cycle", one_cycle_factory(), "1-cycle"),
        ("non-bypass caching + prefetch-first-pair",
         register_file_cache_factory(), "rfc/non-bypass/prefetch-first-pair"),
        ("2-cycle", two_cycle_one_bypass_factory(), "2-cycle-1byp"),
    )


def plan(settings: ExperimentSettings) -> list:
    """Simulation points Figure 6 needs (for the parallel scheduler)."""
    points: list = []
    for _name, factory, key in _architectures():
        points += suite_points(settings, ("int", "fp"), factory, key)
    return points


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 6."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    architectures = _architectures()

    data: dict[str, dict] = {}
    sections = []
    for suite, label in settings.active_suite_labels():
        series = {}
        for name, factory, key in architectures:
            series[name] = with_hmean(cache.suite_ipcs(suite, factory, key))
        data[label] = series
        rfc = series["non-bypass caching + prefetch-first-pair"]["Hmean"]
        one = series["1-cycle"]["Hmean"]
        two = series["2-cycle"]["Hmean"]
        summary = (
            f"register file cache vs 1-cycle: {percent_change(rfc, one):+.1f}% IPC; "
            f"vs 2-cycle/1-bypass: {percent_change(rfc, two):+.1f}% IPC"
        )
        data[label + "_summary"] = {"vs_one_cycle_pct": percent_change(rfc, one),
                                    "vs_two_cycle_pct": percent_change(rfc, two)}
        sections.append(format_series(series, title=f"{label} IPC — {summary}"))

    return ExperimentResult(
        name="Figure 6",
        title="Register file cache vs single-banked files with a single bypass level",
        body="\n\n".join(sections),
        data=data,
    )
