"""Figure 7: register file cache versus a 2-cycle file with full bypass.

The 2-cycle single-banked file with two bypass levels is slightly faster
than the register file cache, but needs twice the bypass network; the
paper reports the cache within 8% (SpecInt95) / 2% (SpecFP95) of it.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.metrics import percent_change
from repro.analysis.tables import format_series
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    register_file_cache_factory,
    suite_points,
    two_cycle_full_bypass_factory,
    with_hmean,
)


def _architectures() -> tuple:
    return (
        ("non-bypass caching + prefetch-first-pair",
         register_file_cache_factory(), "rfc/non-bypass/prefetch-first-pair"),
        ("2-cycle (full bypass)", two_cycle_full_bypass_factory(), "2-cycle-full"),
    )


def plan(settings: ExperimentSettings) -> list:
    """Simulation points Figure 7 needs (for the parallel scheduler)."""
    points: list = []
    for _name, factory, key in _architectures():
        points += suite_points(settings, ("int", "fp"), factory, key)
    return points


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 7."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    architectures = _architectures()

    data: dict[str, dict] = {}
    sections = []
    for suite, label in settings.active_suite_labels():
        series = {}
        for name, factory, key in architectures:
            series[name] = with_hmean(cache.suite_ipcs(suite, factory, key))
        data[label] = series
        rfc = series["non-bypass caching + prefetch-first-pair"]["Hmean"]
        full = series["2-cycle (full bypass)"]["Hmean"]
        data[label + "_summary"] = {"vs_two_cycle_full_pct": percent_change(rfc, full)}
        sections.append(
            format_series(
                series,
                title=(
                    f"{label} IPC — register file cache vs 2-cycle/full bypass: "
                    f"{percent_change(rfc, full):+.1f}%"
                ),
            )
        )

    return ExperimentResult(
        name="Figure 7",
        title="Register file cache vs a single bank with full bypass",
        body="\n\n".join(sections),
        data=data,
    )
