"""Figure 8: performance versus register file area.

For each register file architecture every combination of read/write port
counts is evaluated; configurations dominated by a cheaper-and-faster
sibling are discarded, and the surviving (area, relative IPC) points are
reported.  Performance is IPC relative to the 1-cycle single-banked file
with unlimited ports, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import format_table
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    register_file_cache_factory,
    suite_harmonic_mean,
    suite_points,
    two_cycle_one_bypass_factory,
)
from repro.hwmodel.area import RegisterFileGeometry
from repro.hwmodel.configurations import RegisterFileCacheGeometry
from repro.hwmodel.pareto import DesignPoint, pareto_frontier

#: Port ranges swept by default (kept small so a full sweep stays fast).
SINGLE_READ_PORTS: Sequence[int] = (2, 3, 4)
SINGLE_WRITE_PORTS: Sequence[int] = (2, 3, 4)
CACHE_READ_PORTS: Sequence[int] = (2, 3, 4)
CACHE_WRITE_PORTS: Sequence[int] = (2, 3)
CACHE_BUSES: Sequence[int] = (1, 2)


def _single_banked_arch(latency: int, reads: int, writes: int) -> tuple:
    """(factory, key) of one swept single-banked configuration."""
    if latency == 1:
        return (one_cycle_factory(read_ports=reads, write_ports=writes),
                f"1-cycle/{reads}R{writes}W")
    return (two_cycle_one_bypass_factory(read_ports=reads, write_ports=writes),
            f"2-cycle-1byp/{reads}R{writes}W")


def _rfc_arch(reads: int, writes: int, buses: int) -> tuple:
    """(factory, key) of one swept register-file-cache configuration."""
    return (
        register_file_cache_factory(
            upper_read_ports=reads,
            upper_write_ports=writes,
            lower_write_ports=writes,
            buses=buses,
        ),
        f"rfc/{reads}R{writes}W{buses}B",
    )


def _swept_architectures() -> List[tuple]:
    """Every (factory, key) pair the sweep evaluates, baseline included."""
    pairs: List[tuple] = [(one_cycle_factory(), "1-cycle")]
    for reads in SINGLE_READ_PORTS:
        for writes in SINGLE_WRITE_PORTS:
            pairs.append(_single_banked_arch(1, reads, writes))
            pairs.append(_single_banked_arch(2, reads, writes))
    for reads in CACHE_READ_PORTS:
        for writes in CACHE_WRITE_PORTS:
            for buses in CACHE_BUSES:
                pairs.append(_rfc_arch(reads, writes, buses))
    return pairs


def plan(settings: ExperimentSettings) -> List:
    """Simulation points Figure 8 needs (for the parallel scheduler)."""
    points: List = []
    for factory, key in _swept_architectures():
        points += suite_points(settings, ("int", "fp"), factory, key)
    return points


def _single_banked_points(
    cache: SimulationCache,
    suite: str,
    latency: int,
    baseline_ipc: float,
) -> List[DesignPoint]:
    points: List[DesignPoint] = []
    for reads in SINGLE_READ_PORTS:
        for writes in SINGLE_WRITE_PORTS:
            factory, key = _single_banked_arch(latency, reads, writes)
            ipcs = cache.suite_ipcs(suite, factory, key)
            geometry = RegisterFileGeometry(128, reads, writes)
            points.append(
                DesignPoint(
                    cost=geometry.area_units(),
                    value=suite_harmonic_mean(ipcs) / baseline_ipc,
                    label=f"{reads}R/{writes}W",
                )
            )
    return points


def _register_file_cache_points(
    cache: SimulationCache,
    suite: str,
    baseline_ipc: float,
) -> List[DesignPoint]:
    points: List[DesignPoint] = []
    for reads in CACHE_READ_PORTS:
        for writes in CACHE_WRITE_PORTS:
            for buses in CACHE_BUSES:
                factory, key = _rfc_arch(reads, writes, buses)
                ipcs = cache.suite_ipcs(suite, factory, key)
                geometry = RegisterFileCacheGeometry(
                    upper_read_ports=reads,
                    upper_write_ports=writes,
                    lower_write_ports=writes,
                    buses=buses,
                )
                points.append(
                    DesignPoint(
                        cost=geometry.area_units(),
                        value=suite_harmonic_mean(ipcs) / baseline_ipc,
                        label=f"{reads}R/{writes}W/{buses}B",
                    )
                )
    return points


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (Pareto frontier of performance vs area)."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    sections = []
    data: Dict[str, Dict[str, List[dict]]] = {}
    for suite, label in settings.active_suite_labels():
        baseline = suite_harmonic_mean(
            cache.suite_ipcs(suite, one_cycle_factory(), "1-cycle")
        )
        architectures = {
            "1-cycle": _single_banked_points(cache, suite, 1, baseline),
            "register file cache": _register_file_cache_points(cache, suite, baseline),
            "2-cycle, 1-bypass": _single_banked_points(cache, suite, 2, baseline),
        }
        data[label] = {}
        rows = []
        for arch_name, points in architectures.items():
            frontier = pareto_frontier(points)
            data[label][arch_name] = [
                {"area_10Klambda2": p.cost, "relative_performance": p.value, "ports": p.label}
                for p in frontier
            ]
            for point in frontier:
                rows.append((arch_name, point.label, round(point.cost), round(point.value, 3)))
        rows.sort(key=lambda row: (row[0], row[2]))
        sections.append(
            format_table(
                ("architecture", "ports", "area (10K λ²)", "relative performance"),
                rows,
                title=f"{label}: Pareto-optimal configurations "
                      f"(performance relative to 1-cycle, unlimited ports)",
            )
        )

    return ExperimentResult(
        name="Figure 8",
        title="Performance for a varying area cost (Pareto frontier per architecture)",
        body="\n\n".join(sections),
        data=data,
    )
