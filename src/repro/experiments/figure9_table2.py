"""Table 2 and Figure 9: factoring in the register file access time.

Table 2 fixes four roughly-equal-area configurations C1–C4 and gives, for
each architecture, its port counts, its area and the processor cycle time
its register file imposes (the 2-cycle file is optimistically assumed to
pipeline into two equal stages).  Figure 9 then reports *instruction
throughput* (IPC divided by cycle time), relative to the 1-cycle
single-banked file at C1.  This is where the register file cache wins
big: its cycle time is set by the small upper bank.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.metrics import instruction_throughput
from repro.analysis.tables import format_series, format_table
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    register_file_cache_factory,
    suite_harmonic_mean,
    suite_points,
    two_cycle_one_bypass_factory,
)
from repro.hwmodel.configurations import (
    TABLE2_CONFIGURATIONS,
    ArchitectureConfiguration,
    PAPER_TABLE2,
)


def _table2_rows() -> list[tuple]:
    rows = []
    for configuration in TABLE2_CONFIGURATIONS:
        single_area = configuration.single_banked_area_units()
        single_access = configuration.single_banked_access_time_ns()
        cache_geometry = configuration.cache_geometry
        paper = PAPER_TABLE2[configuration.name]
        rows.append(
            (
                configuration.name,
                f"{configuration.single_read_ports}R/{configuration.single_write_ports}W",
                round(single_area),
                round(paper["one-cycle"][0]),
                round(single_access, 2),
                round(single_access / 2, 2),
                (
                    f"{cache_geometry.upper_read_ports}R/"
                    f"{cache_geometry.upper_write_ports}W+{cache_geometry.buses}B"
                ),
                round(cache_geometry.area_units()),
                round(paper["cache"][0]),
                round(cache_geometry.cycle_time_ns(), 2),
            )
        )
    return rows


def _configuration_architectures(
    configuration: ArchitectureConfiguration,
) -> tuple:
    """(factory, key) of the three architectures at one Table 2 config."""
    reads = configuration.single_read_ports
    writes = configuration.single_write_ports
    cache_geometry = configuration.cache_geometry
    return (
        (one_cycle_factory(read_ports=reads, write_ports=writes),
         f"1-cycle/{reads}R{writes}W"),
        (two_cycle_one_bypass_factory(read_ports=reads, write_ports=writes),
         f"2-cycle-1byp/{reads}R{writes}W"),
        (register_file_cache_factory(
            upper_read_ports=cache_geometry.upper_read_ports,
            upper_write_ports=cache_geometry.upper_write_ports,
            lower_write_ports=cache_geometry.lower_write_ports,
            buses=cache_geometry.buses,
            lower_read_latency=cache_geometry.lower_read_latency_cycles(),
        ),
         (
             f"rfc/{cache_geometry.upper_read_ports}R"
             f"{cache_geometry.upper_write_ports}W{cache_geometry.buses}B"
         )),
    )


def plan(settings) -> list:
    """Simulation points Figure 9 / Table 2 need (parallel scheduler)."""
    points: list = []
    for configuration in TABLE2_CONFIGURATIONS:
        for factory, key in _configuration_architectures(configuration):
            points += suite_points(settings, ("int", "fp"), factory, key)
    return points


def _suite_throughputs(
    cache: SimulationCache,
    suite: str,
    configuration: ArchitectureConfiguration,
) -> Dict[str, float]:
    """Instruction throughput (inst/ns) of each architecture at one config."""
    cache_geometry = configuration.cache_geometry
    architectures = _configuration_architectures(configuration)

    one_cycle_ipc = suite_harmonic_mean(
        cache.suite_ipcs(suite, architectures[0][0], architectures[0][1])
    )
    two_cycle_ipc = suite_harmonic_mean(
        cache.suite_ipcs(suite, architectures[1][0], architectures[1][1])
    )
    cache_ipc = suite_harmonic_mean(
        cache.suite_ipcs(suite, architectures[2][0], architectures[2][1])
    )

    access_time = configuration.single_banked_access_time_ns()
    return {
        "1-cycle": instruction_throughput(one_cycle_ipc, access_time),
        "non-bypass caching + prefetch-first-pair": instruction_throughput(
            cache_ipc, cache_geometry.cycle_time_ns()
        ),
        "2-cycle, 1-bypass": instruction_throughput(two_cycle_ipc, access_time / 2.0),
    }


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Reproduce Table 2 and Figure 9."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    table2 = format_table(
        (
            "conf", "single ports", "single area", "(paper)", "1-cyc time (ns)",
            "2-cyc time (ns)", "cache upper ports", "cache area", "(paper)",
            "cache cycle (ns)",
        ),
        _table2_rows(),
        title="Table 2: port configurations, modelled area and cycle time "
              "(areas in 10K λ², paper values for comparison)",
    )

    sections = [table2]
    data: dict = {"table2": _table2_rows()}
    for suite, label in settings.active_suite_labels():
        series: Dict[str, Dict[str, float]] = {}
        baseline: Optional[float] = None
        for configuration in TABLE2_CONFIGURATIONS:
            throughputs = _suite_throughputs(cache, suite, configuration)
            if baseline is None:
                baseline = throughputs["1-cycle"]
            for arch_name, value in throughputs.items():
                series.setdefault(arch_name, {})[configuration.name] = value / baseline
        data[label] = series
        best = {arch: max(values.values()) for arch, values in series.items()}
        rfc = best["non-bypass caching + prefetch-first-pair"]
        summary = (
            f"best-configuration speedup of the register file cache: "
            f"{100 * (rfc / best['1-cycle'] - 1):+.0f}% vs 1-cycle, "
            f"{100 * (rfc / best['2-cycle, 1-bypass'] - 1):+.0f}% vs 2-cycle/1-bypass"
        )
        data[label + "_best"] = best
        sections.append(
            format_series(
                series,
                title=f"Figure 9 — {label} relative instruction throughput "
                      f"(1-cycle @ C1 = 1.0). {summary}",
            )
        )

    return ExperimentResult(
        name="Figure 9 / Table 2",
        title="Performance with the register file access time factored in",
        body="\n\n".join(sections),
        data=data,
    )
