"""The paper's headline claims, derived from Figures 6 and 9.

* The register file cache degrades IPC by about 10% (SpecInt95) and 2%
  (SpecFP95) with respect to a non-pipelined single-banked register file
  (unlimited ports), and
* outperforms it by 87% / 92% in instruction throughput once the register
  file access time determines the cycle time and the best configuration
  is chosen for each architecture;
* versus the 2-cycle single-banked file with one bypass level it gains
  about 10% / 4% IPC and 9% (SpecInt95) throughput.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments import figure6, figure9_table2
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
)

#: The numbers the paper reports, for side-by-side comparison.
PAPER_CLAIMS = {
    ("SpecInt95", "IPC vs 1-cycle"): -10.0,
    ("SpecFP95", "IPC vs 1-cycle"): -2.0,
    ("SpecInt95", "IPC vs 2-cycle/1-bypass"): 10.0,
    ("SpecFP95", "IPC vs 2-cycle/1-bypass"): 4.0,
    ("SpecInt95", "throughput vs 1-cycle (best config)"): 87.0,
    ("SpecFP95", "throughput vs 1-cycle (best config)"): 92.0,
    ("SpecInt95", "throughput vs 2-cycle/1-bypass (best config)"): 9.0,
    ("SpecFP95", "throughput vs 2-cycle/1-bypass (best config)"): 0.0,
}


def plan(settings: ExperimentSettings) -> list:
    """Simulation points the headline experiment needs (Figures 6 and 9)."""
    return figure6.plan(settings) + figure9_table2.plan(settings)


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Compute the headline claims on the simulated workloads."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)

    ipc_result = figure6.run(settings, cache)
    throughput_result = figure9_table2.run(settings, cache)

    measured: dict[tuple[str, str], float] = {}
    for _suite, label in settings.active_suite_labels():
        summary = ipc_result.data[label + "_summary"]
        measured[(label, "IPC vs 1-cycle")] = summary["vs_one_cycle_pct"]
        measured[(label, "IPC vs 2-cycle/1-bypass")] = summary["vs_two_cycle_pct"]
        best = throughput_result.data[label + "_best"]
        rfc = best["non-bypass caching + prefetch-first-pair"]
        measured[(label, "throughput vs 1-cycle (best config)")] = (
            100.0 * (rfc / best["1-cycle"] - 1.0)
        )
        measured[(label, "throughput vs 2-cycle/1-bypass (best config)")] = (
            100.0 * (rfc / best["2-cycle, 1-bypass"] - 1.0)
        )

    rows = []
    for (suite, metric), paper_value in PAPER_CLAIMS.items():
        if (suite, metric) not in measured:  # suite filtered out
            continue
        rows.append(
            (suite, metric, f"{paper_value:+.0f}%", f"{measured[(suite, metric)]:+.1f}%")
        )
    body = format_table(
        ("suite", "metric (register file cache)", "paper", "measured"),
        rows,
        title="Headline claims: paper vs this reproduction",
    )
    return ExperimentResult(
        name="Headline",
        title="Paper headline claims vs measured results",
        body=body,
        data={"measured": {f"{k[0]}|{k[1]}": v for k, v in measured.items()}},
    )
