"""Command-line driver for the experiment harness.

Examples
--------

Run a single figure with a reduced instruction budget::

    python -m repro.experiments.runner --experiment figure6 --instructions 5000

Run everything in parallel with a persistent result cache (the second
invocation only re-renders the reports — every simulation is a cache
hit)::

    python -m repro.experiments.runner --experiment all --jobs 8 \\
        --cache-dir .simcache --output results.txt

Machine-readable output::

    python -m repro.experiments.runner --experiment headline --format json
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_table2,
    headline,
    value_reuse,
)
from repro.errors import ReproError
from repro.experiments.common import ExperimentResult, ExperimentSettings, SimulationCache
from repro.experiments.scheduler import SimulationPoint, SweepEngine
from repro.experiments.store import ResultStore
from repro.sampling.spec import parse_sampling
from repro.version import __version__

#: All experiments in the order they appear in the paper.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "value_reuse": value_reuse.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9_table2.run,
    "headline": headline.run,
    "ablations": ablations.run,
}

#: The ``plan`` function of each experiment: what runs it will need.
PLANNERS: Dict[str, Callable[[ExperimentSettings], List[SimulationPoint]]] = {
    "figure1": figure1.plan,
    "figure2": figure2.plan,
    "figure3": figure3.plan,
    "value_reuse": value_reuse.plan,
    "figure5": figure5.plan,
    "figure6": figure6.plan,
    "figure7": figure7.plan,
    "figure8": figure8.plan,
    "figure9": figure9_table2.plan,
    "headline": headline.plan,
    "ablations": ablations.plan,
}

REPORT_FORMATS = ("text", "json", "csv")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--experiment", default="headline",
                        choices=list(EXPERIMENTS) + ["all"],
                        help="which experiment to run (default: headline)")
    parser.add_argument("--instructions", type=int, default=8000,
                        help="committed instructions per benchmark per run")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict to these benchmarks (default: full SPEC95)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation fan-out "
                             "(default: 1, serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for the persistent simulation cache; "
                             "results are reused across invocations")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore --cache-dir: neither read nor write the "
                             "persistent cache")
    parser.add_argument("--no-trace-replay", action="store_true",
                        help="run every point with a live frontend instead of "
                             "the trace-once/replay-many engine (slower; "
                             "results are bit-identical either way)")
    parser.add_argument("--sample", default=None, metavar="STRIDE:WINDOW[:WARMUP]",
                        help="estimate every point by systematic interval "
                             "sampling instead of exact simulation: detailed "
                             "windows of WINDOW instructions every STRIDE "
                             "instructions, IPC reported as mean ± confidence "
                             "interval (see python -m repro.sampling --list; "
                             "default: exact)")
    parser.add_argument("--format", default="text", choices=REPORT_FORMATS,
                        help="report format (default: text)")
    parser.add_argument("--output", default=None,
                        help="write the report to this file as well as stdout")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress scheduling progress on stderr")
    return parser


def plan_experiments(
    names: Sequence[str],
    settings: ExperimentSettings,
) -> List[SimulationPoint]:
    """Every simulation point the named experiments declare."""
    points: List[SimulationPoint] = []
    for name in names:
        points.extend(PLANNERS[name](settings))
    return points


def run_experiments(
    names: Sequence[str],
    settings: ExperimentSettings,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    use_trace_replay: bool = True,
    engine: Optional[SweepEngine] = None,
) -> list[ExperimentResult]:
    """Run the named experiments, sharing one simulation cache.

    The experiments' declared simulation points are deduplicated and
    executed up front through a :class:`SweepEngine` (across ``jobs``
    worker processes when ``jobs`` > 1); the experiment functions then
    assemble their reports from cache hits.  Any point a ``plan``
    under-declares is simply simulated in-process when the experiment
    asks for it.  Long-lived callers (the sweep service) pass their own
    ``engine`` so warm workers and trace caches persist across calls;
    ``store``/``jobs``/``use_trace_replay`` are ignored in that case.
    """
    if engine is None:
        engine = SweepEngine(store=store, jobs=jobs,
                             use_trace_replay=use_trace_replay)
    store = engine.store
    cache = SimulationCache(settings, store=store)
    engine.execute(plan_experiments(names, settings), progress=progress)
    results = []
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](settings, cache=cache)
        result.data["elapsed_seconds"] = round(time.time() - started, 1)
        results.append(result)
    return results


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------


def render_text(results: Sequence[ExperimentResult]) -> str:
    return "\n".join(result.render() for result in results)


def render_json(results: Sequence[ExperimentResult],
                settings: ExperimentSettings,
                store: Optional[ResultStore] = None) -> str:
    payload = {
        "schema": 1,
        "version": __version__,
        "settings": {
            "instructions_per_benchmark": settings.instructions_per_benchmark,
            "warmup_instructions": settings.warmup_instructions,
            "benchmarks": (list(settings.benchmarks)
                           if settings.benchmarks is not None else None),
        },
        **(
            {"sampling": settings.sampling.to_payload()}
            if settings.sampling is not None
            else {}
        ),
        "results": [
            {
                "name": result.name,
                "title": result.title,
                "body": result.body,
                "data": result.data,
            }
            for result in results
        ],
    }
    if store is not None:
        # Cache accounting for the run: a warm rerun must show zero misses
        # and zero new results (CI asserts this determinism property).
        payload["cache"] = store.counters()
    return json.dumps(payload, indent=2, sort_keys=True, default=str)


def _flatten_metrics(prefix: str, value, rows: List[tuple]) -> None:
    """Depth-first flattening of nested data into (path, value) rows."""
    if isinstance(value, Mapping):
        for key in value:
            path = f"{prefix}.{key}" if prefix else str(key)
            _flatten_metrics(path, value[key], rows)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _flatten_metrics(f"{prefix}[{index}]", item, rows)
    elif isinstance(value, bool) or value is None:
        rows.append((prefix, "" if value is None else str(value).lower()))
    elif isinstance(value, (int, float, str)):
        rows.append((prefix, value))


def render_csv(results: Sequence[ExperimentResult]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(("experiment", "metric", "value"))
    for result in results:
        rows: List[tuple] = []
        _flatten_metrics("", result.data, rows)
        for path, value in rows:
            writer.writerow((result.name, path, value))
    return buffer.getvalue()


def render_report(results: Sequence[ExperimentResult],
                  settings: ExperimentSettings,
                  report_format: str,
                  store: Optional[ResultStore] = None) -> str:
    if report_format == "json":
        return render_json(results, settings, store=store)
    if report_format == "csv":
        return render_csv(results)
    return render_text(results)


# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        settings = ExperimentSettings(
            instructions_per_benchmark=args.instructions,
            benchmarks=args.benchmarks,
            sampling=(parse_sampling(args.sample)
                      if args.sample is not None else None),
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    cache_dir = None if args.no_cache else args.cache_dir
    try:
        store = ResultStore(cache_dir=cache_dir)
    except OSError as error:
        print(f"error: cannot use cache directory {cache_dir!r}: {error}",
              file=sys.stderr)
        return 2

    def progress(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr, flush=True)

    try:
        results = run_experiments(names, settings, store=store,
                                  jobs=args.jobs, progress=progress,
                                  use_trace_replay=not args.no_trace_replay)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = render_report(results, settings, args.format, store=store)
    print(report)
    progress(store.describe())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
