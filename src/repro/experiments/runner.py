"""Command-line driver for the experiment harness.

Examples
--------

Run a single figure with a reduced instruction budget::

    python -m repro.experiments.runner --experiment figure6 --instructions 5000

Run everything (slow) and save the report::

    python -m repro.experiments.runner --experiment all --output results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9_table2,
    headline,
    value_reuse,
)
from repro.experiments.common import ExperimentResult, ExperimentSettings, SimulationCache

#: All experiments in the order they appear in the paper.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "value_reuse": value_reuse.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9_table2.run,
    "headline": headline.run,
    "ablations": ablations.run,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--experiment", default="headline",
                        choices=list(EXPERIMENTS) + ["all"],
                        help="which experiment to run (default: headline)")
    parser.add_argument("--instructions", type=int, default=8000,
                        help="committed instructions per benchmark per run")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict to these benchmarks (default: full SPEC95)")
    parser.add_argument("--output", default=None,
                        help="write the report to this file as well as stdout")
    return parser


def run_experiments(
    names: Sequence[str],
    settings: ExperimentSettings,
) -> list[ExperimentResult]:
    """Run the named experiments, sharing one simulation cache."""
    cache = SimulationCache(settings)
    results = []
    for name in names:
        started = time.time()
        result = EXPERIMENTS[name](settings, cache=cache)
        result.data["elapsed_seconds"] = round(time.time() - started, 1)
        results.append(result)
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    settings = ExperimentSettings(
        instructions_per_benchmark=args.instructions,
        benchmarks=args.benchmarks,
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = run_experiments(names, settings)
    report = "\n".join(result.render() for result in results)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
