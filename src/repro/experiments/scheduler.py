"""Parallel execution of simulation points.

Experiments *declare* the simulation runs they need as
:class:`SimulationPoint` objects (see the ``plan`` function of each
figure module); the scheduler deduplicates them, skips points already in
the :class:`~repro.experiments.store.ResultStore` and executes the
remainder with the **trace-once / replay-many** engine:

* pending points are grouped by their decoded-trace key — one
  (workload, frontend configuration) pair per group; every register-file
  architecture and backend configuration in a sweep shares one group;
* each group's trace is recorded once (one canonical pipeline run over
  the full stream, see :mod:`repro.trace`) unless the
  :class:`~repro.trace.store.TraceStore` already holds it;
* the group's points are then *replayed* against the trace, skipping
  workload generation and the whole frontend while reproducing the
  live-run statistics bit for bit.

With ``jobs`` > 1 the work fans out across a **warm worker pool**: the
pool persists across calls (figure sweeps reuse it), each worker
receives a group's trace once per batch — as shared payload bytes, or by
key when a ``--cache-dir`` lets workers load it from disk — and caches
it in process-global memory, and batches carry multiple points per
dispatch instead of one task per point.

Simulations are deterministic functions of ``(benchmark profile, seed,
architecture, config)``, so a parallel or replayed run produces
bit-identical statistics to a serial live one — only wall-clock time
changes.  Replay is an execution strategy, not part of a point's
identity: :meth:`SimulationPoint.store_key` is unaffected, so replayed
and live runs of the same point share one result-store entry.
"""

from __future__ import annotations

import atexit
import contextlib
import math
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chaos import seams as _seams
from repro.experiments.store import DEFAULT_CLAIM_TTL, ResultStore, simulation_key
from repro.obs import context as _obs_context
from repro.obs import profile as _obs_profile
from repro.obs.context import TraceContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.regfile.base import RegisterFileModel
from repro.sampling.spec import SamplingSpec
from repro.trace import DecodedTrace, TraceStore, replay_simulate, trace_key
from repro.trace.recorder import record_trace_with_stats
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Progress sink: receives human-readable one-liners.
ProgressCallback = Callable[[str], None]

#: Upper bound on decoded traces kept warm per worker process.
_WORKER_TRACE_CACHE_LIMIT = 4


@dataclass(frozen=True)
class SimulationPoint:
    """One (benchmark, architecture, configuration) simulation to run.

    ``sampling`` switches the point from exact simulation to systematic
    interval sampling (see :mod:`repro.sampling`); it is part of the
    point's identity — sampled and exact results never share a store
    entry — but not of its trace key, so sampled and exact points of one
    sweep still share one decoded trace.
    """

    benchmark: str
    factory: Callable[[], RegisterFileModel]
    architecture: str
    config: ProcessorConfig
    warmup_instructions: int = 0
    sampling: Optional["SamplingSpec"] = None

    def store_key(self) -> str:
        return simulation_key(
            self.benchmark,
            self.architecture,
            self.config,
            self.warmup_instructions,
            self.factory,
            sampling=None if self.sampling is None else self.sampling.to_payload(),
        )

    def metadata(self) -> dict:
        metadata = {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "instructions": self.config.max_instructions,
            "warmup_instructions": self.warmup_instructions,
        }
        if self.sampling is not None:
            metadata["sampling"] = self.sampling.to_payload()
        return metadata

    # ------------------------------------------------------------------
    # trace identity
    # ------------------------------------------------------------------

    def stream_length(self) -> int:
        return self.config.max_instructions + self.warmup_instructions

    def workload_identity(self) -> dict:
        """Identity of the instruction stream this point simulates."""
        return {
            "kind": "synthetic-profile",
            "benchmark": self.benchmark,
            "instructions": self.stream_length(),
        }

    def trace_key(self) -> str:
        """Key of the decoded trace that can drive this point."""
        return trace_key(self.workload_identity(), self.config)


def build_point_stream(point: SimulationPoint):
    """The dynamic instruction stream of ``point`` (lazy iterator)."""
    workload = SyntheticWorkload(get_profile(point.benchmark))
    return workload.instructions(point.stream_length())


def _recording_doubles_as_run(point: SimulationPoint) -> bool:
    """Whether recording with ``point``'s own factory *is* its live run.

    The recorder lifts the commit limit to the stream length and disables
    occupancy collection; when the point already commits the whole stream
    and asks for neither occupancy nor an explicit cycle cap, the
    recording run's statistics equal the point's live statistics.
    """
    config = point.config
    return (
        point.warmup_instructions == 0
        and point.sampling is None
        and not config.collect_occupancy
        and config.max_cycles is None
    )


def record_point_trace(point: SimulationPoint):
    """Record the group's trace; harvest the recording run as ``point``'s
    result when eligible.  Returns ``(trace, stats_or_None)``."""
    if _seams.active is not None:
        # Chaos seam: the recording run doubles as this point's
        # execution on the jobs=1 path, so worker faults must be able
        # to land here as well as in run_simulation_point.
        _seams.active.fire(
            "engine.point",
            benchmark=point.benchmark,
            architecture=point.architecture,
        )
    harvest = _recording_doubles_as_run(point)
    trace, stats = record_trace_with_stats(
        point.benchmark,
        build_point_stream(point),
        point.config,
        point.workload_identity(),
        canonical_factory=point.factory if harvest else None,
    )
    return trace, (stats if harvest else None)


def build_point_trace(point: SimulationPoint) -> DecodedTrace:
    """Record the decoded trace that drives ``point``'s sweep group."""
    trace, _ = record_point_trace(point)
    return trace


def run_simulation_point(
    point: SimulationPoint, trace: Optional[DecodedTrace] = None
) -> SimulationStats:
    """Simulate one point (also the worker-process entry).

    With ``trace`` the point is replayed (bit-identical, no workload
    generation or frontend); without it the point runs live from
    scratch, exactly as before the trace engine existed.  A point with a
    :class:`~repro.sampling.SamplingSpec` is estimated by systematic
    interval sampling over the trace instead (recorded here on demand —
    the sampling engine is trace-driven by construction).
    """
    if _seams.active is not None:
        # Chaos seam: slow / hung / crashing worker faults land here,
        # before the simulation body, so the resilience layer above
        # (deadlines, lease stealing, retries) is what gets exercised.
        _seams.active.fire(
            "engine.point",
            benchmark=point.benchmark,
            architecture=point.architecture,
        )
    if point.sampling is not None:
        from repro.sampling.engine import sampled_simulate

        if trace is None:
            trace = build_point_trace(point)
        return sampled_simulate(
            trace, point.factory, point.config, point.sampling,
            benchmark_name=point.benchmark,
        )
    if trace is not None:
        return replay_simulate(
            trace, point.factory, point.config, benchmark_name=point.benchmark
        )
    return simulate(build_point_stream(point), point.factory, point.config,
                    benchmark_name=point.benchmark)


def _execute_remote(point: SimulationPoint) -> dict:
    """Worker wrapper: ship the stats back as a plain dictionary."""
    _obs_profile.maybe_enable_worker()
    return run_simulation_point(point).to_dict()


def dedupe_points(points: Iterable[SimulationPoint]) -> Dict[str, SimulationPoint]:
    """Unique points keyed by their store key, first occurrence wins."""
    unique: Dict[str, SimulationPoint] = {}
    for point in points:
        unique.setdefault(point.store_key(), point)
    return unique


# ----------------------------------------------------------------------
# warm worker pool
# ----------------------------------------------------------------------

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0
_POOL_RESETS = 0
#: Guards _POOL/_POOL_JOBS: concurrent SweepEngine.execute calls (the
#: sweep service's executor threads) share the module-global pool.
_POOL_LOCK = threading.Lock()


def pool_resets() -> int:
    """How often a broken worker forced the warm pool to be torn down.

    Long-lived consumers (the sweep service's ``/metrics`` endpoint)
    report this as a health signal: a non-zero, growing value means
    worker processes are dying mid-simulation.
    """
    return _POOL_RESETS


def warm_pool(jobs: int) -> ProcessPoolExecutor:
    """The persistent worker pool (created lazily, resized on demand).

    Reusing one pool across ``execute_points`` calls keeps workers —
    and their per-process decoded-trace caches — warm for the whole
    runner invocation instead of paying process spawn per figure.
    """
    global _POOL, _POOL_JOBS
    with _POOL_LOCK:
        if _POOL is not None and _POOL_JOBS != jobs:
            _POOL.shutdown(wait=True)
            _POOL = None
        if _POOL is None:
            _POOL = ProcessPoolExecutor(max_workers=jobs)
            _POOL_JOBS = jobs
        return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (tests, interpreter exit)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
            _POOL = None


atexit.register(shutdown_pool)


def fan_out(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    jobs: int = 1,
    remote_worker: Optional[Callable[[Any], Any]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Apply ``worker`` to every task, serially or across worker processes.

    The shared fan-out primitive behind the experiment scheduler and the
    differential validation runner.  With ``jobs`` > 1 the tasks are
    shipped to the persistent :func:`warm_pool`; ``remote_worker``
    (default: ``worker``) is used there instead, so callers can
    substitute a transport-friendly wrapper (e.g. one that returns plain
    dictionaries) — it must be a picklable module-level callable, as
    must the tasks.  ``on_result`` fires once per completed task, in
    completion order, with ``(task_index, result)``; results are
    returned in task order regardless.
    """
    tasks = list(tasks)
    results: List[Any] = [None] * len(tasks)

    def complete(index: int, result: Any) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)

    if jobs <= 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            complete(index, worker(task))
        return results

    submit_worker = remote_worker if remote_worker is not None else worker

    def submit_all() -> Dict[Any, int]:
        pool = warm_pool(jobs)
        return {
            pool.submit(submit_worker, task): index
            for index, task in enumerate(tasks)
        }

    try:
        try:
            futures = submit_all()
        except RuntimeError:
            # A concurrent caller's crash recovery shut the shared pool
            # down between our warm_pool() and submit ("cannot schedule
            # new futures after shutdown").  Resubmit everything on a
            # fresh pool; tasks are pure, so any task the torn-down pool
            # already ran is merely duplicated work, never a wrong result.
            futures = submit_all()
        outstanding = set(futures)
        while outstanding:
            finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in finished:
                complete(futures[future], future.result())
    except BrokenProcessPool:
        # A dead worker poisons the whole executor.  Tear the persistent
        # pool down before re-raising so the *next* fan-out call gets a
        # fresh pool instead of inheriting the broken one forever.
        global _POOL_RESETS
        with _POOL_LOCK:
            _POOL_RESETS += 1
        shutdown_pool()
        raise
    return results


# ----------------------------------------------------------------------
# trace-replay batching
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _RecordTask:
    """Record one group's trace in a worker, then replay its first point."""

    point: SimulationPoint
    cache_dir: Optional[str]
    #: Observability payload (``{"events_dir", "trace"}``) letting the
    #: worker process emit its spans into the service's event log under
    #: the submitting job's trace; ``None`` keeps workers silent.
    obs: Optional[dict] = None


@dataclass(frozen=True)
class _TraceBatch:
    """Several points of one group, shipped to a worker in one dispatch."""

    points: Tuple[SimulationPoint, ...]
    trace_key: str
    #: Trace payload shipped once per batch when workers cannot load the
    #: trace from a shared ``cache_dir``.
    payload: Optional[dict]
    cache_dir: Optional[str]
    obs: Optional[dict] = None


#: Per-worker-process cache of decoded traces (warm across batches).
_WORKER_TRACES: Dict[str, DecodedTrace] = {}

#: Per-worker-process event-log telemetry, keyed by events dir.
_WORKER_OBS: Dict[str, Telemetry] = {}


def _worker_telemetry(
    obs_payload: Optional[dict],
) -> Tuple[Optional[Telemetry], Optional[TraceContext]]:
    """This worker process's telemetry for a task's events dir (lazily
    created, cached for the process lifetime) plus the task's parent
    trace context.  ``(None, None)`` when the task carries no obs."""
    if not isinstance(obs_payload, dict):
        return None, None
    events_dir = obs_payload.get("events_dir")
    if not isinstance(events_dir, str) or not events_dir:
        return None, None
    telemetry = _WORKER_OBS.get(events_dir)
    if telemetry is None:
        from repro.obs.events import EventLog

        telemetry = Telemetry(
            log=EventLog(events_dir, f"worker-{os.getpid()}")
        )
        _WORKER_OBS[events_dir] = telemetry
    return telemetry, TraceContext.from_dict(obs_payload.get("trace"))


def _maybe_span(telemetry: Optional[Telemetry], name: str,
                parent: Optional[TraceContext] = None, **attrs):
    """A telemetry span, or a no-op context when telemetry is absent."""
    if telemetry is None:
        return contextlib.nullcontext()
    return telemetry.span(name, parent=parent, **attrs)


def _worker_trace(key: str, payload: Optional[dict],
                  cache_dir: Optional[str],
                  fallback_point: SimulationPoint) -> DecodedTrace:
    trace = _WORKER_TRACES.get(key)
    if trace is None:
        if payload is not None:
            trace = DecodedTrace.from_payload(payload)
        elif cache_dir:
            trace = TraceStore(cache_dir).get(key)
        if trace is None:
            # Disk entry vanished or was corrupt: re-record locally.
            trace = build_point_trace(fallback_point)
        while len(_WORKER_TRACES) >= _WORKER_TRACE_CACHE_LIMIT:
            _WORKER_TRACES.pop(next(iter(_WORKER_TRACES)))
        _WORKER_TRACES[key] = trace
    return trace


def _record_remote(task: _RecordTask) -> Tuple[Optional[dict], dict]:
    """Worker entry for a :class:`_RecordTask`.

    Returns ``(trace_payload_or_None, first_point_stats_dict)``; the
    payload is ``None`` when the trace was persisted to the shared
    ``cache_dir`` instead of being shipped back.
    """
    _obs_profile.maybe_enable_worker()
    telemetry, parent = _worker_telemetry(task.obs)
    point = task.point
    with _maybe_span(telemetry, "trace.record", parent=parent,
                     benchmark=point.benchmark):
        trace, recorded_stats = record_point_trace(point)
    while len(_WORKER_TRACES) >= _WORKER_TRACE_CACHE_LIMIT:
        _WORKER_TRACES.pop(next(iter(_WORKER_TRACES)))
    _WORKER_TRACES[trace.key] = trace
    if recorded_stats is not None:
        stats = recorded_stats.to_dict()
    else:
        with _maybe_span(telemetry, "point.simulate", parent=parent,
                         strategy="replay", benchmark=point.benchmark):
            stats = run_simulation_point(point, trace).to_dict()
    if task.cache_dir:
        TraceStore(task.cache_dir).put(trace)
        return None, stats
    return trace.to_payload(), stats


def _batch_remote(batch: _TraceBatch) -> List[dict]:
    """Worker entry for a :class:`_TraceBatch`."""
    _obs_profile.maybe_enable_worker()
    telemetry, parent = _worker_telemetry(batch.obs)
    trace = _worker_trace(
        batch.trace_key, batch.payload, batch.cache_dir, batch.points[0]
    )
    results = []
    for point in batch.points:
        with _maybe_span(telemetry, "point.simulate", parent=parent,
                         strategy="replay", benchmark=point.benchmark):
            results.append(run_simulation_point(point, trace).to_dict())
    return results


# ----------------------------------------------------------------------
# the sweep engine
# ----------------------------------------------------------------------


class SweepEngine:
    """Long-lived facade over the trace-once/replay-many sweep scheduler.

    One engine owns a :class:`ResultStore`, a :class:`TraceStore` and a
    worker-pool size, and executes any number of point batches through
    them: the experiment runner builds one per invocation, while the
    sweep service (:mod:`repro.service`) keeps one alive for its whole
    lifetime so warm workers and both cache tiers amortize across every
    submitted job.

    :meth:`execute` is safe to call from several threads at once.  A
    **single-flight registry** deduplicates identical in-flight points
    across concurrent calls: the first caller simulates a point, every
    other caller blocks until the result lands in the shared store and
    reports it as ``shared_inflight`` instead of executing it again.

    When the result store supports claims (a disk-backed
    :class:`ResultStore`), single-flight extends **across replicas**:
    before simulating, the engine claims each point in the shared store.
    Points already claimed by another replica are not executed — the
    engine polls the store until the remote result lands (reported as
    ``remote_inflight``) and, should the remote holder's claim expire
    (a crashed replica), reclaims and executes them itself
    (``remote_reclaimed``).
    """

    #: Engine counter families; order fixes the layout of :meth:`totals`.
    _COUNTER_NAMES = (
        "calls", "requested", "unique", "cached", "executed",
        "shared_inflight", "remote_inflight", "remote_reclaimed",
        "traces_recorded", "traces_reused",
    )

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        use_trace_replay: bool = True,
        trace_store: Optional[TraceStore] = None,
        claim_ttl: float = DEFAULT_CLAIM_TTL,
        claim_poll_interval: float = 0.05,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.jobs = jobs
        self.use_trace_replay = use_trace_replay
        self.trace_store = (
            trace_store if trace_store is not None
            else TraceStore(self.store.cache_dir)
        )
        self.claim_ttl = claim_ttl
        self.claim_poll_interval = claim_poll_interval
        self._lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        #: Telemetry (spans + event log) is optional; the *registry* is
        #: not — the cumulative engine counters live in it either way,
        #: so ``totals()`` has one source of truth with or without a
        #: service above.
        self.telemetry = telemetry
        self.registry = (
            telemetry.registry if telemetry is not None else MetricsRegistry()
        )
        self._counters = {
            name: self.registry.counter(f"engine.{name}")
            for name in self._COUNTER_NAMES
        }
        self._busy_seconds = self.registry.counter("engine.busy_seconds")
        self._point_histogram = self.registry.histogram(
            "point.simulate_seconds",
            help="Wall time of one in-engine simulated point",
        )

    # ------------------------------------------------------------------

    def totals(self) -> dict:
        """Cumulative counters across every :meth:`execute` call."""
        totals: Dict[str, Any] = {
            name: counter.int_value
            for name, counter in self._counters.items()
        }
        totals["busy_seconds"] = round(self._busy_seconds.value, 3)
        totals["pool_resets"] = pool_resets()
        return totals

    def _worker_obs(self) -> Optional[dict]:
        """The obs payload shipped with worker tasks (events dir + the
        active trace), or ``None`` when spans aren't being collected."""
        if self.telemetry is None or self.telemetry.log is None:
            return None
        context = _obs_context.current()
        return {
            "events_dir": self.telemetry.log.events_dir,
            "trace": context.to_dict() if context is not None else None,
        }

    def close(self) -> None:
        """Release the shared warm worker pool (idempotent)."""
        shutdown_pool()

    def results_for(
        self, points: Sequence[SimulationPoint]
    ) -> Dict[str, SimulationStats]:
        """Stored statistics of every (deduplicated) point, by store key.

        A read-side companion to :meth:`execute` for callers — the
        search driver above all — that score a batch after ensuring it
        ran.  Points whose result is absent (e.g. a worker crashed
        mid-batch) are simply missing from the mapping; callers decide
        whether that is fatal.
        """
        results: Dict[str, SimulationStats] = {}
        for key in dedupe_points(points):
            stats = self.store.get(key)
            if stats is not None:
                results[key] = stats
        return results

    # ------------------------------------------------------------------

    def _claim(
        self, pending: Dict[str, SimulationPoint]
    ) -> Tuple[Dict[str, SimulationPoint], Dict[str, threading.Event]]:
        """Split ``pending`` into points this call owns and points another
        in-flight call is already simulating (single-flight dedup)."""
        owned: Dict[str, SimulationPoint] = {}
        shared: Dict[str, threading.Event] = {}
        with self._lock:
            for key, point in pending.items():
                event = self._inflight.get(key)
                if event is not None:
                    shared[key] = event
                else:
                    self._inflight[key] = threading.Event()
                    owned[key] = point
        return owned, shared

    def _release(self, keys: Iterable[str]) -> None:
        with self._lock:
            for key in keys:
                event = self._inflight.pop(key, None)
                if event is not None:
                    event.set()

    # ------------------------------------------------------------------

    def execute(
        self,
        points: Sequence[SimulationPoint],
        progress: Optional[ProgressCallback] = None,
        on_point: Optional[Callable[[SimulationPoint], None]] = None,
    ) -> Dict[str, int]:
        """Ensure every point's result is present in the engine's store.

        Returns a summary dictionary (``requested``, ``unique``,
        ``cached``, ``executed``, ``shared_inflight``,
        ``traces_recorded``, ``traces_reused``, ``elapsed_seconds``)
        that callers log or attach to job records.  With
        ``use_trace_replay=False`` (the ``--no-trace-replay`` escape
        hatch) every point runs live with its own workload generation
        and frontend, as the engine did before the trace subsystem
        existed.
        """
        started = time.time()
        points = list(points)
        requested = len(points)
        unique = dedupe_points(points)
        pending: Dict[str, SimulationPoint] = {
            key: point for key, point in unique.items()
            if self.store.get(key) is None
        }
        cached = len(unique) - len(pending)
        owned, shared = self._claim(pending)

        # Cross-replica single-flight: claim every owned point in the
        # shared store; points another replica already holds move to the
        # remote set and are awaited instead of executed.  (A stored
        # result supersedes its claim, so successful runs need no
        # explicit release.)
        remote: Dict[str, SimulationPoint] = {}
        if owned and self.store.supports_claims():
            for key in list(owned):
                ok, holder = self.store.claim_point(key, self.claim_ttl)
                if not ok:
                    # Either another replica holds a live claim, or its
                    # result just landed; both resolve in the wait loop.
                    remote[key] = owned.pop(key)

        def say(message: str) -> None:
            if progress is not None:
                progress(message)

        say(
            f"schedule: {requested} runs requested, {len(unique)} unique, "
            f"{cached} cached, {len(owned)} to simulate"
            + (f", {len(shared)} in flight elsewhere" if shared else "")
            + (f", {len(remote)} claimed by other replicas" if remote else "")
            + (f" on {self.jobs} workers" if self.jobs > 1 and owned else "")
            + ("" if self.use_trace_replay or not owned else " (live frontend)")
        )

        done = 0
        total_pending = len(owned)

        def record(key: str, point: SimulationPoint, stats: SimulationStats) -> None:
            nonlocal done
            self.store.put(key, stats, metadata=point.metadata())
            # Release as soon as the result is visible so concurrent
            # callers waiting on this very point unblock point by point
            # rather than at the end of the whole batch.
            self._release((key,))
            done += 1
            if on_point is not None:
                on_point(point)
            say(
                f"[{done}/{total_pending}] {point.benchmark} @ {point.architecture} "
                f"(t={time.time() - started:.1f}s)"
            )

        counters = {
            "requested": requested,
            "unique": len(unique),
            "cached": cached,
            "executed": len(owned),
            "shared_inflight": len(shared),
            "remote_inflight": len(remote),
            "remote_reclaimed": 0,
            "traces_recorded": 0,
            "traces_reused": 0,
        }

        try:
            if owned:
                self._run_pending(owned, counters, record, say)
        finally:
            # Drop store claims for any owned point that never produced a
            # result (worker crash) so other replicas need not wait for
            # the claim TTL to expire.
            if self.store.supports_claims():
                for key in owned:
                    if self.store.peek(key) is None:
                        self.store.release_point(key)
            # Normally every event was already released by ``record``;
            # after a worker crash this unblocks waiting callers, whose
            # fallback below re-executes the points that never finished.
            self._release(owned)

        try:
            self._await_remote(remote, counters, record, say)
        finally:
            # This call holds the in-process events for remote keys, so
            # a crash here must unblock same-process waiters too.
            self._release(remote)

        for key, event in shared.items():
            while True:
                event.wait()
                if self.store.get(key) is not None:
                    break
                # The owning call died before producing the result; run
                # the point ourselves (a crash-recovery path).  Losing
                # the reclaim race to another waiter means waiting on
                # *their* freshly claimed event, never giving up with
                # the result still missing.
                point = pending[key]
                reclaimed, still_shared = self._claim({key: point})
                if reclaimed:
                    try:
                        self._run_pending(reclaimed, counters, record, say)
                    finally:
                        self._release(reclaimed)
                    break
                event = still_shared[key]

        counters["elapsed_seconds"] = round(time.time() - started, 1)
        self._counters["calls"].inc()
        self._busy_seconds.inc(time.time() - started)
        for field_name in ("requested", "unique", "cached", "executed",
                           "shared_inflight", "remote_inflight",
                           "remote_reclaimed", "traces_recorded",
                           "traces_reused"):
            self._counters[field_name].inc(counters[field_name])
        return counters

    # ------------------------------------------------------------------

    def _await_remote(
        self,
        remote: Dict[str, SimulationPoint],
        counters: Dict[str, int],
        record: Callable[[str, SimulationPoint, SimulationStats], None],
        say: ProgressCallback,
    ) -> None:
        """Wait for points claimed by other replicas; reclaim crashed ones.

        This call already holds the in-process single-flight event for
        every remote key, so same-process waiters block on us while we
        poll the shared store.  ``peek`` keeps the polling loop out of
        the hit/miss counters.  When a remote holder's claim expires
        without a result, we claim the point ourselves and execute it —
        the cross-replica mirror of the in-process crash-recovery path.
        """
        for key, point in remote.items():
            while True:
                if self.store.peek(key) is not None:
                    self._release((key,))
                    break
                ok, _holder = self.store.claim_point(key, self.claim_ttl)
                if ok:
                    # The remote claim expired (or was released).  Guard
                    # against the result landing in the race window
                    # between our peek and our claim before re-running.
                    if self.store.peek(key) is not None:
                        self.store.release_point(key)
                        self._release((key,))
                        break
                    say(
                        f"reclaim: remote claim on {key[:12]}… expired; "
                        f"executing locally"
                    )
                    counters["executed"] += 1
                    counters["remote_reclaimed"] += 1
                    self._run_pending({key: point}, counters, record, say)
                    break
                time.sleep(self.claim_poll_interval)

    # ------------------------------------------------------------------

    def _run_pending(
        self,
        pending: Dict[str, SimulationPoint],
        counters: Dict[str, int],
        record: Callable[[str, SimulationPoint, SimulationStats], None],
        say: ProgressCallback,
    ) -> None:
        """Simulate every point in ``pending`` and record the results."""
        jobs = self.jobs

        if not self.use_trace_replay:
            pending_items = list(pending.items())

            def on_result(index: int, payload) -> None:
                key, point = pending_items[index]
                stats = (
                    SimulationStats.from_dict(payload) if isinstance(payload, dict)
                    else payload
                )
                record(key, point, stats)

            def live_worker(point: SimulationPoint) -> SimulationStats:
                with self._point_histogram.time(), _maybe_span(
                    self.telemetry, "point.simulate", strategy="live",
                    benchmark=point.benchmark,
                ):
                    return run_simulation_point(point)

            fan_out(
                [point for _, point in pending_items],
                worker=live_worker,
                jobs=jobs,
                remote_worker=_execute_remote,
                on_result=on_result,
            )
            return

        traces = self.trace_store

        # Group the pending points by the decoded trace that can drive them.
        groups: Dict[str, List[Tuple[str, SimulationPoint]]] = {}
        for key, point in pending.items():
            groups.setdefault(point.trace_key(), []).append((key, point))

        if jobs <= 1:
            for group_key, members in groups.items():
                trace = traces.get(group_key)
                recorded_stats = None
                record_seconds = 0.0
                if trace is None:
                    record_started = time.perf_counter()
                    with _maybe_span(self.telemetry, "trace.record",
                                     benchmark=members[0][1].benchmark,
                                     histogram="trace.record_seconds"):
                        trace, recorded_stats = record_point_trace(members[0][1])
                    record_seconds = time.perf_counter() - record_started
                    traces.put(trace)
                    counters["traces_recorded"] += 1
                else:
                    counters["traces_reused"] += 1
                for index, (key, point) in enumerate(members):
                    if index == 0 and recorded_stats is not None:
                        # The recording pass simulated this point; bill
                        # its wall time to the point latency too so
                        # single-point jobs aren't invisible in p50/p99.
                        self._point_histogram.observe(record_seconds)
                        if self.telemetry is not None:
                            span = self.telemetry.span_start(
                                "point.simulate", strategy="harvest",
                                benchmark=point.benchmark,
                            )
                            self.telemetry.span_end(
                                "point.simulate", span,
                                duration_s=record_seconds,
                                strategy="harvest", benchmark=point.benchmark,
                            )
                        record(key, point, recorded_stats)
                        continue
                    with self._point_histogram.time(), _maybe_span(
                        self.telemetry, "point.simulate", strategy="replay",
                        benchmark=point.benchmark,
                    ):
                        stats = run_simulation_point(point, trace)
                    record(key, point, stats)
            return

        # Parallel: phase R records one trace per missing group (each worker
        # also replays the group's first point while the trace is hot), then
        # phase B batches the remaining points so each worker receives a
        # group's trace once per dispatch rather than once per point.
        on_disk = bool(traces.trace_dir)
        worker_obs = self._worker_obs()
        payloads: Dict[str, Optional[dict]] = {}
        record_groups: List[Tuple[str, List[Tuple[str, SimulationPoint]]]] = []
        batch_members: List[Tuple[str, SimulationPoint, str]] = []

        for group_key, members in groups.items():
            trace = traces.get(group_key)
            if trace is None:
                record_groups.append((group_key, members))
            else:
                counters["traces_reused"] += 1
                payloads[group_key] = None if on_disk else trace.to_payload()
                batch_members.extend(
                    (key, point, group_key) for key, point in members
                )

        if record_groups:
            counters["traces_recorded"] += len(record_groups)

            def on_recorded(index: int, result) -> None:
                group_key, members = record_groups[index]
                payload, stats_dict = result
                payloads[group_key] = payload  # None when persisted to disk
                first_key, first_point = members[0]
                record(first_key, first_point, SimulationStats.from_dict(stats_dict))
                batch_members.extend(
                    (key, point, group_key) for key, point in members[1:]
                )

            fan_out(
                [
                    _RecordTask(point=members[0][1],
                                cache_dir=traces.cache_dir if on_disk else None,
                                obs=worker_obs)
                    for _, members in record_groups
                ],
                worker=_record_remote,
                jobs=jobs,
                on_result=on_recorded,
            )

        if batch_members:
            # Chunk each group's members so the group spreads across workers;
            # a worker decodes/loads the trace once per batch and keeps it
            # warm in its process-global cache for later batches.
            batches: List[Tuple[_TraceBatch, List[Tuple[str, SimulationPoint]]]] = []
            by_group: Dict[str, List[Tuple[str, SimulationPoint]]] = {}
            for key, point, group_key in batch_members:
                by_group.setdefault(group_key, []).append((key, point))
            for group_key, members in by_group.items():
                chunk = max(1, math.ceil(len(members) / jobs))
                for start in range(0, len(members), chunk):
                    part = members[start:start + chunk]
                    batches.append(
                        (
                            _TraceBatch(
                                points=tuple(point for _, point in part),
                                trace_key=group_key,
                                payload=payloads.get(group_key),
                                cache_dir=traces.cache_dir if on_disk else None,
                                obs=worker_obs,
                            ),
                            part,
                        )
                    )

            def on_batch(index: int, results: List[dict]) -> None:
                _, part = batches[index]
                for (key, point), stats_dict in zip(part, results):
                    record(key, point, SimulationStats.from_dict(stats_dict))

            fan_out(
                [batch for batch, _ in batches],
                worker=_batch_remote,
                jobs=jobs,
                on_result=on_batch,
            )


def execute_points(
    points: Sequence[SimulationPoint],
    store: ResultStore,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    use_trace_replay: bool = True,
    trace_store: Optional[TraceStore] = None,
) -> Dict[str, int]:
    """Ensure every point's result is present in ``store``.

    One-shot convenience over :class:`SweepEngine` for callers without a
    long-lived engine; see :meth:`SweepEngine.execute` for the returned
    summary dictionary.
    """
    engine = SweepEngine(
        store=store,
        jobs=jobs,
        use_trace_replay=use_trace_replay,
        trace_store=trace_store,
    )
    return engine.execute(points, progress=progress)
