"""Parallel execution of simulation points.

Experiments *declare* the simulation runs they need as
:class:`SimulationPoint` objects (see the ``plan`` function of each
figure module); the scheduler deduplicates them, skips points already in
the :class:`~repro.experiments.store.ResultStore` and fans the remainder
out across worker processes with
:class:`concurrent.futures.ProcessPoolExecutor`.

Simulations are deterministic functions of ``(benchmark profile, seed,
architecture, config)``, so a parallel run produces bit-identical
statistics to a serial one — only wall-clock time changes.  For the
points to survive the trip to a worker process everything in them must
pickle, which is why the architecture factories in
:mod:`repro.experiments.common` are frozen dataclasses rather than
lambdas.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.store import ResultStore, simulation_key
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.regfile.base import RegisterFileModel
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticWorkload

#: Progress sink: receives human-readable one-liners.
ProgressCallback = Callable[[str], None]


@dataclass(frozen=True)
class SimulationPoint:
    """One (benchmark, architecture, configuration) simulation to run."""

    benchmark: str
    factory: Callable[[], RegisterFileModel]
    architecture: str
    config: ProcessorConfig
    warmup_instructions: int = 0

    def store_key(self) -> str:
        return simulation_key(
            self.benchmark,
            self.architecture,
            self.config,
            self.warmup_instructions,
            self.factory,
        )

    def metadata(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "instructions": self.config.max_instructions,
            "warmup_instructions": self.warmup_instructions,
        }


def run_simulation_point(point: SimulationPoint) -> SimulationStats:
    """Simulate one point from scratch (also the worker-process entry)."""
    workload = SyntheticWorkload(get_profile(point.benchmark))
    stream = workload.instructions(
        point.config.max_instructions + point.warmup_instructions
    )
    return simulate(stream, point.factory, point.config,
                    benchmark_name=point.benchmark)


def _execute_remote(point: SimulationPoint) -> dict:
    """Worker wrapper: ship the stats back as a plain dictionary."""
    return run_simulation_point(point).to_dict()


def dedupe_points(points: Iterable[SimulationPoint]) -> Dict[str, SimulationPoint]:
    """Unique points keyed by their store key, first occurrence wins."""
    unique: Dict[str, SimulationPoint] = {}
    for point in points:
        unique.setdefault(point.store_key(), point)
    return unique


def fan_out(
    tasks: Sequence[Any],
    worker: Callable[[Any], Any],
    jobs: int = 1,
    remote_worker: Optional[Callable[[Any], Any]] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """Apply ``worker`` to every task, serially or across worker processes.

    The shared fan-out primitive behind the experiment scheduler and the
    differential validation runner.  With ``jobs`` > 1 the tasks are
    shipped to a :class:`~concurrent.futures.ProcessPoolExecutor`;
    ``remote_worker`` (default: ``worker``) is used there instead, so
    callers can substitute a transport-friendly wrapper (e.g. one that
    returns plain dictionaries) — it must be a picklable module-level
    callable, as must the tasks.  ``on_result`` fires once per completed
    task, in completion order, with ``(task_index, result)``; results
    are returned in task order regardless.
    """
    tasks = list(tasks)
    results: List[Any] = [None] * len(tasks)

    def complete(index: int, result: Any) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)

    if jobs <= 1 or len(tasks) <= 1:
        for index, task in enumerate(tasks):
            complete(index, worker(task))
        return results

    submit_worker = remote_worker if remote_worker is not None else worker
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {
            pool.submit(submit_worker, task): index
            for index, task in enumerate(tasks)
        }
        outstanding = set(futures)
        while outstanding:
            finished, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in finished:
                complete(futures[future], future.result())
    return results


def execute_points(
    points: Sequence[SimulationPoint],
    store: ResultStore,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, int]:
    """Ensure every point's result is present in ``store``.

    Returns a summary dictionary (``requested``, ``unique``, ``cached``,
    ``executed``, ``elapsed_seconds``) that the runner logs.
    """
    started = time.time()
    points = list(points)
    requested = len(points)
    unique = dedupe_points(points)
    pending: Dict[str, SimulationPoint] = {
        key: point for key, point in unique.items() if store.get(key) is None
    }
    cached = len(unique) - len(pending)

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    say(
        f"schedule: {requested} runs requested, {len(unique)} unique, "
        f"{cached} cached, {len(pending)} to simulate"
        + (f" on {jobs} workers" if jobs > 1 and pending else "")
    )

    done = 0

    def record(key: str, point: SimulationPoint, stats: SimulationStats) -> None:
        nonlocal done
        store.put(key, stats, metadata=point.metadata())
        done += 1
        say(
            f"[{done}/{len(pending)}] {point.benchmark} @ {point.architecture} "
            f"(t={time.time() - started:.1f}s)"
        )

    pending_items = list(pending.items())

    def on_result(index: int, payload) -> None:
        key, point = pending_items[index]
        stats = (
            SimulationStats.from_dict(payload) if isinstance(payload, dict)
            else payload
        )
        record(key, point, stats)

    fan_out(
        [point for _, point in pending_items],
        worker=run_simulation_point,
        jobs=jobs,
        remote_worker=_execute_remote,
        on_result=on_result,
    )

    return {
        "requested": requested,
        "unique": len(unique),
        "cached": cached,
        "executed": len(pending),
        "elapsed_seconds": round(time.time() - started, 1),
    }
