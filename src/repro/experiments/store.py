"""Two-tier storage of simulation results.

:class:`ResultStore` keeps every :class:`~repro.pipeline.stats.SimulationStats`
produced by the experiment harness in an in-memory dictionary and,
optionally, mirrors it to a directory of JSON files so that repeated
invocations of the runner only pay for simulation points they have never
seen before.

Keys are content hashes over everything that determines a simulation's
outcome: the benchmark name, the register-file architecture (its factory
parameters, not just its display label), the **full**
:class:`~repro.pipeline.config.ProcessorConfig` and the warmup budget.
The historical in-process cache keyed on a 5-field tuple silently
collided when two configurations differed in any other field
(``issue_width``, ``lsq_size``, cache geometry, ...); hashing the whole
config closes that hole.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from typing import Callable, Dict, Optional

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimulationStats

#: Bump when the on-disk payload layout changes; mismatching entries are
#: treated as cache misses rather than errors.
SCHEMA_VERSION = 1


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def factory_fingerprint(factory: Callable) -> dict:
    """Stable description of a register-file factory.

    The factories built by :mod:`repro.experiments.common` are frozen
    dataclasses, so their class name plus parameters pin down the exact
    architecture.  Opaque callables (lambdas, local closures) cannot be
    introspected; they are identified by their qualified name and rely on
    the experiment's architecture key for disambiguation.
    """
    if dataclasses.is_dataclass(factory) and not isinstance(factory, type):
        return {
            "type": type(factory).__name__,
            "parameters": dataclasses.asdict(factory),
        }
    return {"type": getattr(factory, "__qualname__", type(factory).__name__)}


def simulation_key(
    benchmark: str,
    architecture: str,
    config: ProcessorConfig,
    warmup_instructions: int,
    factory: Optional[Callable] = None,
) -> str:
    """Content hash identifying one simulation point."""
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "architecture": architecture,
        "factory": factory_fingerprint(factory) if factory is not None else None,
        "config": dataclasses.asdict(config),
        "warmup_instructions": warmup_instructions,
    }
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


class ResultStore:
    """In-memory dictionary of results, optionally backed by a directory.

    The memory tier returns the very same :class:`SimulationStats` object
    on repeated lookups (experiments rely on memoization identity); the
    disk tier round-trips through JSON, so a fresh process gets an
    equal-but-distinct object.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self._memory: Dict[str, SimulationStats] = {}
        # Concurrent SweepEngine.execute calls (the sweep service's job
        # threads) share one store; the lock keeps the counters exact so
        # /metrics hit rates are trustworthy.  Disk writes were already
        # atomic and need no serialization.
        self._counter_lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.json")  # type: ignore[arg-type]

    def _load_from_disk(self, key: str) -> Optional[SimulationStats]:
        if not self.cache_dir:
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if payload.get("schema") != SCHEMA_VERSION or "stats" not in payload:
            return None
        try:
            return SimulationStats.from_dict(payload["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------

    def peek(self, key: str) -> Optional[SimulationStats]:
        """Lookup without touching the hit/miss counters."""
        stats = self._memory.get(key)
        if stats is not None:
            return stats
        stats = self._load_from_disk(key)
        if stats is not None:
            self._memory[key] = stats
        return stats

    def get(self, key: str) -> Optional[SimulationStats]:
        """Fetch a result, promoting disk entries into the memory tier."""
        stats = self._memory.get(key)
        if stats is not None:
            with self._counter_lock:
                self.memory_hits += 1
            return stats
        stats = self._load_from_disk(key)
        if stats is not None:
            self._memory[key] = stats
            with self._counter_lock:
                self.disk_hits += 1
            return stats
        with self._counter_lock:
            self.misses += 1
        return None

    def put(self, key: str, stats: SimulationStats, metadata: Optional[dict] = None) -> None:
        """Record a result in both tiers (the disk write is atomic)."""
        self._memory[key] = stats
        with self._counter_lock:
            self.stores += 1
        if not self.cache_dir:
            return
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "metadata": metadata or {},
            "stats": stats.to_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=str)
            os.replace(tmp_path, self._path(key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Hit/miss accounting for progress reports and tests."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._memory),
        }

    def describe(self) -> str:
        counts = self.counters()
        tier = self.cache_dir or "memory only"
        return (
            f"simulation cache [{tier}]: {counts['memory_hits']} memory hits, "
            f"{counts['disk_hits']} disk hits, {counts['misses']} misses, "
            f"{counts['stores']} new results"
        )
