"""Two-tier storage of simulation results.

:class:`ResultStore` keeps every :class:`~repro.pipeline.stats.SimulationStats`
produced by the experiment harness in an in-memory dictionary and,
optionally, mirrors it to a sharded append-only segment log
(:class:`~repro.storage.sharded.ShardedStore` under
``<cache_dir>/results/``) so that repeated invocations of the runner
only pay for simulation points they have never seen before.  Legacy
file-per-point trees (``<cache_dir>/<key>.json``) are imported byte for
byte the first time they are opened under the new layout.

Keys are content hashes over everything that determines a simulation's
outcome: the benchmark name, the register-file architecture (its factory
parameters, not just its display label), the **full**
:class:`~repro.pipeline.config.ProcessorConfig` and the warmup budget.
The historical in-process cache keyed on a 5-field tuple silently
collided when two configurations differed in any other field
(``issue_width``, ``lsq_size``, cache geometry, ...); hashing the whole
config closes that hole.

The disk tier doubles as the fleet's coordination point: *claims*
(:meth:`ResultStore.claim_point`) give N service replicas sharing one
cache tree cross-replica single-flight — only one replica simulates a
given point, the others poll for its stored result.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimulationStats
from repro.storage import ShardedStore, migrate_legacy_files

#: Bump when the on-disk payload layout changes; mismatching entries are
#: treated as cache misses rather than errors.
SCHEMA_VERSION = 1

#: Subdirectory of the cache dir holding the sharded result segments.
RESULT_SUBDIR = "results"

#: Default lifetime of a point claim; generous next to point runtimes so
#: a live replica never loses a claim mid-simulation, short enough that
#: a crashed replica's claims expire quickly.
DEFAULT_CLAIM_TTL = 120.0


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def factory_fingerprint(factory: Callable) -> dict:
    """Stable description of a register-file factory.

    The factories built by :mod:`repro.experiments.common` are frozen
    dataclasses, so their class name plus parameters pin down the exact
    architecture.  Opaque callables (lambdas, local closures) cannot be
    introspected; they are identified by their qualified name and rely on
    the experiment's architecture key for disambiguation.
    """
    if dataclasses.is_dataclass(factory) and not isinstance(factory, type):
        return {
            "type": type(factory).__name__,
            "parameters": dataclasses.asdict(factory),
        }
    return {"type": getattr(factory, "__qualname__", type(factory).__name__)}


def simulation_key(
    benchmark: str,
    architecture: str,
    config: ProcessorConfig,
    warmup_instructions: int,
    factory: Optional[Callable] = None,
    sampling: Optional[dict] = None,
) -> str:
    """Content hash identifying one simulation point.

    ``sampling`` (a :meth:`SamplingSpec.to_payload` dictionary) enters
    the payload only when set, so every pre-sampling cache entry keeps
    its key and sampled results can never collide with exact ones.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "benchmark": benchmark,
        "architecture": architecture,
        "factory": factory_fingerprint(factory) if factory is not None else None,
        "config": dataclasses.asdict(config),
        "warmup_instructions": warmup_instructions,
    }
    if sampling is not None:
        payload["sampling"] = sampling
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def _valid_result_payload(key: str, raw: bytes) -> bool:
    """Whether raw bytes are a sane (legacy or current) result envelope."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return False
    return (
        isinstance(payload, dict)
        and payload.get("schema") == SCHEMA_VERSION
        and payload.get("key") == key
        and "stats" in payload
    )


class ResultStore:
    """In-memory dictionary of results, optionally backed by a directory.

    The memory tier returns the very same :class:`SimulationStats` object
    on repeated lookups (experiments rely on memoization identity); the
    disk tier round-trips through JSON, so a fresh process gets an
    equal-but-distinct object.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        owner: Optional[str] = None,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.cache_dir = cache_dir
        #: Identity used for store-level claims (fleet single-flight).
        self.owner = owner or f"pid-{os.getpid()}"
        self._memory: Dict[str, SimulationStats] = {}
        # Concurrent SweepEngine.execute calls (the sweep service's job
        # threads) share one store; the lock keeps the counters exact so
        # /metrics hit rates are trustworthy.  Disk appends are already
        # serialized by the shard file locks.
        self._counter_lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self._disk: Optional[ShardedStore] = None
        if cache_dir:
            os.makedirs(cache_dir, exist_ok=True)
            self._disk = ShardedStore(
                os.path.join(cache_dir, RESULT_SUBDIR),
                ttl_seconds=ttl_seconds,
                max_bytes=max_bytes,
            )
            # Import any pre-segment-log file-per-point tree, byte for byte.
            migrate_legacy_files(
                cache_dir, ".json", self._disk.put, _valid_result_payload
            )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None

    def _load_from_disk(self, key: str) -> Optional[SimulationStats]:
        if self._disk is None:
            return None
        raw = self._disk.get(key)
        if raw is None:
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema") != SCHEMA_VERSION or "stats" not in payload:
            return None
        try:
            return SimulationStats.from_dict(payload["stats"])
        except (KeyError, TypeError, ValueError):
            return None

    # ------------------------------------------------------------------

    def peek(self, key: str) -> Optional[SimulationStats]:
        """Lookup without touching the hit/miss counters."""
        stats = self._memory.get(key)
        if stats is not None:
            return stats
        stats = self._load_from_disk(key)
        if stats is not None:
            self._memory[key] = stats
        return stats

    def get(self, key: str) -> Optional[SimulationStats]:
        """Fetch a result, promoting disk entries into the memory tier."""
        stats = self._memory.get(key)
        if stats is not None:
            with self._counter_lock:
                self.memory_hits += 1
            return stats
        stats = self._load_from_disk(key)
        if stats is not None:
            self._memory[key] = stats
            with self._counter_lock:
                self.disk_hits += 1
            return stats
        with self._counter_lock:
            self.misses += 1
        return None

    def put(self, key: str, stats: SimulationStats, metadata: Optional[dict] = None) -> None:
        """Record a result in both tiers (the disk append is atomic and
        implicitly releases any claim held on the key)."""
        self._memory[key] = stats
        with self._counter_lock:
            self.stores += 1
        if self._disk is None:
            return
        payload = {
            "schema": SCHEMA_VERSION,
            "key": key,
            "metadata": metadata or {},
            "stats": stats.to_dict(),
        }
        self._disk.put(key, json.dumps(payload, default=str).encode("utf-8"))

    # ------------------------------------------------------------------
    # fleet claims (cross-replica single-flight)
    # ------------------------------------------------------------------

    def supports_claims(self) -> bool:
        """Store-level claims need a disk tier shared between replicas."""
        return self._disk is not None

    def claim_point(
        self, key: str, ttl: float = DEFAULT_CLAIM_TTL
    ) -> Tuple[bool, Optional[str]]:
        """Claim ``key`` for this store's owner; ``(ok, holder)``."""
        if self._disk is None:
            return True, self.owner
        return self._disk.claim(key, self.owner, ttl)

    def release_point(self, key: str) -> None:
        """Drop this owner's claim on ``key`` (storing a result also does)."""
        if self._disk is not None:
            self._disk.release(key, self.owner)

    def point_claim(self, key: str) -> Optional[Tuple[str, float]]:
        """The (owner, deadline) currently claiming ``key``, if any."""
        if self._disk is None:
            return None
        return self._disk.claim_holder(key)

    # ------------------------------------------------------------------

    def set_observer(self, observer) -> None:
        """Install a ``(op, seconds)`` duration sink on the disk tier
        (see :attr:`ShardedStore.observer`); no-op when memory-only."""
        if self._disk is not None:
            self._disk.observer = observer

    def compact(self) -> None:
        """Force-compact the disk tier (drops dead/expired records)."""
        if self._disk is not None:
            self._disk.compact()

    def storage_stats(self) -> Dict[str, int]:
        """Segment-log health counters for /metrics (empty when memory-only)."""
        if self._disk is None:
            return {}
        return self._disk.stats()

    def counters(self) -> Dict[str, int]:
        """Hit/miss accounting for progress reports and tests."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._memory),
        }

    def describe(self) -> str:
        counts = self.counters()
        tier = self.cache_dir or "memory only"
        return (
            f"simulation cache [{tier}]: {counts['memory_hits']} memory hits, "
            f"{counts['disk_hits']} disk hits, {counts['misses']} misses, "
            f"{counts['stores']} new results"
        )
