"""Section 3 statistic: how many times register values are read.

The caching policies are motivated by the observation that most register
values are read at most once (the paper reports 88% for SpecInt95 and 85%
for SpecFP95).  This experiment measures the value read-count
distribution on the simulated workloads.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.analysis.tables import format_table
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    SimulationCache,
    one_cycle_factory,
    suite_points,
)


def plan(settings: ExperimentSettings) -> list:
    """Simulation points the value-reuse statistic needs."""
    return suite_points(settings, ("int", "fp"), one_cycle_factory(), "1-cycle")


def run(
    settings: Optional[ExperimentSettings] = None,
    cache: Optional[SimulationCache] = None,
) -> ExperimentResult:
    """Measure the value read-count distribution per suite."""
    settings = settings or ExperimentSettings()
    cache = cache or SimulationCache(settings)
    factory = one_cycle_factory()

    rows = []
    data: dict = {}
    for suite, label in settings.active_suite_labels():
        combined: Counter = Counter()
        for benchmark in settings.suite(suite):
            stats = cache.run(benchmark, factory, "1-cycle")
            combined.update(stats.value_read_distribution)
        total = sum(combined.values()) or 1
        never = combined.get(0, 0) / total
        once = combined.get(1, 0) / total
        twice = combined.get(2, 0) / total
        more = 1.0 - never - once - twice
        data[label] = {
            "never_read": never,
            "read_once": once,
            "read_twice": twice,
            "read_three_plus": more,
            "read_at_most_once": never + once,
        }
        rows.append(
            (label, f"{100 * never:.1f}%", f"{100 * once:.1f}%",
             f"{100 * twice:.1f}%", f"{100 * more:.1f}%",
             f"{100 * (never + once):.1f}%")
        )

    body = format_table(
        ("suite", "never read", "read once", "read twice", "read 3+", "at most once"),
        rows,
        title="Register value read counts (paper: 88% / 85% read at most once)",
    )
    return ExperimentResult(
        name="Value reuse (Section 3)",
        title="Fraction of register values read at most once",
        body=body,
        data=data,
    )
