"""Front-end models: branch prediction, instruction cache and fetch."""

from repro.frontend.gshare import GSharePredictor
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchUnit, FetchedInstruction

__all__ = [
    "GSharePredictor",
    "BranchTargetBuffer",
    "FetchUnit",
    "FetchedInstruction",
]
