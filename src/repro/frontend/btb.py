"""Branch target buffer.

The BTB caches targets of taken branches so the front end can redirect
fetch without decoding the branch.  In this timing model the target of a
predicted-taken branch is only available if the BTB hits; otherwise the
fetch redirect costs one extra cycle (modelled by the fetch unit).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class BranchTargetBuffer:
    """A set-associative BTB with LRU replacement.

    Parameters
    ----------
    num_entries:
        Total number of entries (must be a positive power of two).
    associativity:
        Ways per set.
    """

    def __init__(self, num_entries: int = 4096, associativity: int = 4) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ConfigurationError("num_entries must be a positive power of two")
        if associativity <= 0 or num_entries % associativity:
            raise ConfigurationError("associativity must divide num_entries")
        self.num_sets = num_entries // associativity
        self.associativity = associativity
        self._sets: list[OrderedDict[int, int]] = [OrderedDict() for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, pc: int) -> int:
        return (pc >> 2) % self.num_sets

    def lookup(self, pc: int) -> int | None:
        """Return the cached target for the branch at ``pc`` or ``None``."""
        entry_set = self._sets[self._set_index(pc)]
        target = entry_set.get(pc)
        if target is None:
            self.misses += 1
            return None
        entry_set.move_to_end(pc)
        self.hits += 1
        return target

    def insert(self, pc: int, target: int) -> None:
        """Record the target of a taken branch."""
        entry_set = self._sets[self._set_index(pc)]
        if pc in entry_set:
            entry_set[pc] = target
            entry_set.move_to_end(pc)
            return
        if len(entry_set) >= self.associativity:
            entry_set.popitem(last=False)
        entry_set[pc] = target

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0
