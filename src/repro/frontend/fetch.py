"""Instruction fetch unit.

Models an 8-wide fetch stage (Table 1: up to one taken branch per cycle)
fed by a dynamic instruction stream, an I-cache timing model, a gshare
direction predictor and a BTB.

Because the simulator is stream driven (it only has the correct execution
path), branch mispredictions are modelled the standard trace-driven way:
the fetch unit keeps fetching down the correct path, but the processor
blocks fetch from the cycle after a mispredicted branch is fetched until
the branch resolves, which charges the full front-end refill penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.gshare import GSharePredictor
from repro.isa.instruction import DynamicInstruction
from repro.memsys.cache import CacheModel


@dataclass(slots=True)
class FetchedInstruction:
    """A dynamic instruction annotated with front-end prediction state."""

    instruction: DynamicInstruction
    fetch_cycle: int
    predicted_taken: bool = False
    predicted_target: Optional[int] = None
    btb_hit: bool = False
    history_checkpoint: int = 0
    mispredicted: bool = False

    @property
    def seq(self) -> int:
        return self.instruction.seq


class FetchUnit:
    """Fetches up to ``width`` instructions per cycle from a stream."""

    #: Bubble (cycles) when a predicted-taken branch misses in the BTB and
    #: the target has to be produced by the decoder.
    _BTB_MISS_BUBBLE = 2

    def __init__(
        self,
        stream: Iterator[DynamicInstruction],
        icache: CacheModel,
        predictor: GSharePredictor,
        btb: BranchTargetBuffer,
        width: int = 8,
    ) -> None:
        if width <= 0:
            raise ConfigurationError("fetch width must be positive")
        self._stream = iter(stream)
        self.icache = icache
        self.predictor = predictor
        self.btb = btb
        self.width = width
        self._pending: Optional[DynamicInstruction] = None
        self._exhausted = False
        self._stalled_until = -1
        self._blocked_on_seq: Optional[int] = None
        # statistics
        self.fetched_instructions = 0
        self.icache_stall_cycles = 0

    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True once the underlying stream has been fully consumed."""
        return self._exhausted and self._pending is None

    @property
    def blocked(self) -> bool:
        """True while waiting for a mispredicted branch to resolve."""
        return self._blocked_on_seq is not None

    def block_on_branch(self, seq: int) -> None:
        """Stop fetching until the mispredicted branch ``seq`` resolves."""
        if self._blocked_on_seq is None or seq < self._blocked_on_seq:
            self._blocked_on_seq = seq

    def branch_resolved(self, seq: int, cycle: int) -> None:
        """Resume fetch (from ``cycle`` + 1) after branch ``seq`` resolves."""
        if self._blocked_on_seq is not None and seq >= self._blocked_on_seq:
            self._blocked_on_seq = None
            self._stalled_until = max(self._stalled_until, cycle)

    # ------------------------------------------------------------------

    def _next_instruction(self) -> Optional[DynamicInstruction]:
        if self._pending is not None:
            inst = self._pending
            self._pending = None
            return inst
        if self._exhausted:
            return None
        try:
            return next(self._stream)
        except StopIteration:
            self._exhausted = True
            return None

    def _push_back(self, inst: DynamicInstruction) -> None:
        assert self._pending is None
        self._pending = inst

    # ------------------------------------------------------------------
    # frontend-source protocol (shared with repro.trace.TraceReplayer)
    # ------------------------------------------------------------------

    @property
    def icache_hits(self) -> int:
        """I-cache hits observed by this frontend (for final statistics)."""
        return self.icache.hits

    @property
    def icache_misses(self) -> int:
        """I-cache misses observed by this frontend (for final statistics)."""
        return self.icache.misses

    def on_branch_writeback(self, instruction, fetched: FetchedInstruction,
                            ex_end_cycle: int) -> None:
        """A fetched branch wrote back: train the predictor and unblock fetch.

        This is the only backend→frontend edge of the pipeline; routing it
        through the frontend object lets a trace replayer substitute its
        own (predictor-free) handling without touching the pipeline.
        """
        self.predictor.update(
            instruction.pc,
            instruction.branch_taken,
            fetched.history_checkpoint,
            fetched.predicted_taken,
        )
        self.branch_resolved(instruction.seq, ex_end_cycle)

    def fetch_into(self, decode_queue, stats, cycle: int) -> None:
        """Run one fetch stage: append this cycle's group to ``decode_queue``
        and account the fetched instructions/branch predictions in ``stats``."""
        group = self.fetch(cycle)
        if not group:
            return
        branches = 0
        for fetched in group:
            decode_queue.append(fetched)
            if fetched.instruction.is_branch:
                branches += 1
        stats.branch_predictions += branches
        stats.fetched_instructions += len(group)

    def fetch(self, cycle: int) -> List[FetchedInstruction]:
        """Fetch the group of instructions for ``cycle``.

        Returns an empty list when stalled (I-cache miss refill, blocked on
        an unresolved mispredicted branch) or when the stream is exhausted.
        """
        if self.blocked or cycle <= self._stalled_until:
            return []

        group: List[FetchedInstruction] = []
        current_line: Optional[int] = None
        line_bytes = self.icache.config.line_bytes

        while len(group) < self.width:
            inst = self._next_instruction()
            if inst is None:
                break

            line = inst.pc // line_bytes
            if line != current_line:
                result = self.icache.access(inst.pc)
                if not result.hit:
                    # The group ends; refill charges latency-1 extra cycles.
                    stall = result.latency - self.icache.config.hit_latency
                    self._stalled_until = cycle + stall
                    self.icache_stall_cycles += stall
                    if not group:
                        # Retry this instruction once the line arrives.
                        self._push_back(inst)
                        return group
                    self._push_back(inst)
                    return group
                current_line = line

            fetched = self._annotate(inst, cycle)
            group.append(fetched)
            self.fetched_instructions += 1

            if fetched.mispredicted:
                # Everything after a mispredicted branch would be wrong-path
                # work; stop fetching until the branch resolves.
                self.block_on_branch(inst.seq)
                break
            if inst.is_branch and (fetched.predicted_taken or inst.branch_taken):
                # At most one taken branch per cycle: the group ends here.
                break

        return group

    def _annotate(self, inst: DynamicInstruction, cycle: int) -> FetchedInstruction:
        if not inst.is_branch:
            return FetchedInstruction(instruction=inst, fetch_cycle=cycle)

        predicted_taken, checkpoint = self.predictor.predict(inst.pc)
        target = self.btb.lookup(inst.pc)
        btb_hit = target is not None
        mispredicted = predicted_taken != inst.branch_taken
        if predicted_taken and inst.branch_taken and not btb_hit:
            # Correct direction but no cached target: the front end redirects
            # from decode instead of fetch, costing a short bubble.
            self._stalled_until = max(self._stalled_until, cycle + self._BTB_MISS_BUBBLE)
        if inst.branch_taken:
            self.btb.insert(inst.pc, inst.branch_target)
        return FetchedInstruction(
            instruction=inst,
            fetch_cycle=cycle,
            predicted_taken=predicted_taken,
            predicted_target=target,
            btb_hit=btb_hit,
            history_checkpoint=checkpoint,
            mispredicted=mispredicted,
        )
