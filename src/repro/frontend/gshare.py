"""Gshare branch direction predictor (Table 1: 64K entries).

Gshare XORs the branch PC with a global history register to index a table
of 2-bit saturating counters.  Speculative history update with recovery
is modelled by checkpointing the history register at prediction time and
restoring it when a misprediction is detected.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class GSharePredictor:
    """A gshare predictor with 2-bit saturating counters.

    Parameters
    ----------
    num_entries:
        Number of counters; must be a power of two (default 64K, as in
        Table 1 of the paper).
    history_bits:
        Number of global history bits (defaults to log2(num_entries)).
    """

    def __init__(self, num_entries: int = 64 * 1024, history_bits: int | None = None) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ConfigurationError("num_entries must be a positive power of two")
        self.num_entries = num_entries
        self.index_bits = num_entries.bit_length() - 1
        self.history_bits = self.index_bits if history_bits is None else history_bits
        if not 0 <= self.history_bits <= 32:
            raise ConfigurationError("history_bits must be between 0 and 32")
        self._counters = bytearray([2] * num_entries)  # weakly taken
        self._history = 0
        self._history_mask = (1 << self.history_bits) - 1
        # statistics
        self.predictions = 0
        self.mispredictions = 0

    # ------------------------------------------------------------------

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & (self.num_entries - 1)

    def predict(self, pc: int) -> tuple[bool, int]:
        """Predict the direction of the branch at ``pc``.

        Returns ``(taken, checkpoint)`` where ``checkpoint`` must be
        passed back to :meth:`update` / :meth:`recover`.
        """
        checkpoint = self._history
        counter = self._counters[self._index(pc, self._history)]
        taken = counter >= 2
        # Speculative history update.
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        return taken, checkpoint

    def update(self, pc: int, taken: bool, checkpoint: int, predicted: bool) -> None:
        """Train the predictor with the resolved outcome of a branch."""
        index = self._index(pc, checkpoint)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        if taken != predicted:
            self.mispredictions += 1
            # Repair the global history: the speculative bit was wrong and
            # everything after it was squashed.
            self._history = ((checkpoint << 1) | int(taken)) & self._history_mask

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that were correct so far."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_statistics(self) -> None:
        self.predictions = 0
        self.mispredictions = 0
