"""Analytical register-file area and access-time models.

The paper uses the area/access-time models of Llosa & Arazabal (UPC
technical report, in Spanish) — an extension of the CACTI cache model —
configured for a λ=0.5µm process, and reports areas in 10Kλ² units and
cycle times in ns for four configurations C1–C4 (Table 2).  Neither the
report nor the model code is available, so this package implements models
with the same functional form (multi-ported register cells whose side
grows linearly with the port count; access time composed of decode,
word-line, bit-line and sense terms) and calibrates the constants against
the twelve (area, cycle-time) points of Table 2.  See DESIGN.md for the
substitution rationale and EXPERIMENTS.md for the model-vs-paper
comparison.
"""

from repro.hwmodel.area import RegisterFileGeometry, area_lambda2, AREA_UNIT
from repro.hwmodel.access_time import access_time_ns, calibrated_constants
from repro.hwmodel.configurations import (
    RegisterFileCacheGeometry,
    ArchitectureConfiguration,
    TABLE2_CONFIGURATIONS,
    PAPER_TABLE2,
)
from repro.hwmodel.pareto import (
    DesignPoint,
    pareto_frontier,
    enumerate_single_banked,
    enumerate_register_file_cache,
)
from repro.hwmodel.evaluate import area_units, evaluate, geometry_payload

__all__ = [
    "RegisterFileGeometry",
    "area_lambda2",
    "AREA_UNIT",
    "access_time_ns",
    "calibrated_constants",
    "RegisterFileCacheGeometry",
    "ArchitectureConfiguration",
    "TABLE2_CONFIGURATIONS",
    "PAPER_TABLE2",
    "DesignPoint",
    "pareto_frontier",
    "enumerate_single_banked",
    "enumerate_register_file_cache",
    "area_units",
    "evaluate",
    "geometry_payload",
]
