"""Register file access-time model (ns, λ=0.5µm process).

The access time of a multi-ported register file is modelled, in the same
spirit as CACTI, as the sum of

* a fixed sense/drive term,
* an address-decode term growing with ``log2(num_registers)``,
* a word-line term growing with the physical row length
  (``bits × cell_side``), and
* a bit-line term growing with the physical column height
  (``num_registers × cell_side``),

where ``cell_side = c0 + c1·(read_ports + write_ports)`` is the same cell
geometry used by the area model.

The four coefficients are calibrated by least squares against the eight
access/cycle-time points reported in Table 2 of the paper (the 1-cycle
single-banked file with 128 registers at 3R2W…4R4W, and the uppermost
bank of the register file cache with 16 registers at its four port
configurations).  The calibration reproduces those points to within a few
percent; EXPERIMENTS.md tabulates model vs paper values.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ModelError
from repro.hwmodel.area import (
    CELL_BASE_LAMBDA,
    CELL_TRACK_LAMBDA,
    DEFAULT_REGISTER_BITS,
)

#: Calibration points from Table 2: (num_registers, read_ports, write_ports,
#: access_time_ns).  For the register file cache the uppermost bank has
#: R read ports and W + B write ports (each bus adds a write port).
_CALIBRATION_POINTS: tuple[tuple[int, int, int, float], ...] = (
    # one-cycle single-banked, 128 registers
    (128, 3, 2, 4.71),
    (128, 3, 3, 4.98),
    (128, 4, 3, 5.22),
    (128, 4, 4, 5.48),
    # register file cache uppermost bank, 16 registers
    (16, 3, 2 + 2, 2.45),
    (16, 4, 3 + 2, 2.55),
    (16, 4, 4 + 2, 2.61),
    (16, 4, 4 + 3, 2.67),
)


def _cell_side(read_ports: int, write_ports: int) -> float:
    return CELL_BASE_LAMBDA + CELL_TRACK_LAMBDA * (read_ports + write_ports)


def _features(num_registers: int, read_ports: int, write_ports: int,
              bits: int) -> np.ndarray:
    side = _cell_side(read_ports, write_ports)
    return np.array(
        [
            1.0,
            float(np.log2(num_registers)),
            bits * side / 10_000.0,
            num_registers * side / 10_000.0,
        ]
    )


@lru_cache(maxsize=1)
def calibrated_constants() -> tuple[float, float, float, float]:
    """Least-squares coefficients (k_fixed, k_decode, k_wordline, k_bitline)."""
    rows = [
        _features(registers, reads, writes, DEFAULT_REGISTER_BITS)
        for registers, reads, writes, _ in _CALIBRATION_POINTS
    ]
    targets = [target for *_, target in _CALIBRATION_POINTS]
    matrix = np.vstack(rows)
    coefficients, *_ = np.linalg.lstsq(matrix, np.array(targets), rcond=None)
    return tuple(float(c) for c in coefficients)  # type: ignore[return-value]


def access_time_ns(
    num_registers: int,
    read_ports: int,
    write_ports: int,
    bits: int = DEFAULT_REGISTER_BITS,
) -> float:
    """Access time in ns of a register file bank.

    Raises
    ------
    ModelError
        For non-positive register counts or a port-less bank.
    """
    if num_registers <= 0:
        raise ModelError("num_registers must be positive")
    if read_ports < 0 or write_ports < 0 or read_ports + write_ports == 0:
        raise ModelError("a register file needs at least one port")
    if bits <= 0:
        raise ModelError("bits must be positive")
    coefficients = np.array(calibrated_constants())
    features = _features(num_registers, read_ports, write_ports, bits)
    value = float(coefficients @ features)
    # The fit is excellent inside the calibrated range; clamp to a small
    # positive floor so extreme extrapolations (e.g. 1 register, 1 port)
    # never return a non-physical non-positive delay.
    return max(value, 0.1)


def calibration_error() -> float:
    """Maximum relative error of the model over the calibration points."""
    worst = 0.0
    for registers, reads, writes, target in _CALIBRATION_POINTS:
        predicted = access_time_ns(registers, reads, writes)
        worst = max(worst, abs(predicted - target) / target)
    return worst
