"""Register file area model (λ² units).

A multi-ported register cell needs one word line per port and one
bit line (or differential pair) per port, so both the cell width and the
cell height grow linearly with the total number of ports.  The area of a
register file with ``R`` registers of ``b`` bits and ``P = Pr + Pw``
ports is therefore

    area = R · b · (c0 + c1 · P)²   [λ²]

The constants ``c0`` (base cell side) and ``c1`` (wire track pitch per
port) are calibrated against Table 2 of the paper: with c0 = 20λ and
c1 = 19λ the model reproduces the four single-banked areas (10921, 15070,
18855 and 24163 ×10Kλ² for 3R2W…4R4W, 128 registers × 64 bits) within a
few percent, as well as the register-file-cache areas when the two banks
are summed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

#: Base register cell side in λ (single-ported storage + diffusion).
CELL_BASE_LAMBDA = 20.0
#: Additional cell side per port in λ (one wire track each way).
CELL_TRACK_LAMBDA = 19.0
#: Register width in bits (Alpha-like 64-bit registers).
DEFAULT_REGISTER_BITS = 64
#: The paper reports areas in units of 10K λ².
AREA_UNIT = 10_000.0


@dataclass(frozen=True)
class RegisterFileGeometry:
    """Geometry of one register file bank."""

    num_registers: int
    read_ports: int
    write_ports: int
    bits: int = DEFAULT_REGISTER_BITS

    def __post_init__(self) -> None:
        if self.num_registers <= 0:
            raise ModelError("num_registers must be positive")
        if self.read_ports < 0 or self.write_ports < 0:
            raise ModelError("port counts cannot be negative")
        if self.read_ports + self.write_ports == 0:
            raise ModelError("a register file needs at least one port")
        if self.bits <= 0:
            raise ModelError("bits must be positive")

    @property
    def total_ports(self) -> int:
        return self.read_ports + self.write_ports

    @property
    def cell_side_lambda(self) -> float:
        """Side of one bit cell in λ."""
        return CELL_BASE_LAMBDA + CELL_TRACK_LAMBDA * self.total_ports

    def area_lambda2(self) -> float:
        """Bank area in λ²."""
        return self.num_registers * self.bits * self.cell_side_lambda ** 2

    def area_units(self) -> float:
        """Bank area in the paper's 10Kλ² units."""
        return self.area_lambda2() / AREA_UNIT


def area_lambda2(
    num_registers: int,
    read_ports: int,
    write_ports: int,
    bits: int = DEFAULT_REGISTER_BITS,
) -> float:
    """Area in λ² of a register file bank (convenience wrapper)."""
    geometry = RegisterFileGeometry(num_registers, read_ports, write_ports, bits)
    return geometry.area_lambda2()
