"""Register-file-cache geometry and the Table 2 configurations C1–C4.

Table 2 of the paper fixes, for four roughly-equal-area design points,
the port counts of the three architectures compared in Figure 9:

==========  =======================  =======================  =====================================
config      one-cycle single-banked  two-cycle single-banked  register file cache
==========  =======================  =======================  =====================================
C1          3R 2W                    3R 2W                    upper 3R 2W, lower 2W, 2 buses
C2          3R 3W                    3R 3W                    upper 4R 3W, lower 3W, 2 buses
C3          4R 3W                    4R 3W                    upper 4R 4W, lower 4W, 2 buses
C4          4R 4W                    4R 4W                    upper 4R 4W, lower 4W, 3 buses
==========  =======================  =======================  =====================================

Each bus adds a read port to the lowest level and a write port to the
uppermost level.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.hwmodel.access_time import access_time_ns
from repro.hwmodel.area import RegisterFileGeometry


@dataclass(frozen=True)
class RegisterFileCacheGeometry:
    """Physical geometry of a two-level register file cache."""

    upper_registers: int = 16
    lower_registers: int = 128
    upper_read_ports: int = 4
    upper_write_ports: int = 4
    lower_write_ports: int = 4
    buses: int = 2
    bits: int = 64

    def __post_init__(self) -> None:
        if self.upper_registers <= 0 or self.lower_registers <= 0:
            raise ModelError("register counts must be positive")
        if min(self.upper_read_ports, self.upper_write_ports,
               self.lower_write_ports, self.buses) < 0:
            raise ModelError("port/bus counts cannot be negative")

    @property
    def upper_bank(self) -> RegisterFileGeometry:
        """Uppermost bank: each bus adds one write port."""
        return RegisterFileGeometry(
            num_registers=self.upper_registers,
            read_ports=self.upper_read_ports,
            write_ports=self.upper_write_ports + self.buses,
            bits=self.bits,
        )

    @property
    def lower_bank(self) -> RegisterFileGeometry:
        """Lowest bank: each bus adds one read port."""
        return RegisterFileGeometry(
            num_registers=self.lower_registers,
            read_ports=self.buses,
            write_ports=self.lower_write_ports,
            bits=self.bits,
        )

    def area_units(self) -> float:
        """Total area in 10Kλ² units (both banks)."""
        return self.upper_bank.area_units() + self.lower_bank.area_units()

    def cycle_time_ns(self) -> float:
        """Processor cycle time: the uppermost bank's access time."""
        upper = self.upper_bank
        return access_time_ns(upper.num_registers, upper.read_ports, upper.write_ports,
                              upper.bits)

    def lower_access_time_ns(self) -> float:
        lower = self.lower_bank
        return access_time_ns(lower.num_registers, lower.read_ports, lower.write_ports,
                              lower.bits)

    def lower_read_latency_cycles(self) -> int:
        """Lower-bank read latency expressed in (upper-bank) cycles."""
        import math

        return max(1, math.ceil(self.lower_access_time_ns() / self.cycle_time_ns()))


@dataclass(frozen=True)
class ArchitectureConfiguration:
    """One Table 2 design point (C1..C4) for all three architectures."""

    name: str
    #: Single-banked read/write ports (shared by the 1- and 2-cycle files).
    single_read_ports: int
    single_write_ports: int
    #: Register file cache geometry.
    cache_geometry: RegisterFileCacheGeometry

    def single_banked_geometry(self, num_registers: int = 128) -> RegisterFileGeometry:
        return RegisterFileGeometry(
            num_registers=num_registers,
            read_ports=self.single_read_ports,
            write_ports=self.single_write_ports,
        )

    def single_banked_area_units(self, num_registers: int = 128) -> float:
        return self.single_banked_geometry(num_registers).area_units()

    def single_banked_access_time_ns(self, num_registers: int = 128) -> float:
        geometry = self.single_banked_geometry(num_registers)
        return access_time_ns(
            geometry.num_registers, geometry.read_ports, geometry.write_ports, geometry.bits
        )


#: The four design points of Table 2.
TABLE2_CONFIGURATIONS: tuple[ArchitectureConfiguration, ...] = (
    ArchitectureConfiguration(
        name="C1",
        single_read_ports=3,
        single_write_ports=2,
        cache_geometry=RegisterFileCacheGeometry(
            upper_read_ports=3, upper_write_ports=2, lower_write_ports=2, buses=2
        ),
    ),
    ArchitectureConfiguration(
        name="C2",
        single_read_ports=3,
        single_write_ports=3,
        cache_geometry=RegisterFileCacheGeometry(
            upper_read_ports=4, upper_write_ports=3, lower_write_ports=3, buses=2
        ),
    ),
    ArchitectureConfiguration(
        name="C3",
        single_read_ports=4,
        single_write_ports=3,
        cache_geometry=RegisterFileCacheGeometry(
            upper_read_ports=4, upper_write_ports=4, lower_write_ports=4, buses=2
        ),
    ),
    ArchitectureConfiguration(
        name="C4",
        single_read_ports=4,
        single_write_ports=4,
        cache_geometry=RegisterFileCacheGeometry(
            upper_read_ports=4, upper_write_ports=4, lower_write_ports=4, buses=3
        ),
    ),
)


#: Reference values reported in the paper's Table 2, used by EXPERIMENTS.md
#: and the model-validation tests: name -> (architecture -> (area 10Kλ²,
#: cycle time ns)).
PAPER_TABLE2: dict[str, dict[str, tuple[float, float]]] = {
    "C1": {
        "one-cycle": (10921.0, 4.71),
        "two-cycle": (10921.0, 2.35),
        "cache": (10593.0, 2.45),
    },
    "C2": {
        "one-cycle": (15070.0, 4.98),
        "two-cycle": (15070.0, 2.49),
        "cache": (15487.0, 2.55),
    },
    "C3": {
        "one-cycle": (18855.0, 5.22),
        "two-cycle": (18855.0, 2.61),
        "cache": (20529.0, 2.61),
    },
    "C4": {
        "one-cycle": (24163.0, 5.48),
        "two-cycle": (24163.0, 2.74),
        "cache": (25296.0, 2.67),
    },
}
