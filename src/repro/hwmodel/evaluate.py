"""Joining simulation statistics with the analytical area model.

The search autopilot (:mod:`repro.search`) optimizes over *both* axes of
the paper's trade-off: IPC comes from the cycle-accurate simulator, area
from the analytical geometry models of this package.  This module is the
adapter between the two — given any register-file geometry it answers
"how much area", and given a geometry plus simulation stats it produces
the flat ``{ipc, area_units, ...}`` record objectives are scored on.

``area_units`` sums every bank of the design: a single-banked file is
its one bank, a register file cache is the upper bank (write ports
include one per bus) plus the lower bank (read ports are the buses), as
in Table 2 of the paper.
"""

from __future__ import annotations

from typing import Union

from repro.errors import ModelError
from repro.hwmodel.area import RegisterFileGeometry
from repro.hwmodel.configurations import RegisterFileCacheGeometry

#: Any geometry the area model can price.
Geometry = Union[RegisterFileGeometry, RegisterFileCacheGeometry]


def area_units(geometry: Geometry) -> float:
    """Total area of ``geometry`` in the paper's 10Kλ² units, all banks summed."""
    if isinstance(geometry, (RegisterFileGeometry, RegisterFileCacheGeometry)):
        return geometry.area_units()
    raise ModelError(
        f"cannot compute an area for {type(geometry).__name__!r} "
        f"(expected RegisterFileGeometry or RegisterFileCacheGeometry)"
    )


def geometry_payload(geometry: Geometry) -> dict:
    """JSON-serializable description of ``geometry`` for search reports."""
    if isinstance(geometry, RegisterFileCacheGeometry):
        return {
            "kind": "register-file-cache",
            "upper_registers": geometry.upper_registers,
            "lower_registers": geometry.lower_registers,
            "upper_read_ports": geometry.upper_read_ports,
            "upper_write_ports": geometry.upper_write_ports,
            "lower_write_ports": geometry.lower_write_ports,
            "buses": geometry.buses,
        }
    if isinstance(geometry, RegisterFileGeometry):
        return {
            "kind": "single-banked",
            "num_registers": geometry.num_registers,
            "read_ports": geometry.read_ports,
            "write_ports": geometry.write_ports,
        }
    raise ModelError(
        f"cannot describe geometry {type(geometry).__name__!r}"
    )


def evaluate(stats, geometry: Geometry) -> dict:
    """The flat evaluation record search objectives score.

    ``stats`` is anything with an ``ipc`` attribute (a
    :class:`~repro.pipeline.stats.SimulationStats`, exact or sampled);
    ``geometry`` prices the design point.  Floats are rounded to six
    decimals so reports are byte-stable across platforms.
    """
    return {
        "ipc": round(float(stats.ipc), 6),
        "area_units": round(area_units(geometry), 6),
        "geometry": geometry_payload(geometry),
    }
