"""Design-space enumeration and Pareto filtering (Figure 8 machinery).

Figure 8 of the paper sweeps, for every register file architecture, all
combinations of read/write port counts, discards the configurations that
are dominated (another configuration of the same architecture with lower
area and higher IPC) and plots the surviving (area, relative-performance)
points.  This module provides the enumeration of candidate geometries and
a generic Pareto filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.hwmodel.area import RegisterFileGeometry
from repro.hwmodel.configurations import RegisterFileCacheGeometry


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its cost (area), its value (performance), and
    an arbitrary payload describing the configuration."""

    cost: float
    value: float
    label: str = ""
    payload: object = field(default=None, compare=False)


def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Keep only non-dominated points (lower cost and higher value win).

    A point is dominated if another point has cost <= its cost and
    value >= its value, with at least one strict inequality.  Points tied
    on *both* cost and value dominate nothing and are all kept — distinct
    configurations landing on the same (area, IPC) spot are equally
    optimal and a search must report every one of them, not an arbitrary
    winner.
    """
    candidates = sorted(points, key=lambda point: (point.cost, -point.value))
    frontier: List[DesignPoint] = []
    best_value = float("-inf")
    best_cost = float("-inf")
    for point in candidates:
        if point.value > best_value:
            frontier.append(point)
            best_value = point.value
            best_cost = point.cost
        elif point.value == best_value and point.cost == best_cost:
            # Exact (cost, value) tie with the frontier's current corner:
            # neither point dominates the other (no strict inequality).
            frontier.append(point)
    return frontier


def enumerate_single_banked(
    num_registers: int = 128,
    read_port_range: Sequence[int] = (2, 3, 4, 6, 8),
    write_port_range: Sequence[int] = (1, 2, 3, 4),
) -> List[RegisterFileGeometry]:
    """Candidate port configurations for a single-banked register file."""
    return [
        RegisterFileGeometry(num_registers, reads, writes)
        for reads in read_port_range
        for writes in write_port_range
    ]


def enumerate_register_file_cache(
    upper_registers: int = 16,
    lower_registers: int = 128,
    upper_read_range: Sequence[int] = (2, 3, 4, 6, 8),
    upper_write_range: Sequence[int] = (1, 2, 3, 4),
    lower_write_range: Sequence[int] = (1, 2, 3, 4),
    bus_range: Sequence[int] = (1, 2, 3),
) -> List[RegisterFileCacheGeometry]:
    """Candidate geometries for the register file cache.

    Enumerates the full ``upper_read × upper_write × lower_write × bus``
    cross product over the given ranges; this function itself ties
    nothing together.  The cross product grows fast, so callers restrict
    the ranges they pass: the search space builder
    (:mod:`repro.search.space`) defaults ``lower_write_range`` to the
    upper-write range so the enumeration stays close to the paper's
    Figure 8 sweep, where the lower bank has as many write ports as the
    upper bank.
    """
    return [
        RegisterFileCacheGeometry(
            upper_registers=upper_registers,
            lower_registers=lower_registers,
            upper_read_ports=upper_reads,
            upper_write_ports=upper_writes,
            lower_write_ports=lower_writes,
            buses=buses,
        )
        for upper_reads in upper_read_range
        for upper_writes in upper_write_range
        for lower_writes in lower_write_range
        for buses in bus_range
    ]
