"""Design-space enumeration and Pareto filtering (Figure 8 machinery).

Figure 8 of the paper sweeps, for every register file architecture, all
combinations of read/write port counts, discards the configurations that
are dominated (another configuration of the same architecture with lower
area and higher IPC) and plots the surviving (area, relative-performance)
points.  This module provides the enumeration of candidate geometries and
a generic Pareto filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.hwmodel.area import RegisterFileGeometry
from repro.hwmodel.configurations import RegisterFileCacheGeometry


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated design: its cost (area), its value (performance), and
    an arbitrary payload describing the configuration."""

    cost: float
    value: float
    label: str = ""
    payload: object = field(default=None, compare=False)


def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Keep only non-dominated points (lower cost and higher value win).

    A point is dominated if another point has cost <= its cost and
    value >= its value, with at least one strict inequality.
    """
    candidates = sorted(points, key=lambda point: (point.cost, -point.value))
    frontier: List[DesignPoint] = []
    best_value = float("-inf")
    for point in candidates:
        if point.value > best_value:
            frontier.append(point)
            best_value = point.value
    return frontier


def enumerate_single_banked(
    num_registers: int = 128,
    read_port_range: Sequence[int] = (2, 3, 4, 6, 8),
    write_port_range: Sequence[int] = (1, 2, 3, 4),
) -> List[RegisterFileGeometry]:
    """Candidate port configurations for a single-banked register file."""
    return [
        RegisterFileGeometry(num_registers, reads, writes)
        for reads in read_port_range
        for writes in write_port_range
    ]


def enumerate_register_file_cache(
    upper_registers: int = 16,
    lower_registers: int = 128,
    upper_read_range: Sequence[int] = (2, 3, 4, 6, 8),
    upper_write_range: Sequence[int] = (1, 2, 3, 4),
    lower_write_range: Sequence[int] = (1, 2, 3, 4),
    bus_range: Sequence[int] = (1, 2, 3),
) -> List[RegisterFileCacheGeometry]:
    """Candidate geometries for the register file cache.

    The full cross product is large; callers typically restrict the ranges
    (the experiments tie the lower write ports to the upper write ports to
    keep the sweep close to the paper's).
    """
    return [
        RegisterFileCacheGeometry(
            upper_registers=upper_registers,
            lower_registers=lower_registers,
            upper_read_ports=upper_reads,
            upper_write_ports=upper_writes,
            lower_write_ports=lower_writes,
            buses=buses,
        )
        for upper_reads in upper_read_range
        for upper_writes in upper_write_range
        for lower_writes in lower_write_range
        for buses in bus_range
    ]
