"""A small RISC-like instruction set used by the simulator and workloads.

The ISA is deliberately minimal: the register-file study only needs to
know, for each dynamic instruction, its operation class (which determines
the functional unit and latency), its destination and source *logical*
registers, whether it is a branch (and the branch outcome), and whether it
touches memory (and at what address).  The classes here model exactly
that, plus a small static-program representation and assembler used by the
kernel workloads and the examples.
"""

from repro.isa.opcodes import (
    OpClass,
    Opcode,
    OPCODES,
    opcode_by_mnemonic,
    default_latency,
)
from repro.isa.instruction import (
    RegisterClass,
    LogicalRegister,
    StaticInstruction,
    DynamicInstruction,
    INT_LOGICAL_REGISTERS,
    FP_LOGICAL_REGISTERS,
)
from repro.isa.program import BasicBlock, Program
from repro.isa.assembler import assemble, AssemblyError

__all__ = [
    "OpClass",
    "Opcode",
    "OPCODES",
    "opcode_by_mnemonic",
    "default_latency",
    "RegisterClass",
    "LogicalRegister",
    "StaticInstruction",
    "DynamicInstruction",
    "INT_LOGICAL_REGISTERS",
    "FP_LOGICAL_REGISTERS",
    "BasicBlock",
    "Program",
    "assemble",
    "AssemblyError",
]
