"""A tiny two-pass assembler for the toy ISA.

The assembler exists so that the kernel workloads and the examples can be
written as readable assembly text instead of hand-constructed
:class:`~repro.isa.instruction.StaticInstruction` lists.

Syntax
------

* One instruction per line; ``#`` starts a comment.
* Labels end with ``:`` and start a new basic block.
* Integer registers are ``r0``–``r31``, FP registers ``f0``–``f31``.
* Operand order follows the opcode definition: destination first (if
  any), then sources, then an immediate or label.
* Store syntax is ``sw rVALUE, rBASE, offset`` (value first).

Example::

    loop:
        lw   r2, r1, 0
        add  r3, r3, r2
        addi r1, r1, 4
        addi r4, r4, -1
        bne  r4, r0, loop
"""

from __future__ import annotations

from typing import List

from repro.errors import AssemblyError
from repro.isa.instruction import (
    LogicalRegister,
    RegisterClass,
    StaticInstruction,
)
from repro.isa.opcodes import OPCODES
from repro.isa.program import BasicBlock, Program

__all__ = ["assemble", "AssemblyError"]


def _parse_register(token: str, line_no: int) -> LogicalRegister:
    token = token.strip()
    if len(token) < 2 or token[0] not in ("r", "f"):
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    reg_class = RegisterClass.INT if token[0] == "r" else RegisterClass.FP
    try:
        index = int(token[1:])
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: bad register {token!r}") from exc
    try:
        return LogicalRegister(reg_class, index)
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: {exc}") from exc


def _parse_immediate(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: bad immediate {token!r}") from exc


def _looks_like_register(token: str) -> bool:
    return len(token) >= 2 and token[0] in ("r", "f") and token[1:].isdigit()


def assemble(text: str, base_pc: int = 0x1000) -> Program:
    """Assemble ``text`` into a :class:`~repro.isa.program.Program`.

    Raises
    ------
    AssemblyError
        On unknown mnemonics, malformed operands or undefined labels.
    """
    blocks: List[BasicBlock] = []
    current = BasicBlock(label="__entry__")
    blocks.append(current)
    seen_labels: set[str] = set()
    pending_labels: List[tuple[str, int]] = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label or " " in label:
                raise AssemblyError(f"line {line_no}: bad label {label!r}")
            if label in seen_labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            seen_labels.add(label)
            current = BasicBlock(label=label)
            blocks.append(current)
            line = rest.strip()
        if not line:
            continue

        instruction = _parse_instruction(line, line_no, pending_labels)
        current.append(instruction)

    blocks = [b for b in blocks if b.instructions or b.label != "__entry__"]
    if not blocks or not any(b.instructions for b in blocks):
        raise AssemblyError("program has no instructions")

    for label, line_no in pending_labels:
        if label not in seen_labels:
            raise AssemblyError(f"line {line_no}: undefined label {label!r}")

    return Program(blocks, base_pc=base_pc)


def _parse_instruction(
    line: str, line_no: int, pending_labels: List[tuple[str, int]]
) -> StaticInstruction:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    if mnemonic not in OPCODES:
        raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
    opcode = OPCODES[mnemonic]
    operand_text = parts[1] if len(parts) > 1 else ""
    tokens = [t.strip() for t in operand_text.split(",") if t.strip()]

    expected = (1 if opcode.has_dest else 0) + opcode.num_sources
    takes_trailer = opcode.has_immediate or opcode.op_class.is_branch
    if takes_trailer:
        if len(tokens) not in (expected, expected + 1):
            raise AssemblyError(
                f"line {line_no}: {mnemonic} expects {expected} register operands "
                f"plus an optional immediate/label, got {len(tokens)} operands"
            )
    elif len(tokens) != expected:
        raise AssemblyError(
            f"line {line_no}: {mnemonic} expects {expected} operands, got {len(tokens)}"
        )

    dest = None
    position = 0
    if opcode.has_dest:
        dest = _parse_register(tokens[position], line_no)
        position += 1
    sources = tuple(
        _parse_register(tokens[position + i], line_no) for i in range(opcode.num_sources)
    )
    position += opcode.num_sources

    immediate = 0
    target_label = None
    if position < len(tokens):
        trailer = tokens[position]
        if _looks_like_register(trailer):
            raise AssemblyError(
                f"line {line_no}: unexpected extra register operand {trailer!r}"
            )
        if opcode.op_class.is_branch:
            target_label = trailer
            pending_labels.append((trailer, line_no))
        else:
            immediate = _parse_immediate(trailer, line_no)
    elif opcode.op_class.is_branch:
        raise AssemblyError(f"line {line_no}: branch {mnemonic} needs a target label")

    try:
        return StaticInstruction(
            opcode=opcode,
            dest=dest,
            sources=sources,
            immediate=immediate,
            target_label=target_label,
        )
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: {exc}") from exc
