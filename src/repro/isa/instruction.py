"""Static and dynamic instruction representations.

The timing simulator is *stream driven*: it consumes a sequence of
:class:`DynamicInstruction` objects, each of which already knows its
branch outcome and effective memory address (when applicable).  The
simulator models only timing — register renaming, issue, port
arbitration, caching — exactly like trace-driven research simulators of
the era the paper comes from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.isa.opcodes import OpClass, Opcode, default_latency


class RegisterClass(enum.Enum):
    """Whether a logical register lives in the integer or FP register file."""

    # C-level identity hash: register classes key map tables and register
    # file dictionaries on the per-instruction path, and the default
    # ``Enum.__hash__`` is a comparatively slow Python-level function.
    __hash__ = object.__hash__

    INT = "int"
    FP = "fp"


#: Number of architected (logical) registers per class, Alpha-like.
NUM_LOGICAL_PER_CLASS = 32


@dataclass(frozen=True, order=True)
class LogicalRegister:
    """An architected register, e.g. integer r5 or floating point f12."""

    reg_class: RegisterClass
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_LOGICAL_PER_CLASS:
            raise ValueError(
                f"logical register index {self.index} out of range "
                f"[0, {NUM_LOGICAL_PER_CLASS})"
            )
        # Registers key the hottest dictionaries of the simulator; the
        # generated dataclass hash allocates a (reg_class, index) tuple on
        # every call, so cache a cheap, equality-consistent integer hash.
        object.__setattr__(
            self, "_hash", (self.index << 1) | (self.reg_class is RegisterClass.FP)
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "r" if self.reg_class is RegisterClass.INT else "f"
        return f"{prefix}{self.index}"


INT_LOGICAL_REGISTERS: tuple[LogicalRegister, ...] = tuple(
    LogicalRegister(RegisterClass.INT, i) for i in range(NUM_LOGICAL_PER_CLASS)
)
FP_LOGICAL_REGISTERS: tuple[LogicalRegister, ...] = tuple(
    LogicalRegister(RegisterClass.FP, i) for i in range(NUM_LOGICAL_PER_CLASS)
)


def int_reg(index: int) -> LogicalRegister:
    """Shorthand for the integer logical register ``r<index>``."""
    return INT_LOGICAL_REGISTERS[index]


def fp_reg(index: int) -> LogicalRegister:
    """Shorthand for the floating-point logical register ``f<index>``."""
    return FP_LOGICAL_REGISTERS[index]


@dataclass(frozen=True)
class StaticInstruction:
    """One instruction of a static program (before execution).

    Static instructions carry label/immediate information so the
    functional executor in :mod:`repro.isa.program` can run them and emit
    the dynamic stream consumed by the timing simulator.
    """

    opcode: Opcode
    dest: Optional[LogicalRegister] = None
    sources: tuple[LogicalRegister, ...] = ()
    immediate: int = 0
    target_label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.opcode.has_dest and self.dest is None:
            raise ValueError(f"opcode {self.opcode.mnemonic} requires a destination")
        if not self.opcode.has_dest and self.dest is not None:
            raise ValueError(f"opcode {self.opcode.mnemonic} takes no destination")
        if len(self.sources) != self.opcode.num_sources:
            raise ValueError(
                f"opcode {self.opcode.mnemonic} takes {self.opcode.num_sources} "
                f"source registers, got {len(self.sources)}"
            )

    @property
    def op_class(self) -> OpClass:
        return self.opcode.op_class

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.opcode.mnemonic]
        operands: list[str] = []
        if self.dest is not None:
            operands.append(str(self.dest))
        operands.extend(str(s) for s in self.sources)
        if self.target_label is not None:
            operands.append(self.target_label)
        elif self.opcode.has_immediate:
            operands.append(str(self.immediate))
        return parts[0] + " " + ", ".join(operands)


@dataclass(slots=True)
class DynamicInstruction:
    """One instruction of the dynamic stream fed to the timing simulator.

    Attributes
    ----------
    seq:
        Position in the dynamic stream (0-based, monotonically increasing).
    op_class:
        Operation class; selects functional unit and latency.
    dest:
        Destination logical register, or ``None`` for stores/branches/nops.
    sources:
        Source logical registers (possibly empty).
    latency:
        Functional-unit latency in cycles (defaults to the class latency).
    pc:
        Instruction address (used by the I-cache and branch predictor).
    is_branch / branch_taken / branch_target:
        Control-flow information; ``branch_taken`` is the *actual* outcome
        that the branch predictor is trying to predict.
    mem_address:
        Effective address for loads/stores (``None`` otherwise).
    """

    seq: int
    op_class: OpClass
    dest: Optional[LogicalRegister] = None
    sources: tuple[LogicalRegister, ...] = ()
    latency: Optional[int] = None
    pc: int = 0
    is_branch: bool = False
    branch_taken: bool = False
    branch_target: int = 0
    mem_address: Optional[int] = None
    mnemonic: str = ""

    # Fields filled in / used by the pipeline model.
    annotations: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # Identity checks instead of the OpClass convenience properties:
        # this runs once per generated instruction.
        op_class = self.op_class
        if self.latency is None:
            self.latency = default_latency(op_class)
        if op_class is OpClass.BRANCH:
            self.is_branch = True
        if ((op_class is OpClass.LOAD or op_class is OpClass.STORE)
                and self.mem_address is None):
            self.mem_address = 0

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    @property
    def writes_register(self) -> bool:
        return self.dest is not None

    @property
    def next_pc(self) -> int:
        """Address of the next instruction actually executed."""
        if self.is_branch and self.branch_taken:
            return self.branch_target
        return self.pc + 4

    def source_registers(self) -> Sequence[LogicalRegister]:
        """Return the source logical registers (may contain duplicates)."""
        return self.sources

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        name = self.mnemonic or self.op_class.value
        dest = f" {self.dest}" if self.dest is not None else ""
        srcs = ",".join(str(s) for s in self.sources)
        return f"[{self.seq}] {name}{dest} <- {srcs}"
