"""Operation classes, opcodes and default latencies.

The latencies follow Table 1 of the paper:

* simple integer ops: 1 cycle (6 units)
* integer multiply: 2 cycles, integer divide: 14 cycles (3 units shared)
* simple FP ops: 2 cycles (4 units)
* FP divide: 14 cycles (2 units)
* loads/stores: handled by the load/store units and the data cache
  (4 units, address generation 1 cycle + cache access)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Coarse operation class; determines functional unit and latency."""

    # ``Enum.__hash__`` is a Python-level function (it hashes the member
    # name); op classes key several dictionaries on the simulator's
    # per-instruction path, so use the C-level identity hash instead.
    # Members are singletons (equality is identity), so this is
    # consistent; only hash *values* change, never lookup results.
    __hash__ = object.__hash__

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_DIV)

    @property
    def writes_register(self) -> bool:
        """Whether instructions of this class normally produce a result."""
        return self not in (OpClass.STORE, OpClass.BRANCH, OpClass.NOP)


#: Execution latency (cycles spent in the functional unit) per class.
#: Loads additionally pay the data-cache access time.
DEFAULT_LATENCIES: dict[OpClass, int] = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 2,
    OpClass.INT_DIV: 14,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 2,
    OpClass.FP_DIV: 14,
    OpClass.LOAD: 1,  # address generation; cache access time is added on top
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.NOP: 1,
}


def default_latency(op_class: OpClass) -> int:
    """Return the default functional-unit latency for ``op_class``."""
    return DEFAULT_LATENCIES[op_class]


@dataclass(frozen=True)
class Opcode:
    """A concrete opcode in the toy ISA.

    Attributes
    ----------
    mnemonic:
        Assembly mnemonic (e.g. ``"add"``).
    op_class:
        The :class:`OpClass` the opcode belongs to.
    num_sources:
        Number of register source operands (0..2).
    has_dest:
        Whether the opcode writes a destination register.
    has_immediate:
        Whether the opcode takes an immediate operand.
    """

    mnemonic: str
    op_class: OpClass
    num_sources: int = 2
    has_dest: bool = True
    has_immediate: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.num_sources <= 2:
            raise ValueError("num_sources must be 0, 1 or 2")


_OPCODE_DEFS: tuple[Opcode, ...] = (
    # Integer ALU
    Opcode("add", OpClass.INT_ALU),
    Opcode("sub", OpClass.INT_ALU),
    Opcode("and", OpClass.INT_ALU),
    Opcode("or", OpClass.INT_ALU),
    Opcode("xor", OpClass.INT_ALU),
    Opcode("sll", OpClass.INT_ALU),
    Opcode("srl", OpClass.INT_ALU),
    Opcode("slt", OpClass.INT_ALU),
    Opcode("addi", OpClass.INT_ALU, num_sources=1, has_immediate=True),
    Opcode("li", OpClass.INT_ALU, num_sources=0, has_immediate=True),
    Opcode("mov", OpClass.INT_ALU, num_sources=1),
    # Integer multiply / divide
    Opcode("mul", OpClass.INT_MUL),
    Opcode("div", OpClass.INT_DIV),
    # FP
    Opcode("fadd", OpClass.FP_ALU),
    Opcode("fsub", OpClass.FP_ALU),
    Opcode("fmov", OpClass.FP_ALU, num_sources=1),
    Opcode("fmul", OpClass.FP_MUL),
    Opcode("fdiv", OpClass.FP_DIV),
    # Memory
    Opcode("lw", OpClass.LOAD, num_sources=1, has_immediate=True),
    Opcode("flw", OpClass.LOAD, num_sources=1, has_immediate=True),
    Opcode("sw", OpClass.STORE, num_sources=2, has_dest=False, has_immediate=True),
    Opcode("fsw", OpClass.STORE, num_sources=2, has_dest=False, has_immediate=True),
    # Control
    Opcode("beq", OpClass.BRANCH, num_sources=2, has_dest=False, has_immediate=True),
    Opcode("bne", OpClass.BRANCH, num_sources=2, has_dest=False, has_immediate=True),
    Opcode("blt", OpClass.BRANCH, num_sources=2, has_dest=False, has_immediate=True),
    Opcode("bge", OpClass.BRANCH, num_sources=2, has_dest=False, has_immediate=True),
    Opcode("jmp", OpClass.BRANCH, num_sources=0, has_dest=False, has_immediate=True),
    # Misc
    Opcode("nop", OpClass.NOP, num_sources=0, has_dest=False),
)

#: Mapping from mnemonic to :class:`Opcode` for every opcode in the ISA.
OPCODES: dict[str, Opcode] = {op.mnemonic: op for op in _OPCODE_DEFS}


def opcode_by_mnemonic(mnemonic: str) -> Opcode:
    """Look up an opcode by its assembly mnemonic.

    Raises
    ------
    KeyError
        If the mnemonic is not part of the ISA.
    """
    return OPCODES[mnemonic]
