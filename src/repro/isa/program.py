"""Static program representation and a small functional executor.

A :class:`Program` is a list of labelled basic blocks of
:class:`~repro.isa.instruction.StaticInstruction`.  The
:meth:`Program.run` method executes it functionally (integer and FP
values, a flat byte-addressed memory) and yields the dynamic instruction
stream consumed by the timing simulator.  This is how the hand-written
kernel workloads in :mod:`repro.workloads.kernels` and the examples
produce realistic traces with genuine dataflow, branches and addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.isa.instruction import (
    DynamicInstruction,
    LogicalRegister,
    RegisterClass,
    StaticInstruction,
)
from repro.isa.opcodes import OpClass


@dataclass
class BasicBlock:
    """A labelled straight-line sequence of static instructions."""

    label: str
    instructions: List[StaticInstruction] = field(default_factory=list)

    def append(self, instruction: StaticInstruction) -> None:
        self.instructions.append(instruction)

    def __len__(self) -> int:
        return len(self.instructions)


class Program:
    """A static program: an ordered collection of basic blocks.

    The program address space is synthetic: instruction ``i`` (in flat
    order) lives at address ``base_pc + 4 * i``.
    """

    def __init__(self, blocks: List[BasicBlock], base_pc: int = 0x1000) -> None:
        self.blocks = blocks
        self.base_pc = base_pc
        self._flat: List[StaticInstruction] = []
        self._label_to_index: Dict[str, int] = {}
        for block in blocks:
            if block.label in self._label_to_index:
                raise SimulationError(f"duplicate label {block.label!r}")
            self._label_to_index[block.label] = len(self._flat)
            self._flat.extend(block.instructions)
        if not self._flat:
            raise SimulationError("program has no instructions")

    def __len__(self) -> int:
        return len(self._flat)

    @property
    def instructions(self) -> List[StaticInstruction]:
        return list(self._flat)

    def label_address(self, label: str) -> int:
        """Return the pc of the first instruction of block ``label``."""
        return self.base_pc + 4 * self._label_to_index[label]

    def run(
        self,
        max_instructions: int = 100_000,
        initial_registers: Optional[Dict[LogicalRegister, float]] = None,
        initial_memory: Optional[Dict[int, float]] = None,
    ) -> Iterator[DynamicInstruction]:
        """Functionally execute the program, yielding dynamic instructions.

        Execution stops when the program falls off the end, or when
        ``max_instructions`` dynamic instructions have been produced.
        """
        regs: Dict[LogicalRegister, float] = dict(initial_registers or {})
        memory: Dict[int, float] = dict(initial_memory or {})
        index = 0
        seq = 0
        while 0 <= index < len(self._flat) and seq < max_instructions:
            static = self._flat[index]
            pc = self.base_pc + 4 * index
            dyn, next_index = self._execute_one(static, index, seq, pc, regs, memory)
            yield dyn
            seq += 1
            index = next_index

    # ------------------------------------------------------------------
    # functional execution helpers
    # ------------------------------------------------------------------

    def _read(self, regs: Dict[LogicalRegister, float], reg: LogicalRegister) -> float:
        return regs.get(reg, 0.0)

    def _execute_one(
        self,
        static: StaticInstruction,
        index: int,
        seq: int,
        pc: int,
        regs: Dict[LogicalRegister, float],
        memory: Dict[int, float],
    ) -> tuple[DynamicInstruction, int]:
        mnemonic = static.opcode.mnemonic
        srcs = [self._read(regs, s) for s in static.sources]
        imm = static.immediate
        next_index = index + 1
        branch_taken = False
        branch_target_pc = pc + 4
        mem_address: Optional[int] = None
        result: Optional[float] = None

        if mnemonic in ("add", "fadd"):
            result = srcs[0] + srcs[1]
        elif mnemonic in ("sub", "fsub"):
            result = srcs[0] - srcs[1]
        elif mnemonic in ("mul", "fmul"):
            result = srcs[0] * srcs[1]
        elif mnemonic in ("div", "fdiv"):
            result = srcs[0] / srcs[1] if srcs[1] != 0 else 0.0
        elif mnemonic == "and":
            result = float(int(srcs[0]) & int(srcs[1]))
        elif mnemonic == "or":
            result = float(int(srcs[0]) | int(srcs[1]))
        elif mnemonic == "xor":
            result = float(int(srcs[0]) ^ int(srcs[1]))
        elif mnemonic == "sll":
            result = float(int(srcs[0]) << (int(srcs[1]) & 31))
        elif mnemonic == "srl":
            result = float(int(srcs[0]) >> (int(srcs[1]) & 31))
        elif mnemonic == "slt":
            result = 1.0 if srcs[0] < srcs[1] else 0.0
        elif mnemonic == "addi":
            result = srcs[0] + imm
        elif mnemonic == "li":
            result = float(imm)
        elif mnemonic in ("mov", "fmov"):
            result = srcs[0]
        elif mnemonic in ("lw", "flw"):
            mem_address = int(srcs[0]) + imm
            result = memory.get(mem_address, 0.0)
        elif mnemonic in ("sw", "fsw"):
            # sources[0] is the value, sources[1] is the base address.
            mem_address = int(srcs[1]) + imm
            memory[mem_address] = srcs[0]
        elif mnemonic in ("beq", "bne", "blt", "bge", "jmp"):
            branch_taken = self._branch_outcome(mnemonic, srcs)
            if static.target_label is None:
                raise SimulationError(f"branch at index {index} has no target label")
            target_index = self._label_to_index[static.target_label]
            branch_target_pc = self.base_pc + 4 * target_index
            if branch_taken:
                next_index = target_index
        elif mnemonic == "nop":
            pass
        else:  # pragma: no cover - defensive; opcodes table is closed
            raise SimulationError(f"unknown mnemonic {mnemonic!r}")

        if static.dest is not None and result is not None:
            regs[static.dest] = result

        dyn = DynamicInstruction(
            seq=seq,
            op_class=static.op_class,
            dest=static.dest,
            sources=tuple(static.sources),
            pc=pc,
            is_branch=static.op_class is OpClass.BRANCH,
            branch_taken=branch_taken,
            branch_target=branch_target_pc,
            mem_address=mem_address,
            mnemonic=mnemonic,
        )
        return dyn, next_index

    @staticmethod
    def _branch_outcome(mnemonic: str, srcs: List[float]) -> bool:
        if mnemonic == "jmp":
            return True
        a, b = srcs[0], srcs[1]
        if mnemonic == "beq":
            return a == b
        if mnemonic == "bne":
            return a != b
        if mnemonic == "blt":
            return a < b
        if mnemonic == "bge":
            return a >= b
        raise SimulationError(f"not a branch mnemonic: {mnemonic!r}")


def registers_touched(program: Program) -> set[LogicalRegister]:
    """Return every logical register read or written by ``program``."""
    touched: set[LogicalRegister] = set()
    for inst in program.instructions:
        if inst.dest is not None:
            touched.add(inst.dest)
        touched.update(inst.sources)
    return touched


def register_class_mix(program: Program) -> dict[RegisterClass, int]:
    """Count instructions writing each register class (for sanity checks)."""
    counts = {RegisterClass.INT: 0, RegisterClass.FP: 0}
    for inst in program.instructions:
        if inst.dest is not None:
            counts[inst.dest.reg_class] += 1
    return counts
