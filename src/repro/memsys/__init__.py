"""Memory system models: caches and the load/store queue."""

from repro.memsys.cache import CacheModel, CacheConfig, AccessResult
from repro.memsys.lsq import LoadStoreQueue, LSQEntry

__all__ = [
    "CacheModel",
    "CacheConfig",
    "AccessResult",
    "LoadStoreQueue",
    "LSQEntry",
]
