"""Set-associative cache timing model (used for both I-cache and D-cache).

Table 1 of the paper specifies 64KB, 2-way, 64-byte lines for both
caches, with a 1-cycle hit, a 6-cycle miss (8 cycles for a dirty D-cache
miss) and up to 16 outstanding misses for the D-cache.  The model here
tracks tags, dirty bits and LRU state and returns the latency of each
access; outstanding-miss limiting is handled with a simple MSHR counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int = 64 * 1024
    associativity: int = 2
    line_bytes: int = 64
    hit_latency: int = 1
    miss_latency: int = 6
    dirty_miss_latency: int = 8
    writeback: bool = True
    max_outstanding_misses: int = 16

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigurationError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                "size_bytes must be a multiple of line_bytes * associativity"
            )
        if self.hit_latency <= 0 or self.miss_latency < self.hit_latency:
            raise ConfigurationError("miss latency must be >= hit latency > 0")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    latency: int
    writeback: bool = False


class _Line:
    __slots__ = ("tag", "dirty", "lru")

    def __init__(self, tag: int, lru: int) -> None:
        self.tag = tag
        self.dirty = False
        self.lru = lru


class CacheModel:
    """A set-associative, write-back (or write-through) cache timing model."""

    def __init__(self, config: CacheConfig | None = None, name: str = "cache") -> None:
        self.config = config or CacheConfig()
        self.name = name
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(self.config.num_sets)]
        self._lru_clock = 0
        self._outstanding_misses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
        # Geometry/timing hoisted out of the per-access path, plus shared
        # result objects for the two timing-identical outcomes (the
        # results are frozen, so sharing them is safe).
        self._line_bytes = self.config.line_bytes
        self._num_sets = self.config.num_sets
        self._is_writeback = self.config.writeback
        self._hit_result = AccessResult(hit=True, latency=self.config.hit_latency)
        self._miss_result = AccessResult(hit=False, latency=self.config.miss_latency)

    # ------------------------------------------------------------------

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self._line_bytes
        set_index = line % self._num_sets
        tag = line // self._num_sets
        return set_index, tag

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access ``address``; returns hit/miss and the access latency."""
        self._lru_clock += 1
        line_index = address // self._line_bytes
        cache_set = self._sets[line_index % self._num_sets]
        line = cache_set.get(line_index // self._num_sets)
        if line is not None:
            line.lru = self._lru_clock
            if is_write and self._is_writeback:
                line.dirty = True
            self.hits += 1
            return self._hit_result

        self.misses += 1
        victim_dirty = self._fill(cache_set, line_index // self._num_sets, is_write)
        if not victim_dirty:
            return self._miss_result
        return AccessResult(hit=False, latency=self.config.dirty_miss_latency,
                            writeback=True)

    def probe(self, address: int) -> bool:
        """Return whether ``address`` currently hits, without updating state."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def _fill(self, cache_set: Dict[int, _Line], tag: int, is_write: bool) -> bool:
        """Insert ``tag`` into ``cache_set``; returns True if a dirty victim
        had to be written back."""
        victim_dirty = False
        if len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].lru)
            victim_dirty = cache_set[victim_tag].dirty and self.config.writeback
            if victim_dirty:
                self.writebacks += 1
            del cache_set[victim_tag]
        new_line = _Line(tag, self._lru_clock)
        if is_write and self.config.writeback:
            new_line.dirty = True
        cache_set[tag] = new_line
        return victim_dirty

    # ------------------------------------------------------------------
    # MSHR (outstanding miss) tracking
    # ------------------------------------------------------------------

    def can_issue_miss(self) -> bool:
        """Whether a new miss can be issued (MSHR available)."""
        return self._outstanding_misses < self.config.max_outstanding_misses

    def miss_issued(self) -> None:
        self._outstanding_misses += 1

    def miss_completed(self) -> None:
        if self._outstanding_misses > 0:
            self._outstanding_misses -= 1

    @property
    def outstanding_misses(self) -> int:
        return self._outstanding_misses

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
