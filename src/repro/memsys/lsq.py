"""Load/store queue with store→load forwarding.

Table 1: 64 entries with store-load forwarding; loads may execute when
prior store addresses are known.  The LSQ tracks program order of memory
operations, answers whether a load may issue (all older store addresses
known) and whether its data can be forwarded from an older store to the
same address (in which case the D-cache is not accessed).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, SimulationError


@dataclass(slots=True)
class LSQEntry:
    """One load or store tracked by the queue."""

    seq: int
    is_store: bool
    address: Optional[int] = None  # None until the address is computed
    address_ready: bool = False
    committed: bool = False


class LoadStoreQueue:
    """A unified load/store queue ordered by program order (seq)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ConfigurationError("LSQ capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[int, LSQEntry]" = OrderedDict()
        # statistics
        self.forwarded_loads = 0
        self.blocked_loads = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, seq: int, is_store: bool) -> LSQEntry:
        """Allocate an entry at dispatch time (program order)."""
        if self.full:
            raise SimulationError("LSQ overflow: insert called while full")
        if self._entries and next(reversed(self._entries)) >= seq:
            raise SimulationError("LSQ entries must be inserted in program order")
        entry = LSQEntry(seq=seq, is_store=is_store)
        self._entries[seq] = entry
        return entry

    def set_address(self, seq: int, address: int) -> None:
        """Record the effective address once the AGU has computed it."""
        entry = self._entries.get(seq)
        if entry is None:
            raise SimulationError(f"no LSQ entry for seq {seq}")
        entry.address = address
        entry.address_ready = True

    def load_may_issue(self, seq: int) -> bool:
        """A load may access memory when all older store addresses are known."""
        for other_seq, entry in self._entries.items():
            if other_seq >= seq:
                break
            if entry.is_store and not entry.address_ready:
                self.blocked_loads += 1
                return False
        return True

    def forwarding_store(self, seq: int, address: int) -> Optional[int]:
        """Return the seq of the youngest older store to ``address``, if any.

        A hit means the load's data is forwarded inside the LSQ and the
        D-cache is not accessed.
        """
        best: Optional[int] = None
        for other_seq, entry in self._entries.items():
            if other_seq >= seq:
                break
            if entry.is_store and entry.address_ready and entry.address == address:
                best = other_seq
        if best is not None:
            self.forwarded_loads += 1
        return best

    def release(self, seq: int) -> None:
        """Remove the entry at commit (stores) or once the load completes
        and commits."""
        self._entries.pop(seq, None)

    def flush_after(self, seq: int) -> None:
        """Squash all entries younger than ``seq`` (branch misprediction)."""
        for other_seq in [s for s in self._entries if s > seq]:
            del self._entries[other_seq]

    def clear(self) -> None:
        self._entries.clear()

    def occupancy(self) -> int:
        return len(self._entries)
