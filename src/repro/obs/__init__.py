"""End-to-end observability: metrics, trace-context spans, events.

The subsystem has four small, composable parts:

* :mod:`repro.obs.metrics` — a process-local **metrics registry**
  (counters, gauges, histograms with fixed exponential buckets) that
  every layer of the sweep service reports through.  Histograms from
  different replicas merge exactly (fixed buckets), so fleet-wide
  latency distributions are the sum of per-replica snapshots.
* :mod:`repro.obs.context` — **trace contexts**: a ``trace_id`` minted
  by :class:`~repro.service.client.ServiceClient` (or the server at
  admission) and propagated via the ``X-Repro-Trace`` header through
  job records, lease files and into worker processes, so every span a
  job produces anywhere in the fleet shares one trace.
* :mod:`repro.obs.events` — the **event log**: a bounded,
  schema-versioned JSONL stream under ``<cache-dir>/events/`` (one
  file series per writer, size-rotated) plus an in-memory ring buffer
  feeding the ``GET /events`` SSE endpoint with resume-from-``seq``.
* :mod:`repro.obs.prometheus` — text **exposition** (format 0.0.4) of
  the registry for ``GET /metrics?format=prometheus``, with the
  minimal parser the tests and CI validate it against.

``python -m repro.obs report <events-dir>`` renders a per-job latency
breakdown and point-latency percentiles from a recorded event log; see
``docs/observability.md`` for the span taxonomy and event format.

Everything is stdlib-only and disabled-by-default outside the service:
a :class:`Telemetry` handle bundles one registry + event log + bus, and
production guards are a single ``is None`` test when no telemetry is
attached (the same discipline as :mod:`repro.chaos.seams`, held to the
same overhead gate by the ``obs_overhead`` bench scenario).
"""

from repro.obs.context import TraceContext, TRACE_HEADER, new_trace
from repro.obs.events import EventBus, EventLog, read_events
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RateWindow,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "TRACE_HEADER",
    "Counter",
    "EventBus",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RateWindow",
    "Telemetry",
    "TraceContext",
    "new_trace",
    "read_events",
]
