"""``python -m repro.obs`` — observability CLI.

Currently one subcommand::

    python -m repro.obs report <events-dir>

renders the per-job latency breakdown and point-latency percentiles
from a recorded event log (see :mod:`repro.obs.report`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.report import render_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect the sweep service's telemetry output.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report",
        help="render a per-job latency breakdown from an event log",
        description=(
            "Reconstruct span trees from <events-dir> (the events/ "
            "directory under a service cache tree) and print a per-job "
            "latency breakdown plus p50/p95/p99 point latency."
        ),
    )
    report.add_argument(
        "events_dir",
        help="path to the events/ directory (e.g. <cache-dir>/events)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        sys.stdout.write(render_report(args.events_dir))
        return 0
    return 2  # unreachable: argparse enforces the subcommand


if __name__ == "__main__":
    raise SystemExit(main())
