"""Trace contexts and their propagation.

A :class:`TraceContext` is the pair ``(trace_id, span_id)``: the trace
identifies one end-to-end operation (a submitted job, from the client
call to the last stored point), the span identifies one timed step
inside it.  Contexts cross process boundaries as the ``X-Repro-Trace``
header (``<trace_id>-<span_id>``, both lowercase hex) and as plain
dictionaries inside job records, lease files and worker task payloads.

The *current* context is tracked in a :class:`contextvars.ContextVar`
so deep layers (the storage observer, the JSON log formatter) can stamp
their output with the active trace without any parameter threading;
``bind()`` scopes an override to a ``with`` block.
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import uuid
from dataclasses import dataclass
from typing import Iterator, Optional

#: HTTP header carrying a trace context end to end.
TRACE_HEADER = "X-Repro-Trace"

_HEADER_RE = re.compile(r"^([0-9a-f]{16,32})-([0-9a-f]{8,16})$")


def _hex(bits: int) -> str:
    return uuid.uuid4().hex[: bits // 4]


@dataclass(frozen=True)
class TraceContext:
    """One ``(trace_id, span_id)`` pair; immutable, hashable."""

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        """A fresh span in the same trace."""
        return TraceContext(self.trace_id, _hex(64))

    def to_header(self) -> str:
        return f"{self.trace_id}-{self.span_id}"

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload) -> Optional["TraceContext"]:
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            return cls(trace_id, span_id)
        return None

    @classmethod
    def parse(cls, header) -> Optional["TraceContext"]:
        """A context from an ``X-Repro-Trace`` value; ``None`` when the
        header is absent or malformed (propagation degrades, never 4xx)."""
        if not isinstance(header, str):
            return None
        match = _HEADER_RE.match(header.strip())
        if match is None:
            return None
        return cls(match.group(1), match.group(2))


def new_trace() -> TraceContext:
    """A fresh root context (new trace, new span)."""
    return TraceContext(_hex(128), _hex(64))


#: The context active in this thread/task, if any.
_current: contextvars.ContextVar[Optional[TraceContext]] = contextvars.ContextVar(
    "repro_obs_trace", default=None
)


def current() -> Optional[TraceContext]:
    """The trace context bound to the calling thread, if any."""
    return _current.get()


@contextlib.contextmanager
def bind(context: Optional[TraceContext]) -> Iterator[None]:
    """Scope ``context`` as the current one for the ``with`` block."""
    token = _current.set(context)
    try:
        yield
    finally:
        _current.reset(token)
