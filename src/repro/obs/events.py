"""The event stream: a rotated JSONL log on disk, a ring buffer in RAM.

**On disk** (:class:`EventLog`): every writer — a service replica, a
worker process — owns one file series ``<events-dir>/<source>-NNNN.jsonl``
and appends one JSON object per line.  Writers never share a file, so
no cross-process locking is needed and a torn final line (a killed
process) damages at most that writer's last event.  Files rotate at
``max_bytes`` and the series is bounded at ``max_files`` (oldest
deleted), so the log can run forever in a fixed footprint.  Every event
carries ``schema`` (:data:`EVENT_SCHEMA_VERSION`), a wall-clock ``ts``,
the writer's ``source`` and a per-writer monotonic ``seq`` (resumed
from disk across restarts).

**In memory** (:class:`EventBus`): the service replica mirrors its own
events into a bounded ring buffer that the ``GET /events`` SSE endpoint
serves from; ``since=<seq>`` resumes a dropped subscriber from the
oldest still-buffered event after its cursor.

:func:`read_events` merges a whole directory back into one stream
ordered by ``(ts, source, seq)`` — the input to ``repro.obs report``
and the chaos timeline checks.
"""

from __future__ import annotations

import json
import os
import re
import threading
from collections import deque
from time import time as _wall_clock
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Bump when the event payload layout changes; readers skip (and count)
#: lines from other schemas instead of failing.
EVENT_SCHEMA_VERSION = 1

#: Default rotation point of one event file.
DEFAULT_MAX_BYTES = 4 * 1024 * 1024

#: Default bound on files kept per writer (oldest deleted beyond it).
DEFAULT_MAX_FILES = 8

_FILE_RE = re.compile(r"^(?P<source>.+)-(?P<index>\d{4})\.jsonl$")


def _sanitize_source(source: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.]+", "_", source) or "writer"


class EventLog:
    """One writer's bounded, rotated JSONL series under ``events_dir``.

    ``append`` stamps ``schema``/``ts``/``source``/``seq`` onto the
    event and writes one line.  ENOSPC (and any other write error) is
    absorbed into ``write_errors`` — telemetry must never take the
    service down, mirroring the job store's degraded-durability rule.
    """

    def __init__(
        self,
        events_dir: str,
        source: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_files: int = DEFAULT_MAX_FILES,
        clock: Callable[[], float] = _wall_clock,
    ) -> None:
        if max_bytes < 1 or max_files < 1:
            raise ValueError("max_bytes and max_files must be positive")
        self.events_dir = events_dir
        self.source = _sanitize_source(source)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.clock = clock
        self.write_errors = 0
        self._lock = threading.Lock()
        self._handle = None
        self._index = 0
        self._seq = 0
        try:
            os.makedirs(events_dir, exist_ok=True)
            self._resume()
        except OSError:
            self.write_errors += 1

    # ------------------------------------------------------------------

    def _series(self) -> List[Tuple[int, str]]:
        """This source's existing ``(index, path)`` files, oldest first."""
        entries = []
        try:
            names = os.listdir(self.events_dir)
        except OSError:
            return []
        for name in names:
            match = _FILE_RE.match(name)
            if match is None or match.group("source") != self.source:
                continue
            entries.append(
                (int(match.group("index")),
                 os.path.join(self.events_dir, name))
            )
        entries.sort()
        return entries

    def _resume(self) -> None:
        """Continue the series: next file index, next ``seq`` after the
        last event this source ever wrote (so SSE cursors survive a
        restart instead of rewinding to zero)."""
        series = self._series()
        if not series:
            return
        self._index = series[-1][0]
        last_line = b""
        try:
            with open(series[-1][1], "rb") as handle:
                for line in handle:
                    if line.strip():
                        last_line = line
        except OSError:
            return
        try:
            payload = json.loads(last_line.decode("utf-8"))
            self._seq = int(payload.get("seq", 0))
        except (ValueError, UnicodeDecodeError, TypeError):
            pass  # torn tail: keep the scanned seq so far

    def _path(self, index: int) -> str:
        return os.path.join(self.events_dir, f"{self.source}-{index:04d}.jsonl")

    def _rotate_locked(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        self._index += 1
        for index, path in self._series()[: -(self.max_files - 1) or None]:
            if index > self._index - self.max_files:
                continue
            try:
                os.unlink(path)
            except OSError:
                pass

    def _ensure_handle_locked(self):
        if self._handle is None:
            if self._index == 0:
                self._index = 1
            self._handle = open(  # noqa: SIM115 - long-lived append handle
                self._path(self._index), "a", encoding="utf-8"
            )
        return self._handle

    # ------------------------------------------------------------------

    def append(self, event: dict) -> Optional[dict]:
        """Stamp and write one event; returns the stamped record (or
        ``None`` when the write was dropped on an error)."""
        with self._lock:
            self._seq += 1
            record = {
                "schema": EVENT_SCHEMA_VERSION,
                "seq": self._seq,
                "ts": round(self.clock(), 6),
                "source": self.source,
            }
            record.update(event)
            try:
                handle = self._ensure_handle_locked()
                handle.write(
                    json.dumps(record, separators=(",", ":"), default=str)
                    + "\n"
                )
                handle.flush()
                if handle.tell() >= self.max_bytes:
                    self._rotate_locked()
            except (OSError, ValueError):
                self.write_errors += 1
                return None
        return record

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def read_events(events_dir: str) -> List[dict]:
    """Every parseable current-schema event under ``events_dir``, merged
    across writers and ordered by ``(ts, source, seq)``.

    Unparseable lines (torn tails) and foreign-schema events are
    skipped, never fatal — the reader mirrors the cache stores' "a bad
    record is a miss" rule.
    """
    events: List[dict] = []
    try:
        names = sorted(os.listdir(events_dir))
    except OSError:
        return []
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(events_dir, name), "r",
                      encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        continue
                    if (
                        isinstance(payload, dict)
                        and payload.get("schema") == EVENT_SCHEMA_VERSION
                    ):
                        events.append(payload)
        except OSError:
            continue
    events.sort(
        key=lambda e: (e.get("ts", 0.0), str(e.get("source", "")),
                       e.get("seq", 0))
    )
    return events


def iter_trace(events: List[dict], trace_id: str) -> Iterator[dict]:
    """The subset of ``events`` belonging to one trace."""
    for event in events:
        if event.get("trace_id") == trace_id:
            yield event


# ----------------------------------------------------------------------
# in-memory ring (SSE backing)
# ----------------------------------------------------------------------


class EventBus:
    """Bounded ring buffer of this replica's events, for SSE subscribers.

    ``publish`` appends an already-stamped event (the :class:`EventLog`
    seq is the cursor); ``since`` returns the buffered events after a
    cursor; ``wait`` blocks until something newer than the cursor
    arrives or the timeout elapses.  Subscribers that fall behind the
    ring's capacity simply resume from the oldest buffered event — the
    on-disk log is the lossless record, the bus is the live feed.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._events: deque = deque(maxlen=capacity)
        self._condition = threading.Condition()
        self._last_seq = 0

    @property
    def last_seq(self) -> int:
        with self._condition:
            return self._last_seq

    def publish(self, event: dict) -> None:
        seq = int(event.get("seq", 0))
        with self._condition:
            self._events.append(event)
            if seq > self._last_seq:
                self._last_seq = seq
            self._condition.notify_all()

    def since(self, cursor: int) -> List[dict]:
        with self._condition:
            return [e for e in self._events if int(e.get("seq", 0)) > cursor]

    def wait(self, cursor: int, timeout: float) -> List[dict]:
        """Events newer than ``cursor``, blocking up to ``timeout``."""
        with self._condition:
            if self._last_seq <= cursor:
                self._condition.wait(timeout)
            return [e for e in self._events if int(e.get("seq", 0)) > cursor]


# ----------------------------------------------------------------------
# span accounting helpers (shared by the report CLI and chaos checks)
# ----------------------------------------------------------------------


def span_pairs(events: List[dict]) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """``(starts, ends)`` of every span event, keyed by ``span_id``."""
    starts: Dict[str, dict] = {}
    ends: Dict[str, dict] = {}
    for event in events:
        kind = event.get("kind")
        span_id = event.get("span_id")
        if not isinstance(span_id, str):
            continue
        if kind == "span_start":
            starts[span_id] = event
        elif kind == "span_end":
            ends[span_id] = event
    return starts, ends


def unfinished_spans(events: List[dict]) -> List[dict]:
    """Span starts with no matching end (a crashed or hung operation)."""
    starts, ends = span_pairs(events)
    return [start for span_id, start in starts.items() if span_id not in ends]
