"""Structured logging for the service (``serve --log-level/--log-json``).

The service historically printed bare lines to stderr.  This module
routes them through stdlib :mod:`logging` instead: :func:`setup`
configures the ``repro`` logger hierarchy once per process with either
the classic human one-liner or a JSON formatter.  Both formatters stamp
the active trace context (:func:`repro.obs.context.current`) onto each
record, so a job's log lines can be joined to its spans by ``trace_id``
without threading ids through every call site.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional

from repro.obs import context as _context

#: Root of the service's logger hierarchy.
ROOT_LOGGER = "repro"


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, trace ids."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        active = _context.current()
        if active is not None:
            payload["trace_id"] = active.trace_id
            payload["span_id"] = active.span_id
        extra_trace = getattr(record, "trace_id", None)
        if extra_trace is not None:
            payload["trace_id"] = extra_trace
        if record.exc_info and record.exc_info[0] is not None:
            payload["error"] = record.exc_info[0].__name__
        return json.dumps(payload, separators=(",", ":"), default=str)


class TextFormatter(logging.Formatter):
    """The classic stderr one-liner, with ``[trace]`` when one is bound."""

    def format(self, record: logging.LogRecord) -> str:
        message = record.getMessage()
        active = _context.current()
        trace_id = getattr(record, "trace_id", None) or (
            active.trace_id if active is not None else None
        )
        if trace_id is not None:
            return f"{message} [trace {trace_id[:8]}]"
        return message


def setup(
    level: str = "info",
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the ``repro`` logger and return it.

    Replaces any handlers from a previous call (tests call this
    repeatedly), never touches the root logger, and leaves propagation
    off so embedding applications keep their own logging untouched.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(numeric)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_lines else TextFormatter())
    logger.addHandler(handler)
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger("service")``)."""
    if name:
        return logging.getLogger(f"{ROOT_LOGGER}.{name}")
    return logging.getLogger(ROOT_LOGGER)
