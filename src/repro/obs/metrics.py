"""The metrics registry: counters, gauges, histograms, window rates.

Every instrument is a tiny lock-guarded object created once and updated
on hot paths with one lock acquisition — no string formatting, no
allocation beyond the first call.  The registry is process-local; the
fleet-wide view is built by *merging* snapshots: counters add, gauges
take the reporter's value, histograms add bucket-wise.  Merging is
exact because every histogram of a given name uses the same **fixed
exponential bucket bounds** — a merged histogram equals the histogram
of the concatenated samples (property-tested in
``tests/test_obs_metrics.py``).

Histogram bounds default to :data:`DEFAULT_BUCKETS` (1 ms doubling up
to ~131 s), chosen to straddle everything the sweep service times:
storage appends (sub-millisecond) through whole-job walls (minutes).
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

#: Fixed exponential bucket upper bounds, in seconds: 1 ms × 2^i.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    0.001 * (2.0**i) for i in range(18)
)


class Counter:
    """Monotonically increasing value (ints or float seconds)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def int_value(self) -> int:
        """The counter as an integer (counts, not seconds)."""
        return int(round(self.value))


class Gauge:
    """A value that can go both ways (queue depth, held leases)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram over fixed exponential bounds.

    ``observe`` is O(log buckets) (a bisect); the stored counts are
    *per-bucket* (non-cumulative) — the Prometheus renderer produces
    the cumulative ``_bucket`` series on the way out.  The final
    implicit bucket is ``+Inf``.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.help = help
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def time(self) -> "_Timer":
        """``with histogram.time(): ...`` observes the block's duration."""
        return _Timer(self)

    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def to_payload(self) -> dict:
        """JSON-safe snapshot: bounds, per-bucket counts, sum, count."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` snapshot in (bucket-wise addition).

        Raises :class:`ValueError` on mismatched bounds — merging
        histograms of different shapes would silently corrupt both.
        """
        bounds = payload.get("bounds")
        counts = payload.get("counts")
        if tuple(bounds or ()) != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched bounds"
            )
        if not isinstance(counts, list) or len(counts) != len(self._counts):
            raise ValueError(f"histogram {self.name!r}: malformed counts")
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(payload.get("sum", 0.0))
            self._count += int(payload.get("count", 0))

    def merge(self, other: "Histogram") -> None:
        self.merge_payload(other.to_payload())

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile by linear interpolation inside the
        owning bucket (0 when empty; the top bound for the +Inf bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0.0
        for index, count in enumerate(counts):
            seen += count
            if seen >= rank and count:
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                lower = self.bounds[index - 1] if index > 0 else 0.0
                if index >= len(self.bounds):
                    return upper  # +Inf bucket: clamp to the top bound
                fraction = (rank - (seen - count)) / count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]


class _Timer:
    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class RateWindow:
    """Sliding-window event rate (the ``/metrics`` points/min fix).

    A long-lived replica's lifetime average flattens every burst into
    noise; this window reports *current* throughput instead.  ``record``
    appends ``(now, n)``; :meth:`per_minute` sums the events inside the
    trailing ``window`` seconds and scales by the window actually
    elapsed (a replica 10 s old reports its 10 s rate, not a 60 s
    dilution).
    """

    def __init__(
        self,
        window_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        max_samples: int = 4096,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.clock = clock
        self._samples: deque = deque(maxlen=max_samples)
        self._opened = clock()
        self._lock = threading.Lock()

    def record(self, count: int = 1) -> None:
        now = self.clock()
        with self._lock:
            self._samples.append((now, count))

    def per_minute(self) -> float:
        now = self.clock()
        cutoff = now - self.window_s
        with self._lock:
            while self._samples and self._samples[0][0] < cutoff:
                self._samples.popleft()
            total = sum(count for _, count in self._samples)
            elapsed = min(self.window_s, max(now - self._opened, 1e-9))
        if total == 0:
            return 0.0
        return round(total * 60.0 / elapsed, 2)


class MetricsRegistry:
    """Named instruments, created on first use, snapshot-able as JSON.

    One registry per reporting process (the service app owns one); the
    deeper layers receive the instruments they update, not the registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, help)
            return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:  # noqa: A002
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, help)
            return instrument

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, help, buckets
                )
            elif tuple(sorted(float(b) for b in buckets)) != instrument.bounds:
                raise ValueError(
                    f"histogram {name!r} already registered with different "
                    f"buckets"
                )
            return instrument

    # ------------------------------------------------------------------

    def counters(self) -> List[Counter]:
        with self._lock:
            return list(self._counters.values())

    def gauges(self) -> List[Gauge]:
        with self._lock:
            return list(self._gauges.values())

    def histograms(self) -> List[Histogram]:
        with self._lock:
            return list(self._histograms.values())

    def counter_values(self, prefix: str = "") -> Dict[str, int]:
        """``{suffix: int value}`` of every counter under ``prefix``.

        The bridge back to the historical ``/metrics`` JSON shape: a
        family of counters named ``points.completed`` etc. round-trips
        into the same ``{"completed": N}`` dictionaries the API always
        served (byte-compatible keys).
        """
        values: Dict[str, int] = {}
        for counter in self.counters():
            if prefix and not counter.name.startswith(prefix):
                continue
            values[counter.name[len(prefix):]] = counter.int_value
        return values

    def histogram_payloads(self) -> Dict[str, dict]:
        """Every histogram's mergeable snapshot, by name (fleet publish)."""
        return {h.name: h.to_payload() for h in self.histograms()}

    def merge_histogram_payloads(self, payloads: Iterable[Tuple[str, dict]],
                                 into: "MetricsRegistry") -> int:
        """Merge ``(name, payload)`` snapshots into ``into``; returns the
        number of payloads rejected as malformed (mismatched bounds,
        garbage counts) rather than merged."""
        errors = 0
        for name, payload in payloads:
            try:
                bounds = payload["bounds"]
                target = into.histogram(name, buckets=bounds)
                target.merge_payload(payload)
            except (KeyError, TypeError, ValueError):
                errors += 1
        return errors
