"""Opt-in cProfile hooks for the service and its worker pool.

``serve --profile-dir <dir>`` sets :data:`PROFILE_ENV` in the serving
process; worker processes inherit it through the
:class:`~concurrent.futures.ProcessPoolExecutor` fork/spawn, so the
engine's worker entry points only need to call
:func:`maybe_enable_worker` once.  Each profiled process registers an
:mod:`atexit` dump of ``<dir>/<prefix>-<pid>.pstats`` — the pool's
``shutdown(wait=True)`` on drain ends the workers cleanly, which is
what flushes their profiles.

Everything is inert unless the env var is set: the fast path is one
``os.environ.get`` per process lifetime.
"""

from __future__ import annotations

import atexit
import cProfile
import os
from typing import Optional

#: Directory to dump ``.pstats`` files into; unset means disabled.
PROFILE_ENV = "REPRO_PROFILE_DIR"

_profiler: Optional[cProfile.Profile] = None
_dump_path: Optional[str] = None


def enabled_dir() -> Optional[str]:
    """The configured profile directory, or ``None`` when disabled."""
    value = os.environ.get(PROFILE_ENV, "").strip()
    return value or None


def _dump() -> None:
    global _profiler
    if _profiler is None:
        return
    profiler, _profiler = _profiler, None
    try:
        profiler.disable()
        if _dump_path is not None:
            os.makedirs(os.path.dirname(_dump_path), exist_ok=True)
            profiler.dump_stats(_dump_path)
    except OSError:
        pass  # a failed profile dump must never fail the drain


def enable(prefix: str, directory: Optional[str] = None) -> bool:
    """Start profiling this process; returns whether profiling is on.

    Idempotent — a second call in an already-profiled process is a
    no-op (workers reused across batches hit this constantly).
    """
    global _profiler, _dump_path
    if _profiler is not None:
        return True
    directory = directory if directory is not None else enabled_dir()
    if directory is None:
        return False
    _dump_path = os.path.join(directory, f"{prefix}-{os.getpid()}.pstats")
    _profiler = cProfile.Profile()
    _profiler.enable()
    atexit.register(_dump)
    return True


def maybe_enable_worker() -> bool:
    """Worker-process entry hook: profile iff the env var is set."""
    return enable("worker")


def flush() -> None:
    """Dump and stop now (the serving process calls this on drain,
    since it outlives the request that asked for the profile)."""
    _dump()
