"""Prometheus text exposition (format 0.0.4) and a minimal parser.

:func:`render` turns a :class:`~repro.obs.metrics.MetricsRegistry` into
the classic text format: ``# HELP``/``# TYPE`` headers, counters with a
``_total`` suffix, histograms as cumulative ``_bucket{le=...}`` series
plus ``_sum``/``_count``.  Metric names are sanitized into the
Prometheus grammar and prefixed ``repro_``; every sample carries the
``replica`` label so a fleet scrape stays per-instance.

:func:`parse` is the deliberately small inverse used by the tests and
the CI ``obs`` job to *validate* what the server serves — it checks the
grammar (name syntax, label quoting, value floats, cumulative bucket
monotonicity) and returns structured samples.  It is a test instrument,
not a general client.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_name(name: str) -> str:
    """``points.completed`` → ``repro_points_completed``."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = f"_{cleaned}"
    if not cleaned.startswith("repro_"):
        cleaned = f"repro_{cleaned}"
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def render(registry: MetricsRegistry, replica: Optional[str] = None) -> str:
    """The registry as exposition text (ends with a newline)."""
    base_labels: Dict[str, str] = {}
    if replica:
        base_labels["replica"] = replica
    lines: List[str] = []

    for counter in sorted(registry.counters(), key=lambda c: c.name):
        name = sanitize_name(counter.name)
        if not name.endswith("_total"):
            name += "_total"
        if counter.help:
            lines.append(f"# HELP {name} {counter.help}")
        lines.append(f"# TYPE {name} counter")
        lines.append(
            f"{name}{_labels_text(base_labels)} "
            f"{_format_value(counter.value)}"
        )

    for gauge in sorted(registry.gauges(), key=lambda g: g.name):
        name = sanitize_name(gauge.name)
        if gauge.help:
            lines.append(f"# HELP {name} {gauge.help}")
        lines.append(f"# TYPE {name} gauge")
        lines.append(
            f"{name}{_labels_text(base_labels)} {_format_value(gauge.value)}"
        )

    for histogram in sorted(registry.histograms(), key=lambda h: h.name):
        name = sanitize_name(histogram.name)
        payload = histogram.to_payload()
        if histogram.help:
            lines.append(f"# HELP {name} {histogram.help}")
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(payload["bounds"], payload["counts"]):
            cumulative += count
            labels = dict(base_labels, le=_format_value(bound))
            lines.append(
                f"{name}_bucket{_labels_text(labels)} {cumulative}"
            )
        cumulative += payload["counts"][-1]
        labels = dict(base_labels, le="+Inf")
        lines.append(f"{name}_bucket{_labels_text(labels)} {cumulative}")
        lines.append(
            f"{name}_sum{_labels_text(base_labels)} "
            f"{_format_value(payload['sum'])}"
        )
        lines.append(
            f"{name}_count{_labels_text(base_labels)} {payload['count']}"
        )

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the validating parser (tests + CI)
# ----------------------------------------------------------------------


class Sample(NamedTuple):
    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float


class ExpositionError(ValueError):
    """The text violates the exposition grammar (with a line number)."""


def _parse_value(text: str, line_no: int) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"line {line_no}: bad sample value {text!r}")


def parse(text: str) -> Dict[str, List[Sample]]:
    """Samples grouped by metric name, validating as it goes.

    Checks: every sample line matches the grammar; every sample is
    preceded by a ``# TYPE`` for its family; histogram ``_bucket``
    series are cumulative (non-decreasing in ``le`` order) and end at
    ``le="+Inf"`` equal to ``_count``.  Raises :class:`ExpositionError`
    on the first violation.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Sample]] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped",
            ):
                raise ExpositionError(f"line {line_no}: malformed TYPE line")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(f"line {line_no}: malformed sample {raw!r}")
        name = match.group("name")
        labels_text = match.group("labels") or ""
        labels: List[Tuple[str, str]] = []
        if labels_text:
            consumed = 0
            for pair in _LABEL_RE.finditer(labels_text):
                # Junk between (or before) matches is malformed too —
                # only a separating comma and whitespace may sit there.
                gap = labels_text[consumed:pair.start()].strip()
                if gap not in ("", ","):
                    raise ExpositionError(
                        f"line {line_no}: malformed labels {labels_text!r}"
                    )
                labels.append((pair.group(1), pair.group(2)))
                consumed = pair.end()
            remainder = labels_text[consumed:].strip().strip(",")
            if remainder:
                raise ExpositionError(
                    f"line {line_no}: malformed labels {labels_text!r}"
                )
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                family = base
                break
        if family not in types:
            raise ExpositionError(
                f"line {line_no}: sample {name!r} has no TYPE header"
            )
        value = _parse_value(match.group("value"), line_no)
        samples.setdefault(family, []).append(
            Sample(name, tuple(labels), value)
        )

    for family, family_type in types.items():
        if family_type != "histogram":
            continue
        _validate_histogram(family, samples.get(family, []))
    return samples


def _validate_histogram(family: str, family_samples: List[Sample]) -> None:
    """Per label-set (minus ``le``): buckets cumulative, +Inf == _count."""
    buckets: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for sample in family_samples:
        if sample.name == f"{family}_bucket":
            rest = tuple(kv for kv in sample.labels if kv[0] != "le")
            le = dict(sample.labels).get("le")
            if le is None:
                raise ExpositionError(
                    f"{family}: bucket sample missing le label"
                )
            buckets.setdefault(rest, []).append(
                (_parse_value(le, 0), sample.value)
            )
        elif sample.name == f"{family}_count":
            counts[sample.labels] = sample.value
    for rest, series in buckets.items():
        series.sort(key=lambda pair: pair[0])
        previous = -math.inf
        for bound, value in series:
            if value < previous:
                raise ExpositionError(
                    f"{family}: bucket series not cumulative at le={bound}"
                )
            previous = value
        if not series or series[-1][0] != math.inf:
            raise ExpositionError(f"{family}: bucket series missing +Inf")
        expected = counts.get(rest)
        if expected is not None and series[-1][1] != expected:
            raise ExpositionError(
                f"{family}: +Inf bucket {series[-1][1]} != _count {expected}"
            )
