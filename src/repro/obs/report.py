"""``python -m repro.obs report`` — render an event log for humans.

Reads a ``<cache-dir>/events/`` directory, reconstructs each trace's
span tree from the ``span_start``/``span_end`` pairs, and prints:

* a **per-job latency breakdown** table — wall, queue-wait, execute and
  storage time per job, with phase timeline anomalies (unfinished
  spans) flagged;
* a **point-latency summary** — p50/p95/p99 over every
  ``point.simulate`` span duration (exact percentiles from the raw
  durations, not bucket approximations — the log keeps them all).

The same reconstruction (:func:`build_job_reports`) backs the chaos
timeline checks and the CI ``obs`` job, so "the CLI's view" and "what
CI asserts" can't drift apart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.events import read_events, span_pairs

#: Span names summed into the breakdown columns.
_STORAGE_SPANS = ("storage.append", "storage.compact")


@dataclass
class SpanRecord:
    """One completed (or dangling) span, joined from its event pair."""

    name: str
    trace_id: str
    span_id: str
    parent_span_id: Optional[str]
    started_ts: float
    duration_s: Optional[float]  # None while unfinished
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.duration_s is not None


@dataclass
class JobReport:
    """Everything the breakdown table needs about one job's trace."""

    job_id: str
    trace_id: str
    wall_s: Optional[float] = None
    queue_wait_s: float = 0.0
    execute_s: float = 0.0
    lease_hold_s: float = 0.0
    storage_s: float = 0.0
    points: int = 0
    phases: List[str] = field(default_factory=list)
    unfinished: List[str] = field(default_factory=list)


_META_KEYS = frozenset(
    (
        "schema", "seq", "ts", "source", "kind", "span", "trace_id",
        "span_id", "parent_span_id", "duration_s", "error",
    )
)


def collect_spans(events: List[dict]) -> List[SpanRecord]:
    """Join ``span_start``/``span_end`` pairs into :class:`SpanRecord`s
    (unfinished starts are kept, with ``duration_s=None``)."""
    starts, ends = span_pairs(events)
    spans: List[SpanRecord] = []
    for span_id, start in starts.items():
        end = ends.get(span_id)
        attrs = {
            key: value for key, value in start.items()
            if key not in _META_KEYS
        }
        spans.append(
            SpanRecord(
                name=str(start.get("span", "?")),
                trace_id=str(start.get("trace_id", "")),
                span_id=span_id,
                parent_span_id=start.get("parent_span_id"),
                started_ts=float(start.get("ts", 0.0)),
                duration_s=(
                    float(end["duration_s"])
                    if end is not None and end.get("duration_s") is not None
                    else None
                ),
                attrs=attrs,
            )
        )
    spans.sort(key=lambda s: s.started_ts)
    return spans


def build_job_reports(events: List[dict]) -> List[JobReport]:
    """One :class:`JobReport` per root ``job`` span, in start order."""
    spans = collect_spans(events)
    by_trace: Dict[str, List[SpanRecord]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    phases: Dict[str, List[str]] = {}
    for event in events:
        if event.get("kind") == "job_phase":
            job_id = str(event.get("job_id", "?"))
            phases.setdefault(job_id, []).append(str(event.get("phase", "?")))

    reports: List[JobReport] = []
    for span in spans:
        if span.name != "job":
            continue
        report = JobReport(
            job_id=str(span.attrs.get("job_id", "?")),
            trace_id=span.trace_id,
            wall_s=span.duration_s,
        )
        for member in by_trace.get(span.trace_id, ()):
            if not member.finished:
                if member.name != "job" or member.span_id != span.span_id:
                    report.unfinished.append(member.name)
                continue
            if member.name == "queue.wait":
                report.queue_wait_s += member.duration_s
            elif member.name == "execute":
                report.execute_s += member.duration_s
            elif member.name == "lease.hold":
                report.lease_hold_s += member.duration_s
            elif member.name in _STORAGE_SPANS:
                report.storage_s += member.duration_s
            elif member.name == "point.simulate":
                report.points += 1
        if not span.finished:
            report.unfinished.append("job")
        report.phases = phases.get(report.job_id, [])
        reports.append(report)
    return reports


def point_durations(events: List[dict]) -> List[float]:
    """Every finished ``point.simulate`` duration, in seconds."""
    return [
        span.duration_s
        for span in collect_spans(events)
        if span.name == "point.simulate" and span.finished
    ]


def exact_percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile over raw samples (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _fmt_s(value: Optional[float]) -> str:
    if value is None:
        return "?"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_report(events_dir: str) -> str:
    """The full human-readable report for one events directory."""
    events = read_events(events_dir)
    if not events:
        return f"no events under {events_dir}\n"
    reports = build_job_reports(events)
    lines: List[str] = []
    lines.append(f"{len(events)} events, {len(reports)} jobs")
    lines.append("")
    if reports:
        header = (
            f"{'job':<14} {'wall':>9} {'queue':>9} {'execute':>9} "
            f"{'lease':>9} {'storage':>9} {'points':>6}  phases"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for report in reports:
            phase_text = " > ".join(report.phases) if report.phases else "-"
            if report.unfinished:
                phase_text += f"  [unfinished: {', '.join(report.unfinished)}]"
            lines.append(
                f"{report.job_id[:14]:<14} {_fmt_s(report.wall_s):>9} "
                f"{_fmt_s(report.queue_wait_s):>9} "
                f"{_fmt_s(report.execute_s):>9} "
                f"{_fmt_s(report.lease_hold_s):>9} "
                f"{_fmt_s(report.storage_s):>9} "
                f"{report.points:>6}  {phase_text}"
            )
        lines.append("")
    durations = point_durations(events)
    lines.append(f"point.simulate latency ({len(durations)} samples)")
    for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        lines.append(f"  {label}: {_fmt_s(exact_percentile(durations, q))}")
    return "\n".join(lines) + "\n"
