"""The :class:`Telemetry` handle: one registry + event log + bus.

The service app owns exactly one ``Telemetry`` and threads it (or the
individual instruments it creates) into the layers below — there is no
process-global, because tests and ``serve --replicas`` run several apps
in one process.  Every emission path is guarded so a missing or broken
telemetry never breaks the work it observes.

Spans come in two shapes:

* ``with telemetry.span("execute", context, job_id=...) :`` — the
  common case, a timed block on one thread.  Emits ``span_start`` /
  ``span_end`` (with ``duration_s`` from ``perf_counter``) and binds
  the span's context for the block, so nested spans and the storage
  observer pick it up.
* :meth:`span_start` / :meth:`span_end` — explicit halves for spans
  whose ends live on another thread (queue-wait starts at submission,
  ends in the executor).

The span taxonomy (see ``docs/observability.md``)::

    job                      root span, one per submitted job
    ├─ queue.wait            admission → executor pickup
    ├─ lease.hold            lease acquire → release
    └─ execute               the engine run
       ├─ trace.record       one trace-record worker call
       ├─ trace.replay       one replay batch
       ├─ point.simulate     one point (attr: strategy)
       ├─ storage.append     one sharded-store append
       └─ storage.compact    one shard compaction
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator, Optional

from repro.obs import context as _context
from repro.obs.context import TraceContext
from repro.obs.events import EventBus, EventLog
from repro.obs.metrics import MetricsRegistry


class Telemetry:
    """One replica's observability bundle.

    ``registry`` is always present; ``log`` and ``bus`` are optional
    (the report CLI's tests build log-only telemetry, the engine's unit
    tests registry-only).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        log: Optional[EventLog] = None,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.log = log
        self.bus = bus

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def emit(self, kind: str, **fields) -> Optional[dict]:
        """Append one event to the log and mirror it onto the bus.

        Fields equal to ``None`` are dropped (keeps the JSONL lean);
        the active trace context is stamped on when the caller didn't
        pass ``trace_id`` explicitly.
        """
        event = {"kind": kind}
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        if "trace_id" not in event:
            active = _context.current()
            if active is not None:
                event["trace_id"] = active.trace_id
        if self.log is None:
            return None
        record = self.log.append(event)
        if record is not None and self.bus is not None:
            self.bus.publish(record)
        return record

    def phase(self, job_id: str, phase: str,
              trace: Optional[TraceContext] = None, **fields) -> None:
        """A job phase transition (queued → leased → running → …)."""
        self.emit(
            "job_phase",
            job_id=job_id,
            phase=phase,
            trace_id=trace.trace_id if trace is not None else None,
            **fields,
        )

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def span_start(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        **attrs,
    ) -> TraceContext:
        """Open a span and emit ``span_start``; returns the span's
        context (pass it to :meth:`span_end`, or to children as their
        parent).  With no parent, the active context is used; with no
        active context either, a fresh trace is minted so orphaned
        operations still produce well-formed pairs."""
        if parent is None:
            parent = _context.current()
        span = parent.child() if parent is not None else _context.new_trace()
        self.emit(
            "span_start",
            span=name,
            trace_id=span.trace_id,
            span_id=span.span_id,
            parent_span_id=parent.span_id if parent is not None else None,
            **attrs,
        )
        return span

    def span_end(
        self,
        name: str,
        span: TraceContext,
        started: Optional[float] = None,
        duration_s: Optional[float] = None,
        **attrs,
    ) -> None:
        """Close a span.  ``started`` is a ``perf_counter`` timestamp
        (preferred — the duration is computed here); callers that timed
        themselves pass ``duration_s`` directly."""
        if duration_s is None and started is not None:
            duration_s = time.perf_counter() - started
        self.emit(
            "span_end",
            span=name,
            trace_id=span.trace_id,
            span_id=span.span_id,
            duration_s=round(duration_s, 6) if duration_s is not None else None,
            **attrs,
        )

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        histogram: Optional[str] = None,
        **attrs,
    ) -> Iterator[TraceContext]:
        """Emit a ``span_start``/``span_end`` pair around the block and
        bind the span's context inside it.  With ``histogram=<name>``
        the duration is also observed into that registry histogram."""
        span = self.span_start(name, parent, **attrs)
        started = time.perf_counter()
        error: Optional[str] = None
        try:
            with _context.bind(span):
                yield span
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            duration = time.perf_counter() - started
            if histogram is not None:
                self.registry.histogram(histogram).observe(duration)
            # The start's attrs ride the end too, so consumers filtering
            # on one attribute (e.g. job_id) need only span_end events.
            self.span_end(name, span, duration_s=duration, error=error,
                          **attrs)

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self.log is not None:
            self.log.close()
