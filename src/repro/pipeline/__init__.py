"""Cycle-level processor model tying all substrates together."""

from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import SimulationStats, OccupancySample
from repro.pipeline.processor import Processor, simulate

__all__ = [
    "ProcessorConfig",
    "SimulationStats",
    "OccupancySample",
    "Processor",
    "simulate",
]
