"""Processor configuration (Table 1 of the paper).

The defaults reproduce Table 1: 8-wide fetch (up to one taken branch),
64KB 2-way caches with 64-byte lines, gshare with 64K entries, a
128-entry instruction window, the functional unit mix and latencies, a
64-entry load/store queue with forwarding, 8-way out-of-order issue,
128 integer + 128 FP physical registers, and an 8-wide commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.execute.functional_units import FunctionalUnitConfig
from repro.memsys.cache import CacheConfig


@dataclass(frozen=True)
class ProcessorConfig:
    """Microarchitectural parameters of the simulated processor."""

    fetch_width: int = 8
    decode_width: int = 8
    issue_width: int = 8
    commit_width: int = 8

    instruction_window: int = 128
    rob_size: int = 128
    lsq_size: int = 64

    num_int_physical: int = 128
    num_fp_physical: int = 128

    branch_predictor_entries: int = 64 * 1024
    btb_entries: int = 4096

    icache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024,
        associativity=2,
        line_bytes=64,
        hit_latency=1,
        miss_latency=6,
        dirty_miss_latency=6,
        writeback=False,
    ))
    dcache: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=64 * 1024,
        associativity=2,
        line_bytes=64,
        hit_latency=1,
        miss_latency=6,
        dirty_miss_latency=8,
        writeback=True,
        max_outstanding_misses=16,
    ))

    functional_units: FunctionalUnitConfig = field(default_factory=FunctionalUnitConfig)

    #: Maximum number of committed instructions before the run stops.
    max_instructions: int = 20_000
    #: Hard cap on simulated cycles (guards against livelock bugs).
    max_cycles: int | None = None
    #: Collect the per-cycle register occupancy distributions of Figure 3
    #: (adds simulation time; off by default).
    collect_occupancy: bool = False
    #: Size of the fetch/decode buffer between fetch and rename.
    fetch_buffer_size: int = 16

    def __post_init__(self) -> None:
        positive_fields = (
            "fetch_width", "decode_width", "issue_width", "commit_width",
            "instruction_window", "rob_size", "lsq_size",
            "num_int_physical", "num_fp_physical",
            "max_instructions", "fetch_buffer_size",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise ConfigurationError("max_cycles must be positive or None")

    def with_overrides(self, **overrides) -> "ProcessorConfig":
        """Return a copy with some fields replaced (dataclasses.replace)."""
        from dataclasses import replace

        return replace(self, **overrides)

    @property
    def effective_max_cycles(self) -> int:
        """Cycle cap actually used by the simulator."""
        if self.max_cycles is not None:
            return self.max_cycles
        # Even an IPC of 0.02 terminates; this only guards against livelock.
        return 50 * self.max_instructions + 10_000
