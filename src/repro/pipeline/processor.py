"""Cycle-level model of a dynamically scheduled superscalar processor.

The pipeline follows the paper's 6-stage structure (fetch, decode/rename,
read, execute, write-back, commit); the read stage takes ``read_stages``
cycles as dictated by the register file architecture under study, and
dependent-instruction timing honours the number of bypass levels the
architecture implements.

The processor is *stream driven*: it consumes a dynamic instruction
stream (correct path only) and models timing.  Branch mispredictions
therefore stall fetch from the mispredicted branch until it resolves,
charging the full front-end refill penalty, which is the standard
trace-driven modelling approach.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.execute.bypass import BypassNetwork
from repro.execute.functional_units import FunctionalUnitPool
from repro.execute.issue_queue import IssueQueue, IssueQueueEntry
from repro.execute.rob import ReorderBuffer
from repro.execute.scoreboard import ValueScoreboard
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchedInstruction, FetchUnit
from repro.frontend.gshare import GSharePredictor
from repro.isa.instruction import DynamicInstruction, RegisterClass
from repro.isa.opcodes import OpClass
from repro.memsys.cache import CacheModel
from repro.memsys.lsq import LoadStoreQueue
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import OccupancySample, SimulationStats
from repro.regfile.base import OperandAccess, OperandSource, RegisterFileModel
from repro.rename.renamer import PhysicalRegister, RenamedInstruction, Renamer


@dataclass
class _Completion:
    """An instruction scheduled to complete (write back) at a given cycle."""

    renamed: RenamedInstruction
    ex_end_cycle: int
    fetched: Optional[FetchedInstruction]


class Processor:
    """One simulated processor instance (one workload, one architecture)."""

    def __init__(
        self,
        workload: Iterable[DynamicInstruction],
        regfile_factory: Callable[[], RegisterFileModel],
        config: Optional[ProcessorConfig] = None,
        benchmark_name: str = "workload",
    ) -> None:
        self.config = config or ProcessorConfig()
        self.benchmark_name = benchmark_name

        self._regfiles: Dict[RegisterClass, RegisterFileModel] = {
            RegisterClass.INT: regfile_factory(),
            RegisterClass.FP: regfile_factory(),
        }
        int_rf = self._regfiles[RegisterClass.INT]
        fp_rf = self._regfiles[RegisterClass.FP]
        if (int_rf.read_stages, int_rf.bypass_levels) != (fp_rf.read_stages, fp_rf.bypass_levels):
            raise ConfigurationError(
                "integer and FP register files must share the same timing"
            )
        self.read_stages = int_rf.read_stages
        self.bypass = BypassNetwork(int_rf.read_stages, int_rf.bypass_levels)

        self.scoreboard = ValueScoreboard()
        self.renamer = Renamer(self.config.num_int_physical, self.config.num_fp_physical)
        self._seed_architected_registers()

        self.window = IssueQueue(self.config.instruction_window, self.scoreboard, self.bypass)
        self.rob = ReorderBuffer(self.config.rob_size)
        self.lsq = LoadStoreQueue(self.config.lsq_size)
        self.fu_pool = FunctionalUnitPool(self.config.functional_units)

        self.icache = CacheModel(self.config.icache, name="icache")
        self.dcache = CacheModel(self.config.dcache, name="dcache")
        self.predictor = GSharePredictor(self.config.branch_predictor_entries)
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.fetch_unit = FetchUnit(
            iter(workload), self.icache, self.predictor, self.btb,
            width=self.config.fetch_width,
        )

        self._decode_queue: deque[FetchedInstruction] = deque()
        self._completions: Dict[int, List[_Completion]] = {}

        self.stats = SimulationStats(
            benchmark=benchmark_name,
            architecture=int_rf.describe(),
        )

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------

    def _seed_architected_registers(self) -> None:
        """The initial logical→physical mappings hold architected values."""
        from repro.isa.instruction import INT_LOGICAL_REGISTERS, FP_LOGICAL_REGISTERS

        for logical in INT_LOGICAL_REGISTERS + FP_LOGICAL_REGISTERS:
            physical = self.renamer.current_mapping(logical)
            self.scoreboard.seed_architected(physical)

    def _regfile(self, register: PhysicalRegister) -> RegisterFileModel:
        return self._regfiles[register.reg_class]

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationStats:
        """Run the simulation to completion and return the statistics."""
        cycle = 0
        max_cycles = self.config.effective_max_cycles
        while True:
            if self.stats.committed_instructions >= self.config.max_instructions:
                break
            if (
                self.fetch_unit.exhausted
                and not self._decode_queue
                and self.rob.empty
            ):
                break
            if cycle > max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({self.stats.committed_instructions} instructions committed); "
                    "likely a livelock in the pipeline model"
                )

            for regfile in self._regfiles.values():
                regfile.begin_cycle(cycle)
            self.fu_pool.begin_cycle(cycle)

            self._commit_stage(cycle)
            self._writeback_stage(cycle)
            self._issue_stage(cycle)
            self._dispatch_stage(cycle)
            self._fetch_stage(cycle)

            if self.config.collect_occupancy:
                self._sample_occupancy(cycle)

            cycle += 1

        self.stats.cycles = cycle
        self._finalize_statistics()
        return self.stats

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit_stage(self, cycle: int) -> None:
        for rob_entry in self.rob.committable(self.config.commit_width, cycle):
            if self.stats.committed_instructions >= self.config.max_instructions:
                return
            self.rob.commit(rob_entry.seq)
            renamed = rob_entry.renamed
            released = self.renamer.commit(renamed)
            if released is not None and self.scoreboard.contains(released):
                state = self.scoreboard.get(released)
                total_reads = (
                    state.reads_from_bypass + state.reads_from_upper + state.reads_from_lower
                )
                self.stats.record_value_reads(total_reads)
                self.scoreboard.release(released)
                self._regfile(released).release(released)
            instruction = renamed.instruction
            if instruction.is_store:
                self.dcache.access(instruction.mem_address or 0, is_write=True)
                self.lsq.release(instruction.seq)
            elif instruction.is_load:
                self.lsq.release(instruction.seq)
            self.stats.committed_instructions += 1

    # ------------------------------------------------------------------
    # write-back / completion
    # ------------------------------------------------------------------

    def _writeback_stage(self, cycle: int) -> None:
        completions = self._completions.pop(cycle, [])
        for completion in completions:
            renamed = completion.renamed
            instruction = renamed.instruction
            if renamed.dest is not None:
                state = self.scoreboard.get(renamed.dest)
                regfile = self._regfile(renamed.dest)
                rf_ready = regfile.writeback(renamed.dest, state, cycle, self.window)
                self.scoreboard.set_rf_ready(renamed.dest, rf_ready)
            self.rob.mark_completed(instruction.seq, cycle)

            if instruction.is_branch and completion.fetched is not None:
                fetched = completion.fetched
                self.predictor.update(
                    instruction.pc,
                    instruction.branch_taken,
                    fetched.history_checkpoint,
                    fetched.predicted_taken,
                )
                if fetched.mispredicted:
                    self.stats.branch_mispredictions += 1
                self.fetch_unit.branch_resolved(instruction.seq, completion.ex_end_cycle)

    # ------------------------------------------------------------------
    # issue (wakeup / select / operand read planning)
    # ------------------------------------------------------------------

    def _issue_stage(self, cycle: int) -> None:
        issued = 0
        for entry in self.window.schedulable(cycle):
            if issued >= self.config.issue_width:
                break
            if self._try_issue(entry, cycle):
                issued += 1

    def _try_issue(self, entry: IssueQueueEntry, cycle: int) -> bool:
        instruction = entry.renamed.instruction
        op_class = instruction.op_class

        if instruction.is_load and not self.lsq.load_may_issue(instruction.seq):
            self.window.defer(entry, cycle + 1)
            return False

        accesses_by_class, missing, deferred = self._plan_operands(entry, cycle)
        if deferred:
            return False
        if missing:
            self._handle_upper_level_misses(entry, missing, accesses_by_class, cycle)
            return False

        if not self.fu_pool.can_issue(op_class, cycle):
            self.stats.issue_stalls_fu += 1
            return False
        for reg_class, accesses in accesses_by_class.items():
            if accesses and not self._regfiles[reg_class].can_claim_reads(accesses):
                self.stats.issue_stalls_ports += 1
                return False

        self._do_issue(entry, accesses_by_class, cycle)
        return True

    def _plan_operands(
        self, entry: IssueQueueEntry, cycle: int
    ) -> tuple[Dict[RegisterClass, List[OperandAccess]], List[PhysicalRegister], bool]:
        accesses_by_class: Dict[RegisterClass, List[OperandAccess]] = {
            RegisterClass.INT: [],
            RegisterClass.FP: [],
        }
        missing: List[PhysicalRegister] = []
        for register in entry.renamed.sources:
            state = self.scoreboard.get(register)
            access = self._regfile(register).plan_operand_read(register, state, cycle)
            if access.source is OperandSource.NOT_READY:
                retry = access.retry_cycle if access.retry_cycle is not None else cycle + 1
                self.window.defer(entry, max(cycle + 1, retry))
                return accesses_by_class, [], True
            if access.source is OperandSource.MISS:
                missing.append(register)
                continue
            accesses_by_class[register.reg_class].append(access)
        return accesses_by_class, missing, False

    def _handle_upper_level_misses(
        self,
        entry: IssueQueueEntry,
        missing: List[PhysicalRegister],
        accesses_by_class: Dict[RegisterClass, List[OperandAccess]],
        cycle: int,
    ) -> None:
        """Fetch-on-demand: bring missing operands up over the buses.

        The operands of the oldest waiting instruction are pinned in the
        uppermost level until they are read, so that even a tiny upper bank
        cannot thrash the two operands of one instruction against each
        other and livelock the pipeline.
        """
        self.stats.issue_stalls_fill += 1
        is_oldest = self.window.oldest_seq() == entry.seq
        if is_oldest:
            for accesses in accesses_by_class.values():
                for access in accesses:
                    if access.source is OperandSource.FILE:
                        self._regfile(access.register).pin_operand(access.register)
        latest_completion: Optional[int] = None
        for register in missing:
            state = self.scoreboard.get(register)
            completion = self._regfile(register).request_fill(
                register, state, cycle, pin=is_oldest
            )
            if completion is not None:
                latest_completion = max(latest_completion or 0, completion)
        if latest_completion is not None:
            self.window.defer(entry, latest_completion)
        else:
            self.window.defer(entry, cycle + 1)

    def _do_issue(
        self,
        entry: IssueQueueEntry,
        accesses_by_class: Dict[RegisterClass, List[OperandAccess]],
        cycle: int,
    ) -> None:
        instruction = entry.renamed.instruction
        for reg_class, accesses in accesses_by_class.items():
            if not accesses:
                continue
            self._regfiles[reg_class].claim_reads(accesses)
            for access in accesses:
                if access.source is OperandSource.BYPASS:
                    self.scoreboard.record_read(access.register, "bypass")
                    self.bypass.record_bypass_read()
                    self.stats.operands_from_bypass += 1
                else:
                    self.scoreboard.record_read(access.register, "upper")
                    self.bypass.record_regfile_read()
                    self.stats.operands_from_file += 1

        latency = self._execution_latency(instruction)
        self.fu_pool.issue(instruction.op_class, cycle, latency)

        ex_start = cycle + self.read_stages
        ex_end = ex_start + latency - 1

        self.window.mark_issued(entry, cycle)
        self.rob.mark_issued(instruction.seq, cycle)

        if instruction.op_class.is_memory and instruction.mem_address is not None:
            self.lsq.set_address(instruction.seq, instruction.mem_address)

        if entry.renamed.dest is not None:
            self.scoreboard.set_execution_end(entry.renamed.dest, ex_end)
            self.window.wakeup(entry.renamed.dest, ex_end)
            self._regfile(entry.renamed.dest).on_issue(
                entry, cycle, self.window, self.scoreboard
            )

        fetched = entry.renamed.annotations.get("fetched")
        completion = _Completion(renamed=entry.renamed, ex_end_cycle=ex_end, fetched=fetched)
        self._completions.setdefault(ex_end + 1, []).append(completion)

    def _execution_latency(self, instruction: DynamicInstruction) -> int:
        latency = instruction.latency or 1
        if instruction.op_class is OpClass.LOAD:
            address = instruction.mem_address or 0
            forwarding = self.lsq.forwarding_store(instruction.seq, address)
            if forwarding is not None:
                return 2  # address generation + forward from the store queue
            access = self.dcache.access(address)
            return 1 + access.latency
        if instruction.op_class is OpClass.STORE:
            return 1  # address generation; data is written at commit
        return latency

    # ------------------------------------------------------------------
    # decode / rename / dispatch
    # ------------------------------------------------------------------

    def _dispatch_stage(self, cycle: int) -> None:
        dispatched = 0
        while self._decode_queue and dispatched < self.config.decode_width:
            fetched = self._decode_queue[0]
            if fetched.fetch_cycle >= cycle:
                break  # still in the decode stage
            instruction = fetched.instruction
            if self.rob.full:
                self.stats.dispatch_stalls_rob += 1
                break
            if self.window.full:
                self.stats.dispatch_stalls_window += 1
                break
            if instruction.op_class.is_memory and self.lsq.full:
                self.stats.dispatch_stalls_lsq += 1
                break
            if not self.renamer.can_rename(instruction):
                self.stats.dispatch_stalls_registers += 1
                break

            self._decode_queue.popleft()
            renamed = self.renamer.rename(instruction)
            renamed.annotations["fetched"] = fetched
            if renamed.dest is not None:
                self.scoreboard.allocate(renamed.dest, instruction.seq)
            self.rob.dispatch(renamed, cycle)
            self.window.dispatch(renamed, cycle)
            if instruction.op_class.is_memory:
                self.lsq.insert(instruction.seq, instruction.is_store)
                if instruction.is_store and instruction.mem_address is not None:
                    # Store addresses are produced by the address-generation
                    # part of the store, which does not wait for the store
                    # data; the stream already carries the effective
                    # address, so younger loads are only delayed by real
                    # same-address conflicts (store→load forwarding).
                    self.lsq.set_address(instruction.seq, instruction.mem_address)
            dispatched += 1

        self.stats.max_window_occupancy = max(
            self.stats.max_window_occupancy, self.window.occupancy()
        )
        self.stats.max_rob_occupancy = max(self.stats.max_rob_occupancy, self.rob.occupancy())
        self.stats.max_int_registers_in_use = max(
            self.stats.max_int_registers_in_use,
            self.renamer.in_use_registers(RegisterClass.INT),
        )
        self.stats.max_fp_registers_in_use = max(
            self.stats.max_fp_registers_in_use,
            self.renamer.in_use_registers(RegisterClass.FP),
        )

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_stage(self, cycle: int) -> None:
        if len(self._decode_queue) >= self.config.fetch_buffer_size:
            return
        if self.fetch_unit.exhausted:
            return
        group = self.fetch_unit.fetch(cycle)
        for fetched in group:
            self._decode_queue.append(fetched)
            if fetched.instruction.is_branch:
                self.stats.branch_predictions += 1
        self.stats.fetched_instructions += len(group)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _sample_occupancy(self, cycle: int) -> None:
        needed: set[PhysicalRegister] = set()
        ready: set[PhysicalRegister] = set()
        for entry in self.window.entries():
            produced_sources = []
            all_produced = True
            for register in entry.renamed.sources:
                state = self.scoreboard.get(register)
                if state.ex_end_cycle is not None and state.ex_end_cycle <= cycle:
                    produced_sources.append(register)
                else:
                    all_produced = False
            needed.update(produced_sources)
            if all_produced and produced_sources:
                ready.update(produced_sources)
        self.stats.record_occupancy(OccupancySample(len(needed), len(ready)))

    def _finalize_statistics(self) -> None:
        self.stats.icache_hits = self.icache.hits
        self.stats.icache_misses = self.icache.misses
        self.stats.dcache_hits = self.dcache.hits
        self.stats.dcache_misses = self.dcache.misses
        self.stats.loads_forwarded = self.lsq.forwarded_loads
        regfile_stats: Dict[str, int] = {}
        for reg_class, regfile in self._regfiles.items():
            for key, value in regfile.statistics().items():
                regfile_stats[f"{reg_class.value}_{key}"] = value
        self.stats.regfile_statistics = regfile_stats


def simulate(
    workload: Iterable[DynamicInstruction],
    regfile_factory: Callable[[], RegisterFileModel],
    config: Optional[ProcessorConfig] = None,
    benchmark_name: str = "workload",
) -> SimulationStats:
    """Convenience wrapper: build a :class:`Processor`, run it, return stats."""
    processor = Processor(workload, regfile_factory, config, benchmark_name)
    return processor.run()
