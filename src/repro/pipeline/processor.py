"""Cycle-level model of a dynamically scheduled superscalar processor.

The pipeline follows the paper's 6-stage structure (fetch, decode/rename,
read, execute, write-back, commit); the read stage takes ``read_stages``
cycles as dictated by the register file architecture under study, and
dependent-instruction timing honours the number of bypass levels the
architecture implements.

The processor is *stream driven*: it consumes a dynamic instruction
stream (correct path only) and models timing.  Branch mispredictions
therefore stall fetch from the mispredicted branch until it resolves,
charging the full front-end refill penalty, which is the standard
trace-driven modelling approach.

Implementation note: ``run`` is the hottest loop of the repository — the
whole experiment harness is bounded by it — so the stage methods trade a
little indirection for speed: collaborator dictionaries that are never
rebound (issue window entries, ROB entries, scoreboard states) are read
directly, operand planning reuses preallocated per-class access lists
instead of building dictionaries, and stages are skipped outright on the
cycles where their input queues are provably empty.  Every change here is
guarded by the golden-stats parity tests (``tests/test_golden_stats.py``):
optimizations must leave ``SimulationStats`` bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.execute.bypass import BypassNetwork
from repro.execute.functional_units import FunctionalUnitPool
from repro.execute.issue_queue import IssueQueue, IssueQueueEntry
from repro.execute.rob import ReorderBuffer, ROBEntry
from repro.execute.scoreboard import ValueScoreboard
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchedInstruction, FetchUnit
from repro.frontend.gshare import GSharePredictor
from repro.isa.instruction import DynamicInstruction, RegisterClass
from repro.isa.opcodes import OpClass
from repro.memsys.cache import CacheModel
from repro.memsys.lsq import LoadStoreQueue
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.stats import OccupancySample, SimulationStats
from repro.regfile.base import OperandAccess, OperandSource, RegisterFileModel
from repro.rename.renamer import PhysicalRegister, Renamer


# A completion (write back scheduled for a given cycle) is a plain
# ``(renamed, ex_end_cycle, fetched)`` tuple: one is built per issued
# instruction and unpacked once at write-back, so a class adds nothing
# but constructor overhead.


class Processor:
    """One simulated processor instance (one workload, one architecture)."""

    def __init__(
        self,
        workload: Optional[Iterable[DynamicInstruction]],
        regfile_factory: Callable[[], RegisterFileModel],
        config: Optional[ProcessorConfig] = None,
        benchmark_name: str = "workload",
        commit_observer=None,
        frontend=None,
    ) -> None:
        self.config = config or ProcessorConfig()
        self.benchmark_name = benchmark_name
        # Optional commit-stream observer (see repro.validate.observer).
        # It is read-only — attaching one must leave every statistic
        # bit-identical — and costs one None check per commit when absent.
        self.commit_observer = commit_observer

        self._regfiles: Dict[RegisterClass, RegisterFileModel] = {
            RegisterClass.INT: regfile_factory(),
            RegisterClass.FP: regfile_factory(),
        }
        int_rf = self._regfiles[RegisterClass.INT]
        fp_rf = self._regfiles[RegisterClass.FP]
        if (int_rf.read_stages, int_rf.bypass_levels) != (fp_rf.read_stages, fp_rf.bypass_levels):
            raise ConfigurationError(
                "integer and FP register files must share the same timing"
            )
        self._int_rf = int_rf
        self._fp_rf = fp_rf
        self.read_stages = int_rf.read_stages
        self.bypass = BypassNetwork(int_rf.read_stages, int_rf.bypass_levels)

        self.scoreboard = ValueScoreboard()
        self.renamer = Renamer(self.config.num_int_physical, self.config.num_fp_physical)
        self._seed_architected_registers()

        self.window = IssueQueue(
            self.config.instruction_window, self.scoreboard, self.bypass,
            track_consumers=int_rf.needs_consumer_index,
        )
        self.rob = ReorderBuffer(self.config.rob_size)
        self.lsq = LoadStoreQueue(self.config.lsq_size)
        self.fu_pool = FunctionalUnitPool(self.config.functional_units)

        self.dcache = CacheModel(self.config.dcache, name="dcache")
        if frontend is not None:
            # The frontend-source seam: anything implementing the protocol
            # of :class:`~repro.frontend.fetch.FetchUnit` (``exhausted``,
            # ``fetch_into``, ``on_branch_writeback``, ``icache_hits`` /
            # ``icache_misses``) can drive the pipeline — notably
            # :class:`repro.trace.TraceReplayer`, which replays a recorded
            # decoded stream in place of live fetch.
            self.icache = None
            self.predictor = None
            self.btb = None
            self.fetch_unit = frontend
        else:
            if workload is None:
                raise ConfigurationError(
                    "a workload stream is required unless a frontend is given"
                )
            self.icache = CacheModel(self.config.icache, name="icache")
            self.predictor = GSharePredictor(self.config.branch_predictor_entries)
            self.btb = BranchTargetBuffer(self.config.btb_entries)
            self.fetch_unit = FetchUnit(
                iter(workload), self.icache, self.predictor, self.btb,
                width=self.config.fetch_width,
            )

        self._decode_queue: deque[FetchedInstruction] = deque()
        # cycle -> [(renamed, ex_end_cycle, fetched), ...]
        self._completions: Dict[int, List[tuple]] = {}

        # Collaborator dictionaries that are mutated in place and never
        # rebound (scoreboard states, ROB entries), plus reusable operand
        # planning slots: one issue attempt fills these in place instead of
        # allocating a per-attempt {register class -> accesses} dictionary.
        self._sb_states = self.scoreboard._states
        self._rob_entries = self.rob._entries
        self._int_accesses: List[OperandAccess] = []
        self._fp_accesses: List[OperandAccess] = []
        self._missing_operands: List[OperandAccess] = []

        self.stats = SimulationStats(
            benchmark=benchmark_name,
            architecture=int_rf.describe(),
        )

    # ------------------------------------------------------------------
    # setup helpers
    # ------------------------------------------------------------------

    def _seed_architected_registers(self) -> None:
        """The initial logical→physical mappings hold architected values."""
        from repro.isa.instruction import INT_LOGICAL_REGISTERS, FP_LOGICAL_REGISTERS

        for logical in INT_LOGICAL_REGISTERS + FP_LOGICAL_REGISTERS:
            physical = self.renamer.current_mapping(logical)
            self.scoreboard.seed_architected(physical)

    def _regfile(self, register: PhysicalRegister) -> RegisterFileModel:
        return self._int_rf if register.reg_class is RegisterClass.INT else self._fp_rf

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> SimulationStats:
        """Run the simulation to completion and return the statistics."""
        config = self.config
        stats = self.stats
        max_cycles = config.effective_max_cycles
        max_instructions = config.max_instructions
        fetch_unit = self.fetch_unit
        decode_queue = self._decode_queue
        completions = self._completions
        # Collaborator dictionaries; both are mutated in place and never
        # rebound, so the emptiness checks below stay valid.
        rob_entries = self._rob_entries
        window_entries = self.window._entries
        int_begin = self._int_rf.begin_cycle
        fp_begin = self._fp_rf.begin_cycle
        fu_begin = self.fu_pool.begin_cycle
        commit_stage = self._commit_stage
        writeback_stage = self._writeback_stage
        issue_stage = self._issue_stage
        dispatch_stage = self._dispatch_stage
        fetch_stage = self._fetch_stage
        # Occupancy sampling is resolved once, outside the loop: when it
        # is disabled (the default) the per-cycle cost is literally zero.
        sample_occupancy = (
            self._sample_occupancy if config.collect_occupancy else None
        )

        # The termination conditions are evaluated exactly once per
        # simulated cycle, after that cycle's work: the final loop pass
        # can therefore not inflate ``stats.cycles``, which ends up being
        # exactly the number of cycles whose stages ran.
        cycle = 0
        while True:
            if cycle > max_cycles:
                raise SimulationError(
                    f"simulation exceeded {max_cycles} cycles "
                    f"({stats.committed_instructions} instructions committed); "
                    "likely a livelock in the pipeline model"
                )

            int_begin(cycle)
            fp_begin(cycle)
            fu_begin(cycle)

            if rob_entries:
                commit_stage(cycle)
            if cycle in completions:
                writeback_stage(cycle)
            if window_entries:
                issue_stage(cycle)
            if decode_queue:
                dispatch_stage(cycle)
            if not fetch_unit.exhausted:
                fetch_stage(cycle)

            if sample_occupancy is not None:
                sample_occupancy(cycle)

            cycle += 1
            if stats.committed_instructions >= max_instructions:
                break
            if fetch_unit.exhausted and not decode_queue and not rob_entries:
                break

        stats.cycles = cycle
        self._finalize_statistics()
        return stats

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit_stage(self, cycle: int) -> None:
        stats = self.stats
        observer = self.commit_observer
        max_instructions = self.config.max_instructions
        rob = self.rob
        rob_entries = self._rob_entries
        renamer = self.renamer
        int_free = renamer._int_free
        fp_free = renamer._fp_free
        scoreboard = self.scoreboard
        sb_states = self._sb_states
        lsq = self.lsq
        value_reads = stats.value_read_distribution
        committed = stats.committed_instructions
        for rob_entry in rob.committable(self.config.commit_width, cycle):
            if committed >= max_instructions:
                break
            renamed = rob_entry.renamed
            instruction = renamed.instruction
            # Inlined ``rob.commit``: the committable entries are the head
            # run of the ROB, popped here in program order.
            head_seq, _ = rob_entries.popitem(last=False)
            if head_seq != instruction.seq:
                raise SimulationError(
                    f"commit out of order: head is {head_seq}, got {instruction.seq}"
                )
            # Inlined ``renamer.commit``: release the previous mapping of
            # the committed destination.
            released = renamed.previous_dest
            if released is not None:
                (int_free if released.reg_class is RegisterClass.INT
                 else fp_free).release(released.index)
                state = sb_states.get(released.uid)
                if state is not None:
                    total_reads = (
                        state.reads_from_bypass
                        + state.reads_from_upper
                        + state.reads_from_lower
                    )
                    value_reads[total_reads] += 1
                    scoreboard.release(released)
                    self._regfile(released).release(released)
            op_class = instruction.op_class
            if op_class is OpClass.STORE:
                self.dcache.access(instruction.mem_address or 0, is_write=True)
                lsq.release(instruction.seq)
            elif op_class is OpClass.LOAD:
                lsq.release(instruction.seq)
            committed += 1
            if observer is not None:
                observer.on_commit(renamed, cycle)
        stats.committed_instructions = committed

    # ------------------------------------------------------------------
    # write-back / completion
    # ------------------------------------------------------------------

    def _writeback_stage(self, cycle: int) -> None:
        completions = self._completions.pop(cycle, None)
        if completions is None:
            return
        window = self.window
        rob_entries = self._rob_entries
        stats = self.stats
        for renamed, ex_end_cycle, fetched in completions:
            instruction = renamed.instruction
            dest = renamed.dest
            if dest is not None:
                state = renamed.dest_state
                if state is None:
                    raise SimulationError(f"no scoreboard state for {dest}")
                regfile = self._int_rf if dest.reg_class is RegisterClass.INT else self._fp_rf
                rf_ready = regfile.writeback(dest, state, cycle, window)
                state.rf_ready_cycle = rf_ready
                state.written_back = True
            # Inlined ``rob.mark_completed``.
            rob_entry = rob_entries.get(instruction.seq)
            if rob_entry is None:
                raise SimulationError(f"no ROB entry for seq {instruction.seq}")
            rob_entry.completed = True
            rob_entry.complete_cycle = cycle

            if instruction.is_branch and fetched is not None:
                self.fetch_unit.on_branch_writeback(
                    instruction, fetched, ex_end_cycle
                )
                if fetched.mispredicted:
                    stats.branch_mispredictions += 1

    # ------------------------------------------------------------------
    # issue (wakeup / select / operand read planning)
    # ------------------------------------------------------------------

    def _issue_stage(self, cycle: int) -> None:
        issue_width = self.config.issue_width
        try_issue = self._try_issue
        issued = 0
        for entry in self.window.schedulable(cycle):
            if try_issue(entry, cycle):
                issued += 1
                if issued >= issue_width:
                    break

    def _try_issue(self, entry: IssueQueueEntry, cycle: int) -> bool:
        renamed = entry.renamed
        instruction = renamed.instruction
        op_class = instruction.op_class
        window = self.window

        if op_class is OpClass.LOAD and not self.lsq.load_may_issue(instruction.seq):
            window.defer(entry, cycle + 1)
            return False

        # Operand read planning into the reusable per-class slot lists
        # (the former per-attempt dictionary was pure allocation churn).
        # The (register, scoreboard state, class) triples were resolved
        # once at dispatch (``entry.operand_plan``).
        int_rf = self._int_rf
        fp_rf = self._fp_rf
        int_accesses = self._int_accesses
        fp_accesses = self._fp_accesses
        missing = self._missing_operands
        int_accesses.clear()
        fp_accesses.clear()
        missing.clear()
        for register, state, is_int in entry.operand_plan:
            access = (int_rf if is_int else fp_rf).plan_operand_read(
                register, state, cycle
            )
            source = access.source
            if source is OperandSource.NOT_READY:
                retry = access.retry_cycle
                if retry is None or retry < cycle + 1:
                    retry = cycle + 1
                window.defer(entry, retry)
                return False
            access.state = state
            if source is OperandSource.MISS:
                missing.append(access)
            elif is_int:
                int_accesses.append(access)
            else:
                fp_accesses.append(access)

        if missing:
            self._handle_upper_level_misses(
                entry, missing, int_accesses, fp_accesses, cycle
            )
            return False

        if not self.fu_pool.can_issue(op_class, cycle):
            self.stats.issue_stalls_fu += 1
            return False
        if int_accesses and not int_rf.can_claim_reads(int_accesses):
            self.stats.issue_stalls_ports += 1
            return False
        if fp_accesses and not fp_rf.can_claim_reads(fp_accesses):
            self.stats.issue_stalls_ports += 1
            return False

        self._do_issue(entry, int_accesses, fp_accesses, cycle)
        return True

    def _handle_upper_level_misses(
        self,
        entry: IssueQueueEntry,
        missing: List[OperandAccess],
        int_accesses: List[OperandAccess],
        fp_accesses: List[OperandAccess],
        cycle: int,
    ) -> None:
        """Fetch-on-demand: bring missing operands up over the buses.

        The operands of the oldest waiting instruction are pinned in the
        uppermost level until they are read, so that even a tiny upper bank
        cannot thrash the two operands of one instruction against each
        other and livelock the pipeline.
        """
        self.stats.issue_stalls_fill += 1
        is_oldest = self.window.oldest_seq() == entry.seq
        if is_oldest:
            for accesses in (int_accesses, fp_accesses):
                for access in accesses:
                    if access.source is OperandSource.FILE:
                        self._regfile(access.register).pin_operand(access.register)
        latest_completion: Optional[int] = None
        for access in missing:
            register = access.register
            completion = self._regfile(register).request_fill(
                register, access.state, cycle, pin=is_oldest
            )
            if completion is not None:
                latest_completion = max(latest_completion or 0, completion)
        if latest_completion is not None:
            self.window.defer(entry, latest_completion)
        else:
            self.window.defer(entry, cycle + 1)

    def _do_issue(
        self,
        entry: IssueQueueEntry,
        int_accesses: List[OperandAccess],
        fp_accesses: List[OperandAccess],
        cycle: int,
    ) -> None:
        renamed = entry.renamed
        instruction = renamed.instruction
        op_class = instruction.op_class
        stats = self.stats
        bypass = self.bypass
        window = self.window
        if int_accesses:
            self._int_rf.claim_reads(int_accesses)
            self._record_operand_reads(int_accesses, stats, bypass)
        if fp_accesses:
            self._fp_rf.claim_reads(fp_accesses)
            self._record_operand_reads(fp_accesses, stats, bypass)

        # Inlined ``_execution_latency``: the common (non-memory) case is
        # a plain field read, and loads are the only class with real work.
        if op_class is OpClass.LOAD:
            address = instruction.mem_address or 0
            if self.lsq.forwarding_store(instruction.seq, address) is not None:
                latency = 2  # address generation + forward from the store queue
            else:
                latency = 1 + self.dcache.access(address).latency
        elif op_class is OpClass.STORE:
            latency = 1  # address generation; data is written at commit
        else:
            latency = instruction.latency or 1
        self.fu_pool.issue_unchecked(op_class, cycle, latency)

        ex_start = cycle + self.read_stages
        ex_end = ex_start + latency - 1
        seq = instruction.seq

        window.mark_issued(entry, cycle)
        # Inlined ``rob.mark_issued``.
        rob_entry = self._rob_entries.get(seq)
        if rob_entry is None:
            raise SimulationError(f"no ROB entry for seq {seq}")
        rob_entry.issue_cycle = cycle

        if ((op_class is OpClass.LOAD or op_class is OpClass.STORE)
                and instruction.mem_address is not None):
            self.lsq.set_address(seq, instruction.mem_address)

        dest = renamed.dest
        if dest is not None:
            state = renamed.dest_state
            if state is None:
                raise SimulationError(f"no scoreboard state for {dest}")
            state.ex_end_cycle = ex_end
            window.wakeup(dest, ex_end)
            regfile = self._int_rf if dest.reg_class is RegisterClass.INT else self._fp_rf
            regfile.on_issue(entry, cycle, window, self.scoreboard)

        completion = (renamed, ex_end, renamed.fetched)
        bucket = self._completions.get(ex_end + 1)
        if bucket is None:
            self._completions[ex_end + 1] = [completion]
        else:
            bucket.append(completion)

    @staticmethod
    def _record_operand_reads(accesses, stats, bypass) -> None:
        """Consumer-side read bookkeeping (inlined scoreboard updates)."""
        for access in accesses:
            state = access.state
            if access.source is OperandSource.BYPASS:
                state.consumed_via_bypass = True
                state.reads_from_bypass += 1
                bypass.operands_from_bypass += 1
                stats.operands_from_bypass += 1
            else:
                state.reads_from_upper += 1
                bypass.operands_from_regfile += 1
                stats.operands_from_file += 1

    # ------------------------------------------------------------------
    # decode / rename / dispatch
    # ------------------------------------------------------------------

    def _dispatch_stage(self, cycle: int) -> None:
        decode_queue = self._decode_queue
        stats = self.stats
        decode_width = self.config.decode_width
        rob = self.rob
        rob_entries = self._rob_entries
        rob_capacity = rob.capacity
        window = self.window
        window_entries = window._entries
        window_capacity = window.capacity
        lsq = self.lsq
        renamer = self.renamer
        scoreboard = self.scoreboard
        # Direct free-list views for the inlined ``renamer.can_rename``.
        int_free = renamer._int_free._free
        fp_free = renamer._fp_free._free
        dispatched = 0
        while decode_queue and dispatched < decode_width:
            fetched = decode_queue[0]
            if fetched.fetch_cycle >= cycle:
                break  # still in the decode stage
            instruction = fetched.instruction
            op_class = instruction.op_class
            is_memory = op_class is OpClass.LOAD or op_class is OpClass.STORE
            if len(rob_entries) >= rob_capacity:
                stats.dispatch_stalls_rob += 1
                break
            if len(window_entries) >= window_capacity:
                stats.dispatch_stalls_window += 1
                break
            if is_memory and lsq.full:
                stats.dispatch_stalls_lsq += 1
                break
            # Inlined ``renamer.can_rename``.
            dest = instruction.dest
            if dest is not None and not (
                int_free if dest.reg_class is RegisterClass.INT else fp_free
            ):
                stats.dispatch_stalls_registers += 1
                break

            decode_queue.popleft()
            renamed = renamer.rename(instruction)
            renamed.fetched = fetched
            if renamed.dest is not None:
                renamed.dest_state = scoreboard.allocate(renamed.dest, instruction.seq)
            # Inlined ``rob.dispatch``: capacity and program order were
            # already checked by this stage (the stream's seq is
            # monotonic), so insert the entry directly.
            rob_entries[instruction.seq] = ROBEntry(
                renamed=renamed, dispatch_cycle=cycle
            )
            window.dispatch(renamed, cycle)
            if is_memory:
                is_store = op_class is OpClass.STORE
                lsq.insert(instruction.seq, is_store)
                if is_store and instruction.mem_address is not None:
                    # Store addresses are produced by the address-generation
                    # part of the store, which does not wait for the store
                    # data; the stream already carries the effective
                    # address, so younger loads are only delayed by real
                    # same-address conflicts (store→load forwarding).
                    lsq.set_address(instruction.seq, instruction.mem_address)
            dispatched += 1

        if dispatched:
            # Occupancies and registers-in-use only grow at dispatch, so
            # the maxima are attained right here; cycles without a
            # dispatch cannot set a new maximum.
            occupancy = window.occupancy()
            if occupancy > stats.max_window_occupancy:
                stats.max_window_occupancy = occupancy
            rob_occupancy = rob.occupancy()
            if rob_occupancy > stats.max_rob_occupancy:
                stats.max_rob_occupancy = rob_occupancy
            int_in_use = renamer.in_use_registers(RegisterClass.INT)
            if int_in_use > stats.max_int_registers_in_use:
                stats.max_int_registers_in_use = int_in_use
            fp_in_use = renamer.in_use_registers(RegisterClass.FP)
            if fp_in_use > stats.max_fp_registers_in_use:
                stats.max_fp_registers_in_use = fp_in_use

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch_stage(self, cycle: int) -> None:
        decode_queue = self._decode_queue
        if len(decode_queue) >= self.config.fetch_buffer_size:
            return
        fetch_unit = self.fetch_unit
        if fetch_unit.exhausted:
            return
        fetch_unit.fetch_into(decode_queue, self.stats, cycle)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _sample_occupancy(self, cycle: int) -> None:
        needed: set[PhysicalRegister] = set()
        ready: set[PhysicalRegister] = set()
        sb_states = self._sb_states
        for entry in self.window._entries.values():
            produced_sources = []
            all_produced = True
            for register in entry.renamed.sources:
                state = sb_states.get(register.uid)
                if state is None:
                    raise SimulationError(f"no scoreboard state for {register}")
                if state.ex_end_cycle is not None and state.ex_end_cycle <= cycle:
                    produced_sources.append(register)
                else:
                    all_produced = False
            needed.update(produced_sources)
            if all_produced and produced_sources:
                ready.update(produced_sources)
        self.stats.record_occupancy(OccupancySample(len(needed), len(ready)))

    def _finalize_statistics(self) -> None:
        self.stats.icache_hits = self.fetch_unit.icache_hits
        self.stats.icache_misses = self.fetch_unit.icache_misses
        self.stats.dcache_hits = self.dcache.hits
        self.stats.dcache_misses = self.dcache.misses
        self.stats.loads_forwarded = self.lsq.forwarded_loads
        regfile_stats: Dict[str, int] = {}
        for reg_class, regfile in self._regfiles.items():
            for key, value in regfile.statistics().items():
                regfile_stats[f"{reg_class.value}_{key}"] = value
        self.stats.regfile_statistics = regfile_stats
        observer = self.commit_observer
        if observer is not None:
            self.stats.commit_checksum = observer.final_digest()


def simulate(
    workload: Optional[Iterable[DynamicInstruction]],
    regfile_factory: Callable[[], RegisterFileModel],
    config: Optional[ProcessorConfig] = None,
    benchmark_name: str = "workload",
    commit_observer=None,
    frontend=None,
) -> SimulationStats:
    """Convenience wrapper: build a :class:`Processor`, run it, return stats."""
    processor = Processor(workload, regfile_factory, config, benchmark_name,
                          commit_observer=commit_observer, frontend=frontend)
    return processor.run()
