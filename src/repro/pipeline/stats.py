"""Simulation statistics.

:class:`SimulationStats` aggregates everything the experiments need:
IPC, branch-prediction and cache behaviour, how operands were delivered
(bypass network vs register file banks), register-file-cache events
(fills, prefetches, caching decisions), the per-cycle register occupancy
distributions of Figure 3 and the value read-count distribution used by
the Section 3 statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, Optional


@dataclass
class OccupancySample:
    """Counts from one cycle for the Figure 3 distributions."""

    live_needed: int
    live_ready: int


@dataclass(slots=True)
class SimulationStats:
    """Counters collected during one simulation run.

    Slotted: the pipeline bumps these counters several times per
    simulated instruction, and slot access skips the per-instance
    dictionary.
    """

    benchmark: str = ""
    architecture: str = ""

    cycles: int = 0
    committed_instructions: int = 0
    fetched_instructions: int = 0

    branch_predictions: int = 0
    branch_mispredictions: int = 0

    icache_hits: int = 0
    icache_misses: int = 0
    dcache_hits: int = 0
    dcache_misses: int = 0

    loads_forwarded: int = 0

    #: How operands were obtained at issue time.
    operands_from_bypass: int = 0
    operands_from_file: int = 0

    #: Stall cycle accounting (per stall reason, counted per event).
    dispatch_stalls_window: int = 0
    dispatch_stalls_registers: int = 0
    dispatch_stalls_rob: int = 0
    dispatch_stalls_lsq: int = 0
    issue_stalls_ports: int = 0
    issue_stalls_fu: int = 0
    issue_stalls_fill: int = 0

    #: Register-file architecture specific counters.
    regfile_statistics: Dict[str, int] = field(default_factory=dict)

    #: Value read-count distribution (reads → number of values).
    value_read_distribution: Counter = field(default_factory=Counter)

    #: Per-cycle occupancy distributions (Figure 3), only when enabled.
    occupancy_needed: Counter = field(default_factory=Counter)
    occupancy_ready: Counter = field(default_factory=Counter)

    #: Maximum observed occupancies (window, ROB).
    max_window_occupancy: int = 0
    max_rob_occupancy: int = 0
    max_int_registers_in_use: int = 0
    max_fp_registers_in_use: int = 0

    #: Commit-order checksum, set only when a commit observer was attached
    #: (see :mod:`repro.validate.observer`).  ``None`` — the overwhelmingly
    #: common case — is excluded from :meth:`to_dict` so that golden
    #: fixtures and benchmark stats digests are byte-identical with and
    #: without the validation subsystem in the tree.
    commit_checksum: Optional[str] = None

    #: Sampling report, set only when the run was produced by the
    #: systematic-sampling engine (see :mod:`repro.sampling`): the spec,
    #: per-window IPCs, and the mean ± confidence-interval summary.
    #: ``None`` (exact runs) is excluded from :meth:`to_dict` for the same
    #: fixture-stability reason as ``commit_checksum``.
    sampling: Optional[dict] = None

    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def branch_misprediction_rate(self) -> float:
        if self.branch_predictions == 0:
            return 0.0
        return self.branch_mispredictions / self.branch_predictions

    @property
    def branch_prediction_accuracy(self) -> float:
        return 1.0 - self.branch_misprediction_rate

    @property
    def icache_hit_rate(self) -> float:
        total = self.icache_hits + self.icache_misses
        return self.icache_hits / total if total else 1.0

    @property
    def dcache_hit_rate(self) -> float:
        total = self.dcache_hits + self.dcache_misses
        return self.dcache_hits / total if total else 1.0

    @property
    def bypass_operand_fraction(self) -> float:
        total = self.operands_from_bypass + self.operands_from_file
        return self.operands_from_bypass / total if total else 0.0

    # ------------------------------------------------------------------
    # Figure 3 helpers
    # ------------------------------------------------------------------

    def record_occupancy(self, sample: OccupancySample) -> None:
        self.occupancy_needed[sample.live_needed] += 1
        self.occupancy_ready[sample.live_ready] += 1

    def occupancy_cdf(self, which: str = "needed", max_registers: int = 32) -> list[float]:
        """Cumulative % of cycles with at most N live registers.

        ``which`` selects the "Value & Instruction" distribution
        (``"needed"``) or the "Value & Ready Instruction" one (``"ready"``).
        """
        counts = self.occupancy_needed if which == "needed" else self.occupancy_ready
        total = sum(counts.values())
        if total == 0:
            return [100.0] * (max_registers + 1)
        cdf: list[float] = []
        running = 0
        for registers in range(max_registers + 1):
            running += counts.get(registers, 0)
            cdf.append(100.0 * running / total)
        # Anything above max_registers is folded into the last bucket.
        overflow = sum(count for value, count in counts.items() if value > max_registers)
        if overflow:
            cdf[-1] = 100.0 * (running + overflow) / total
        return cdf

    # ------------------------------------------------------------------
    # value reuse (Section 3 statistic)
    # ------------------------------------------------------------------

    def record_value_reads(self, reads: int) -> None:
        self.value_read_distribution[reads] += 1

    def read_at_most_once_fraction(self) -> float:
        total = sum(self.value_read_distribution.values())
        if total == 0:
            return 1.0
        at_most_once = self.value_read_distribution.get(0, 0) + self.value_read_distribution.get(1, 0)
        return at_most_once / total

    # ------------------------------------------------------------------
    # serialization (persistent result store, multiprocess transport)
    # ------------------------------------------------------------------

    #: Fields stored as ``Counter`` objects with integer keys.  JSON turns
    #: the keys into strings, so round-tripping needs the explicit list.
    _COUNTER_FIELDS = ("value_read_distribution", "occupancy_needed", "occupancy_ready")

    #: Optional fields omitted from :meth:`to_dict` while unset, so runs
    #: without the corresponding feature serialize exactly as they did
    #: before the field existed (golden fixtures, bench digests).
    _OPTIONAL_FIELDS = ("commit_checksum", "sampling")

    def to_dict(self) -> dict:
        """JSON-serializable dictionary holding every counter of the run."""
        payload: dict = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is None and spec.name in self._OPTIONAL_FIELDS:
                continue
            if isinstance(value, dict):  # Counter is a dict subclass
                value = {str(key): count for key, count in value.items()}
            payload[spec.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        kwargs: dict = {}
        for spec in fields(cls):
            if spec.name not in payload:
                continue
            value = payload[spec.name]
            if spec.name in cls._COUNTER_FIELDS:
                value = Counter({int(key): int(count) for key, count in value.items()})
            elif spec.name == "regfile_statistics":
                value = {str(key): int(count) for key, count in value.items()}
            kwargs[spec.name] = value
        return cls(**kwargs)

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by reports and tests."""
        return {
            "benchmark": self.benchmark,
            "architecture": self.architecture,
            "cycles": self.cycles,
            "instructions": self.committed_instructions,
            "ipc": round(self.ipc, 4),
            "branch_accuracy": round(self.branch_prediction_accuracy, 4),
            "icache_hit_rate": round(self.icache_hit_rate, 4),
            "dcache_hit_rate": round(self.dcache_hit_rate, 4),
            "bypass_operand_fraction": round(self.bypass_operand_fraction, 4),
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.benchmark} on {self.architecture}: "
            f"IPC={self.ipc:.3f} over {self.cycles} cycles "
            f"({self.committed_instructions} instructions)"
        )
