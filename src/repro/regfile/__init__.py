"""Register file architectures — the paper's primary contribution.

Three families of register file organisations are provided, all behind
the common :class:`~repro.regfile.base.RegisterFileModel` interface used
by the pipeline model:

* :class:`~repro.regfile.monolithic.SingleBankedRegisterFile` — the
  conventional monolithic register file with a configurable access
  latency (1 or more cycles) and a configurable number of bypass levels,
  used for the paper's baselines (1-cycle/1-bypass, 2-cycle/2-bypass,
  2-cycle/1-bypass).
* :class:`~repro.regfile.cache.RegisterFileCache` — the two-level
  *register file cache*: a small fully-associative upper bank with
  pseudo-LRU replacement that feeds the functional units, backed by a
  large lower bank holding every physical register, with configurable
  caching policies, fetch/prefetch policies, per-bank ports and
  inter-level buses.
* :class:`~repro.regfile.banked.OneLevelBankedRegisterFile` — the
  single-level multiple-banked organisation sketched in Section 3 of the
  paper (each value lives in exactly one bank, all banks feed the
  functional units).
"""

from repro.regfile.base import (
    OperandSource,
    OperandAccess,
    RegisterFileModel,
    UNLIMITED,
)
from repro.regfile.ports import PortSet, WriteScheduler
from repro.regfile.replacement import PseudoLRU
from repro.regfile.bus import TransferBusSet
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.regfile.cache import RegisterFileCache
from repro.regfile.banked import OneLevelBankedRegisterFile
from repro.regfile.policies import (
    CachingPolicy,
    NonBypassCaching,
    ReadyCaching,
    AlwaysCaching,
    NeverCaching,
    caching_policy_by_name,
)
from repro.regfile.prefetch import (
    FetchPolicy,
    FetchOnDemand,
    PrefetchFirstPair,
    fetch_policy_by_name,
)

__all__ = [
    "OperandSource",
    "OperandAccess",
    "RegisterFileModel",
    "UNLIMITED",
    "PortSet",
    "WriteScheduler",
    "PseudoLRU",
    "TransferBusSet",
    "SingleBankedRegisterFile",
    "RegisterFileCache",
    "OneLevelBankedRegisterFile",
    "CachingPolicy",
    "NonBypassCaching",
    "ReadyCaching",
    "AlwaysCaching",
    "NeverCaching",
    "caching_policy_by_name",
    "FetchPolicy",
    "FetchOnDemand",
    "PrefetchFirstPair",
    "fetch_policy_by_name",
]
