"""One-level multiple-banked register file.

Section 3 of the paper sketches a *single-level* multiple-banked
organisation (Figure 4a): each logical register is mapped to a physical
register in exactly one of the banks, every bank can feed the functional
units, and each result is written to exactly one bank.  Each bank has few
ports, so the organisation is cheap, but instructions now compete for the
read ports of the specific bank their operands live in.

The paper focuses its evaluation on the multi-level organisation (the
register file cache); this model is provided to support the "extension to
the one-level organization" mentioned in the conclusions and is used in
the ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.execute.scoreboard import ValueState
from repro.regfile.base import (
    OperandAccess,
    OperandSource,
    RegisterFileModel,
    UNLIMITED,
)
from repro.regfile.ports import PortSet, WriteScheduler
from repro.rename.renamer import PhysicalRegister


class OneLevelBankedRegisterFile(RegisterFileModel):
    """A single-level register file split into several interleaved banks."""

    read_stages = 1
    bypass_levels = 1

    def __init__(
        self,
        num_banks: int = 2,
        read_ports_per_bank: Optional[int] = UNLIMITED,
        write_ports_per_bank: Optional[int] = UNLIMITED,
        name: Optional[str] = None,
    ) -> None:
        if num_banks <= 0:
            raise ConfigurationError("num_banks must be positive")
        self.num_banks = num_banks
        self._read_ports = [
            PortSet(read_ports_per_bank, kind=f"bank{i}-read") for i in range(num_banks)
        ]
        self._writes = [
            WriteScheduler(write_ports_per_bank, kind=f"bank{i}-write")
            for i in range(num_banks)
        ]
        self.name = name or f"one-level banked x{num_banks}"
        # Preallocated per-bank demand counters for port arbitration; the
        # scratch arrays replace a dictionary allocated per issue attempt
        # and are always reset to zero/empty before returning.
        self._bank_demand = [0] * num_banks
        self._banks_touched: list[int] = []
        # statistics
        self.reads_from_bypass = 0
        self.reads_from_banks = 0
        self.read_port_stalls = 0
        self.bank_conflicts = 0

    # ------------------------------------------------------------------

    def bank_of(self, register: PhysicalRegister) -> int:
        """Bank holding ``register`` (simple interleaving by index)."""
        return register.index % self.num_banks

    def begin_cycle(self, cycle: int) -> None:
        for ports in self._read_ports:
            ports.begin_cycle()
        if not cycle & 1023:
            for scheduler in self._writes:
                scheduler.forget_before(cycle)

    # ------------------------------------------------------------------

    def plan_operand_read(
        self, register: PhysicalRegister, state: ValueState, issue_cycle: int
    ) -> OperandAccess:
        if state.ex_end_cycle is None:
            return OperandAccess(register, OperandSource.NOT_READY)
        ex_start = issue_cycle + self.read_stages
        earliest_ex = state.ex_end_cycle + 1
        if ex_start < earliest_ex:
            return OperandAccess(
                register, OperandSource.NOT_READY, retry_cycle=state.ex_end_cycle
            )
        bank = register.index % self.num_banks
        if state.rf_ready_cycle is not None and issue_cycle >= state.rf_ready_cycle:
            return OperandAccess(register, OperandSource.FILE, bank=bank)
        return OperandAccess(register, OperandSource.BYPASS, bank=bank)

    def can_claim_reads(self, accesses: Sequence[OperandAccess]) -> bool:
        demand = self._bank_demand
        touched = self._banks_touched
        for access in accesses:
            if access.source is OperandSource.FILE:
                bank = access.bank
                if demand[bank] == 0:
                    touched.append(bank)
                demand[bank] += 1
        ok = True
        for bank in touched:
            if ok and not self._read_ports[bank].available_capped(demand[bank]):
                self.read_port_stalls += 1
                self.bank_conflicts += 1
                ok = False
            demand[bank] = 0
        touched.clear()
        return ok

    def claim_reads(self, accesses: Sequence[OperandAccess]) -> None:
        demand = self._bank_demand
        touched = self._banks_touched
        for access in accesses:
            source = access.source
            if source is OperandSource.FILE:
                bank = access.bank
                if demand[bank] == 0:
                    touched.append(bank)
                demand[bank] += 1
                self.reads_from_banks += 1
            elif source is OperandSource.BYPASS:
                self.reads_from_bypass += 1
        for bank in touched:
            needed = demand[bank]
            demand[bank] = 0
            self._read_ports[bank].claim_capped(needed)
        touched.clear()

    # ------------------------------------------------------------------

    def writeback(
        self,
        register: PhysicalRegister,
        state: ValueState,
        cycle: int,
        window,
    ) -> int:
        bank = self.bank_of(register)
        return self._writes[bank].schedule(cycle)

    # ------------------------------------------------------------------

    def describe(self) -> str:
        ports = self._read_ports[0]
        reads = "inf" if ports.unlimited else str(ports.count)
        return f"{self.name} ({reads}R per bank)"

    def statistics(self) -> dict:
        return {
            "reads_from_bypass": self.reads_from_bypass,
            "reads_from_banks": self.reads_from_banks,
            "read_port_stalls": self.read_port_stalls,
            "bank_conflicts": self.bank_conflicts,
        }
