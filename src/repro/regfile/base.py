"""Common interface of all register file architectures.

The pipeline model interacts with a register file exclusively through
:class:`RegisterFileModel`:

* at **select/issue** time it asks, for each source operand of a
  candidate instruction, how the operand would be obtained
  (:meth:`RegisterFileModel.plan_operand_read`), checks that the required
  read ports are available, and finally claims them;
* when an operand is *missing* from the upper level of a register file
  cache it asks the model to start a **fill** over one of the
  inter-level buses;
* at **write-back** time it hands the produced value to the model, which
  arbitrates write ports, applies the caching policy and reports when the
  value becomes readable from the file;
* at **issue** time of a producer the model gets a hook used by the
  prefetch-first-pair scheme.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.execute.scoreboard import ValueState
from repro.rename.renamer import PhysicalRegister

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.execute.issue_queue import IssueQueue, IssueQueueEntry

#: Sentinel meaning "an unlimited number of ports/buses".
UNLIMITED: Optional[int] = None


class OperandSource(enum.Enum):
    """How a source operand would be obtained at issue time."""

    #: The value is caught on the bypass network — no register file port.
    BYPASS = "bypass"
    #: The value is read from the register file (uppermost bank); needs a
    #: read port.
    FILE = "file"
    #: The value exists only in the lower bank of a register file cache
    #: and must be brought up over a bus before the instruction can issue.
    MISS = "miss"
    #: The value is not available yet (producer still executing, or still
    #: in flight to the lower bank).
    NOT_READY = "not_ready"


@dataclass(slots=True)
class OperandAccess:
    """The plan for obtaining one source operand."""

    register: PhysicalRegister
    source: OperandSource
    #: For FILE accesses of multi-banked organisations: which bank is read.
    bank: int = 0
    #: Earliest cycle at which re-planning could succeed (hint only).
    retry_cycle: Optional[int] = None
    #: Scoreboard state of the register, attached by the pipeline while
    #: planning so the issue bookkeeping needs no second scoreboard lookup.
    state: Optional[ValueState] = None

    @property
    def issuable(self) -> bool:
        """Whether the operand can be delivered for an issue this cycle."""
        return self.source in (OperandSource.BYPASS, OperandSource.FILE)


class RegisterFileModel(ABC):
    """Abstract register file architecture."""

    #: Cycles between issue and the start of execution (operand read).
    read_stages: int = 1
    #: Number of bypass levels implemented.
    bypass_levels: int = 1
    #: Whether this architecture's policies query the issue window's
    #: per-register consumer index (``waiting_consumers_of``).  Single
    #: level organisations never do, so the window skips maintaining it.
    needs_consumer_index: bool = False
    #: Human-readable architecture name used in reports.
    name: str = "register-file"

    # ------------------------------------------------------------------
    # per-cycle bookkeeping
    # ------------------------------------------------------------------

    @abstractmethod
    def begin_cycle(self, cycle: int) -> None:
        """Reset per-cycle port counters and complete pending transfers."""

    # ------------------------------------------------------------------
    # reads (issue side)
    # ------------------------------------------------------------------

    @abstractmethod
    def plan_operand_read(
        self, register: PhysicalRegister, state: ValueState, issue_cycle: int
    ) -> OperandAccess:
        """Plan how ``register`` would be obtained by an instruction issued
        at ``issue_cycle`` (executing ``read_stages`` cycles later)."""

    @abstractmethod
    def can_claim_reads(self, accesses: Sequence[OperandAccess]) -> bool:
        """Whether the FILE accesses in ``accesses`` fit in this cycle's
        remaining read-port budget."""

    @abstractmethod
    def claim_reads(self, accesses: Sequence[OperandAccess]) -> None:
        """Consume read ports for the FILE accesses in ``accesses``."""

    # ------------------------------------------------------------------
    # fills / prefetches (register file cache only; default no-ops)
    # ------------------------------------------------------------------

    def request_fill(
        self, register: PhysicalRegister, state: ValueState, cycle: int
    ) -> Optional[int]:
        """Start bringing ``register`` into the uppermost level.

        Returns the cycle at which the value will be readable from the
        uppermost level, or ``None`` if no transfer could be started (no
        free bus, value not yet in the lower bank).  The default
        implementation (single-level organisations) does nothing.
        """
        return None

    def on_issue(
        self,
        entry: "IssueQueueEntry",
        cycle: int,
        window: "IssueQueue",
        scoreboard,
    ) -> None:
        """Hook invoked when an instruction issues (prefetch-first-pair)."""

    def pin_operand(self, register: PhysicalRegister) -> None:
        """Keep ``register`` resident in the uppermost level until it is read.

        Called by the pipeline for the operands of the oldest waiting
        instruction so that forward progress is guaranteed even with very
        small upper levels.  Single-level organisations need no pinning.
        """

    # ------------------------------------------------------------------
    # writes (write-back side)
    # ------------------------------------------------------------------

    @abstractmethod
    def writeback(
        self,
        register: PhysicalRegister,
        state: ValueState,
        cycle: int,
        window: "IssueQueue",
    ) -> int:
        """Write the produced value into the register file.

        Returns the cycle from which the value is readable from the file
        (the lowest bank for a register file cache).
        """

    # ------------------------------------------------------------------
    # lifetime management
    # ------------------------------------------------------------------

    def release(self, register: PhysicalRegister) -> None:
        """The physical register was returned to the free list."""

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        return self.name

    def statistics(self) -> dict:
        """Architecture-specific counters for reports (may be empty)."""
        return {}
