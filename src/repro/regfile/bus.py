"""Inter-level transfer buses of the register file cache.

Table 2 of the paper specifies, for each register-file-cache
configuration, the number of buses ``B`` between the two levels; each bus
implies a read port in the lowest level and an extra write port in the
uppermost level.  A transfer occupies its bus for the duration of the
lower-level read plus the upper-level write.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError


class TransferBusSet:
    """A set of buses, each able to carry one value at a time."""

    def __init__(self, count: Optional[int], transfer_latency: int = 2) -> None:
        if count is not None and count <= 0:
            raise ConfigurationError("bus count must be positive or None (unlimited)")
        if transfer_latency <= 0:
            raise ConfigurationError("transfer latency must be positive")
        self.count = count
        self.transfer_latency = transfer_latency
        #: busy-until cycle of each bus (finite case only).
        self._busy_until: List[int] = [0] * (count or 0)
        # statistics
        self.transfers_started = 0
        self.transfers_denied = 0

    @property
    def unlimited(self) -> bool:
        return self.count is None

    def try_start_transfer(self, cycle: int) -> Optional[int]:
        """Try to start a transfer at ``cycle``.

        Returns the completion cycle (value readable from the uppermost
        level from that cycle on), or ``None`` if every bus is busy.
        """
        completion = cycle + self.transfer_latency
        if self.unlimited:
            self.transfers_started += 1
            return completion
        for index, busy_until in enumerate(self._busy_until):
            if busy_until <= cycle:
                self._busy_until[index] = completion
                self.transfers_started += 1
                return completion
        self.transfers_denied += 1
        return None

    def busy_count(self, cycle: int) -> int:
        """Number of buses still busy at ``cycle`` (0 when unlimited)."""
        if self.unlimited:
            return 0
        return sum(1 for busy_until in self._busy_until if busy_until > cycle)

    def statistics(self) -> Dict[str, int]:
        return {
            "transfers_started": self.transfers_started,
            "transfers_denied": self.transfers_denied,
        }
