"""The register file cache: a two-level multiple-banked register file.

This is the architecture the paper proposes (Section 3, Figure 4b):

* the **uppermost level** is a small bank (16 registers by default) with
  many ports, a fully-associative organisation and pseudo-LRU
  replacement; it is the only bank that can feed the functional units, so
  the bypass network needs a single level, exactly as with a 1-cycle
  monolithic register file;
* the **lowest level** holds every physical register (128 by default) and
  is always written by every result;
* results are optionally also written to the uppermost level according to
  a :class:`~repro.regfile.policies.CachingPolicy`;
* values missing from the uppermost level are brought up over a limited
  number of buses, either on demand or ahead of time according to a
  :class:`~repro.regfile.prefetch.FetchPolicy`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.execute.scoreboard import ValueState
from repro.regfile.base import (
    OperandAccess,
    OperandSource,
    RegisterFileModel,
    UNLIMITED,
)
from repro.regfile.bus import TransferBusSet
from repro.regfile.policies import CachingPolicy, NonBypassCaching
from repro.regfile.ports import PortSet, WriteScheduler
from repro.regfile.prefetch import FetchPolicy, FetchOnDemand
from repro.regfile.replacement import PseudoLRU
from repro.rename.renamer import PhysicalRegister


class RegisterFileCache(RegisterFileModel):
    """Two-level register file with caching and prefetching policies."""

    read_stages = 1
    bypass_levels = 1
    #: The ready-caching policy and prefetch-first-pair both walk the
    #: window's per-register consumer lists.
    needs_consumer_index = True

    def __init__(
        self,
        upper_capacity: int = 16,
        caching_policy: Optional[CachingPolicy] = None,
        fetch_policy: Optional[FetchPolicy] = None,
        upper_read_ports: Optional[int] = UNLIMITED,
        upper_write_ports: Optional[int] = UNLIMITED,
        lower_write_ports: Optional[int] = UNLIMITED,
        num_buses: Optional[int] = UNLIMITED,
        lower_read_latency: int = 1,
        name: Optional[str] = None,
    ) -> None:
        if upper_capacity <= 0 or upper_capacity & (upper_capacity - 1):
            raise ConfigurationError("upper_capacity must be a positive power of two")
        if lower_read_latency <= 0:
            raise ConfigurationError("lower_read_latency must be positive")
        self.upper_capacity = upper_capacity
        self.caching_policy = caching_policy or NonBypassCaching()
        self.fetch_policy = fetch_policy or FetchOnDemand()
        self.upper_read_ports = PortSet(upper_read_ports, kind="upper-read")
        self.upper_result_writes = WriteScheduler(upper_write_ports, kind="upper-write")
        self.lower_writes = WriteScheduler(lower_write_ports, kind="lower-write")
        self.lower_read_latency = lower_read_latency
        # A transfer reads the lowest level and then writes the uppermost
        # level; the bus is busy for the whole transfer.
        self.buses = TransferBusSet(num_buses, transfer_latency=lower_read_latency + 1)
        self._upper: PseudoLRU[int] = PseudoLRU(upper_capacity)  # keyed by register uid
        # Direct view of the upper level's residency dictionary (never
        # rebound): issue-side residency checks run several times per
        # instruction and skip the ``__contains__`` call this way.
        self._upper_slots = self._upper._slot_of
        self._pending_fills: Dict[int, int] = {}
        #: Registers pinned until read because the oldest waiting instruction
        #: needs them.  Pinned entries are never evicted; since at most the
        #: two operands of one instruction are pinned and the upper level has
        #: at least four entries, an evictable way always exists and the
        #: oldest instruction is guaranteed to make forward progress even
        #: with a tiny, heavily thrashed upper level.
        self._read_pinned: set[int] = set()
        self.name = name or (
            f"register file cache ({self.caching_policy.name} caching + "
            f"{self.fetch_policy.name})"
        )
        # statistics
        self.reads_from_bypass = 0
        self.reads_from_upper = 0
        self.upper_misses = 0
        self.demand_fills = 0
        self.prefetch_fills = 0
        self.results_cached = 0
        self.results_not_cached = 0
        self.cache_write_conflicts = 0
        self.read_port_stalls = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # per-cycle bookkeeping
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        # Direct store instead of ``upper_read_ports.begin_cycle()``: this
        # runs every simulated cycle and the method call is pure overhead.
        self.upper_read_ports._used = 0
        pending = self._pending_fills
        if pending:
            completed = [reg for reg, done in pending.items() if done <= cycle]
            for register in completed:
                del pending[register]
                self._insert_upper(register, cycle)
        if not cycle & 1023:
            self.lower_writes.forget_before(cycle)
            self.upper_result_writes.forget_before(cycle)

    def _insert_upper(self, uid: int, cycle: int) -> None:
        evicted = self._upper.insert(
            uid,
            can_evict=lambda candidate: candidate not in self._read_pinned,
        )
        if evicted is not None:
            self.evictions += 1

    def present_in_upper(self, register: PhysicalRegister) -> bool:
        """Whether the uppermost level currently holds ``register``."""
        return register.uid in self._upper

    def fill_in_flight(self, register: PhysicalRegister) -> Optional[int]:
        """Completion cycle of an in-flight fill for ``register``, if any."""
        return self._pending_fills.get(register.uid)

    # ------------------------------------------------------------------
    # reads (issue side)
    # ------------------------------------------------------------------

    def plan_operand_read(
        self, register: PhysicalRegister, state: ValueState, issue_cycle: int
    ) -> OperandAccess:
        if state.ex_end_cycle is None:
            return OperandAccess(register, OperandSource.NOT_READY)
        ex_start = issue_cycle + self.read_stages
        earliest_ex = state.ex_end_cycle + 1
        if ex_start < earliest_ex:
            return OperandAccess(
                register, OperandSource.NOT_READY, retry_cycle=state.ex_end_cycle
            )
        if ex_start == earliest_ex:
            # The single bypass level catches results exactly one cycle
            # after the producer finishes.
            return OperandAccess(register, OperandSource.BYPASS)
        uid = register.uid
        if uid in self._upper_slots:
            # Mark the entry hot: the instruction planning this read may be
            # waiting for another operand, and this copy must survive until
            # both are available.
            self._upper.touch(uid)
            return OperandAccess(register, OperandSource.FILE)
        pending = self._pending_fills.get(uid)
        if pending is not None:
            return OperandAccess(register, OperandSource.NOT_READY, retry_cycle=pending)
        if state.written_back and state.rf_ready_cycle is not None \
                and issue_cycle >= state.rf_ready_cycle:
            return OperandAccess(register, OperandSource.MISS)
        retry = state.rf_ready_cycle
        return OperandAccess(register, OperandSource.NOT_READY, retry_cycle=retry)

    def can_claim_reads(self, accesses: Sequence[OperandAccess]) -> bool:
        needed = 0
        for access in accesses:
            if access.source is OperandSource.FILE:
                needed += 1
        if needed == 0:
            return True
        available = self.upper_read_ports.available_capped(needed)
        if not available:
            self.read_port_stalls += 1
        return available

    def claim_reads(self, accesses: Sequence[OperandAccess]) -> None:
        needed = 0
        upper_slots = self._upper_slots
        read_pinned = self._read_pinned
        for access in accesses:
            source = access.source
            if source is OperandSource.FILE:
                needed += 1
                self.reads_from_upper += 1
                uid = access.register.uid
                if uid in upper_slots:
                    self._upper.touch(uid)
                read_pinned.discard(uid)
            elif source is OperandSource.BYPASS:
                self.reads_from_bypass += 1
                read_pinned.discard(access.register.uid)
        if needed:
            self.upper_read_ports.claim_capped(needed)

    # ------------------------------------------------------------------
    # fills and prefetches
    # ------------------------------------------------------------------

    def pin_operand(self, register: PhysicalRegister) -> None:
        uid = register.uid
        if uid in self._upper or uid in self._pending_fills:
            self._read_pinned.add(uid)

    def request_fill(
        self,
        register: PhysicalRegister,
        state: ValueState,
        cycle: int,
        prefetch: bool = False,
        pin: bool = False,
    ) -> Optional[int]:
        """Start moving ``register`` from the lowest to the uppermost level.

        Returns the completion cycle, or ``None`` when the transfer cannot
        start (value not yet written back, or all buses busy).
        """
        uid = register.uid
        if uid in self._upper:
            return cycle
        pending = self._pending_fills.get(uid)
        if pending is not None:
            return pending
        if not state.written_back or state.rf_ready_cycle is None:
            return None
        if cycle < state.rf_ready_cycle:
            return None
        completion = self.buses.try_start_transfer(cycle)
        if completion is None:
            return None
        self._pending_fills[uid] = completion
        if pin:
            self._read_pinned.add(uid)
        if prefetch:
            self.prefetch_fills += 1
        else:
            self.demand_fills += 1
        return completion

    def on_issue(self, entry, cycle: int, window, scoreboard) -> None:
        self.fetch_policy.on_issue(self, entry, cycle, window, scoreboard)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def writeback(
        self,
        register: PhysicalRegister,
        state: ValueState,
        cycle: int,
        window,
    ) -> int:
        lower_ready = self.lower_writes.schedule(cycle)
        if self.caching_policy.should_cache(register, state, window, cycle):
            if self.upper_result_writes.reserve(cycle):
                self._insert_upper(register.uid, cycle)
                self.results_cached += 1
            else:
                self.cache_write_conflicts += 1
                self.results_not_cached += 1
        else:
            self.results_not_cached += 1
        return lower_ready

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------

    def release(self, register: PhysicalRegister) -> None:
        uid = register.uid
        self._upper.remove(uid)
        self._pending_fills.pop(uid, None)
        self._read_pinned.discard(uid)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        reads = "inf" if self.upper_read_ports.unlimited else str(self.upper_read_ports.count)
        writes = (
            "inf"
            if self.upper_result_writes.unlimited
            else str(self.upper_result_writes.ports_per_cycle)
        )
        buses = "inf" if self.buses.unlimited else str(self.buses.count)
        return f"{self.name} ({reads}R/{writes}W upper, {buses} buses)"

    def statistics(self) -> dict:
        return {
            "reads_from_bypass": self.reads_from_bypass,
            "reads_from_upper": self.reads_from_upper,
            "upper_misses": self.upper_misses,
            "demand_fills": self.demand_fills,
            "prefetch_fills": self.prefetch_fills,
            "results_cached": self.results_cached,
            "results_not_cached": self.results_not_cached,
            "cache_write_conflicts": self.cache_write_conflicts,
            "read_port_stalls": self.read_port_stalls,
            "evictions": self.evictions,
            "bus_transfers": self.buses.transfers_started,
            "bus_denied": self.buses.transfers_denied,
        }
