"""Conventional single-banked (monolithic) register file.

This models the paper's baselines:

* 1-cycle access, one level of bypass (the ideal, non-pipelined file),
* 2-cycle access, two levels of bypass (pipelined file with full bypass),
* 2-cycle access, one level of bypass (pipelined file with the same
  bypass complexity as the register file cache).

Reads and writes can be limited to a configurable number of ports, which
is what the area/performance trade-off experiments (Figure 8, Table 2,
Figure 9) sweep.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.execute.scoreboard import ValueState
from repro.regfile.base import (
    OperandAccess,
    OperandSource,
    RegisterFileModel,
    UNLIMITED,
)
from repro.regfile.ports import PortSet, WriteScheduler
from repro.rename.renamer import PhysicalRegister


class SingleBankedRegisterFile(RegisterFileModel):
    """A monolithic register file with N-cycle access and B bypass levels."""

    def __init__(
        self,
        latency: int = 1,
        bypass_levels: Optional[int] = None,
        read_ports: Optional[int] = UNLIMITED,
        write_ports: Optional[int] = UNLIMITED,
        name: Optional[str] = None,
    ) -> None:
        if latency <= 0:
            raise ConfigurationError("register file latency must be positive")
        resolved_bypass = latency if bypass_levels is None else bypass_levels
        if not 1 <= resolved_bypass <= latency:
            raise ConfigurationError(
                "bypass_levels must be between 1 and the register file latency"
            )
        self.read_stages = latency
        self.bypass_levels = resolved_bypass
        self.read_ports = PortSet(read_ports, kind="read")
        self.writes = WriteScheduler(write_ports, kind="write")
        self.name = name or (
            f"single-banked {latency}-cycle, {resolved_bypass}-bypass"
        )
        # statistics
        self.reads_from_bypass = 0
        self.reads_from_file = 0
        self.read_port_stalls = 0

    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        # Direct store instead of ``read_ports.begin_cycle()``: this runs
        # every simulated cycle and the method call is pure overhead.
        self.read_ports._used = 0
        if not cycle & 1023:
            self.writes.forget_before(cycle)

    # ------------------------------------------------------------------

    def plan_operand_read(
        self, register: PhysicalRegister, state: ValueState, issue_cycle: int
    ) -> OperandAccess:
        ex_start = issue_cycle + self.read_stages
        if state.ex_end_cycle is None:
            return OperandAccess(register, OperandSource.NOT_READY)
        earliest_ex = state.ex_end_cycle + 1 + (self.read_stages - self.bypass_levels)
        if ex_start < earliest_ex:
            return OperandAccess(
                register,
                OperandSource.NOT_READY,
                retry_cycle=earliest_ex - self.read_stages,
            )
        # The operand is obtainable.  It comes from the register file when
        # the read (starting at issue) can already see the written value;
        # otherwise it rides the bypass network.
        if state.rf_ready_cycle is not None and issue_cycle >= state.rf_ready_cycle:
            return OperandAccess(register, OperandSource.FILE)
        return OperandAccess(register, OperandSource.BYPASS)

    def can_claim_reads(self, accesses: Sequence[OperandAccess]) -> bool:
        needed = 0
        for access in accesses:
            if access.source is OperandSource.FILE:
                needed += 1
        if needed == 0:
            return True
        available = self.read_ports.available_capped(needed)
        if not available:
            self.read_port_stalls += 1
        return available

    def claim_reads(self, accesses: Sequence[OperandAccess]) -> None:
        needed = 0
        bypassed = 0
        for access in accesses:
            source = access.source
            if source is OperandSource.FILE:
                needed += 1
            elif source is OperandSource.BYPASS:
                bypassed += 1
        if needed:
            self.read_ports.claim_capped(needed)
        self.reads_from_file += needed
        self.reads_from_bypass += bypassed

    # ------------------------------------------------------------------

    def writeback(
        self,
        register: PhysicalRegister,
        state: ValueState,
        cycle: int,
        window,
    ) -> int:
        write_cycle = self.writes.schedule(cycle)
        return write_cycle

    # ------------------------------------------------------------------

    def describe(self) -> str:
        reads = "inf" if self.read_ports.unlimited else str(self.read_ports.count)
        writes = "inf" if self.writes.unlimited else str(self.writes.ports_per_cycle)
        return f"{self.name} ({reads}R/{writes}W)"

    def statistics(self) -> dict:
        return {
            "reads_from_bypass": self.reads_from_bypass,
            "reads_from_file": self.reads_from_file,
            "read_port_stalls": self.read_port_stalls,
            "write_delays": self.writes.delayed_writes,
        }
