"""Caching policies of the register file cache.

The caching policy decides, at write-back time, whether a result is also
written into the small uppermost bank (it is *always* written into the
lowest bank).  The paper proposes two policies:

* **non-bypass caching** — cache only results that were *not* delivered to
  a consumer through the bypass network.  The rationale is that most
  values are read at most once; if the single read was already satisfied
  by the bypass, the copy in the upper bank would be wasted space.
* **ready caching** — cache only results that are source operands of an
  instruction in the window that has not yet issued but now (with this
  result) has all its operands ready.  Such a value is certain to be read
  soon and cannot come from the bypass network anymore.

Two additional baseline policies are provided for ablation studies:
``AlwaysCaching`` (cache every result, LRU does the filtering — the
behaviour assumed by earlier register-cache work) and ``NeverCaching``
(the upper level is only filled by demand fetches/prefetches).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.execute.scoreboard import ValueState
from repro.rename.renamer import PhysicalRegister

if TYPE_CHECKING:  # pragma: no cover
    from repro.execute.issue_queue import IssueQueue


class CachingPolicy(ABC):
    """Decides which write-back results are cached in the uppermost bank."""

    name: str = "caching-policy"

    @abstractmethod
    def should_cache(
        self,
        register: PhysicalRegister,
        state: ValueState,
        window: "IssueQueue",
        cycle: int,
    ) -> bool:
        """Whether the result in ``register`` should be written to the
        uppermost level at write-back time (``cycle``)."""


class NonBypassCaching(CachingPolicy):
    """Cache results that were not read from the bypass network."""

    name = "non-bypass"

    def should_cache(
        self,
        register: PhysicalRegister,
        state: ValueState,
        window: "IssueQueue",
        cycle: int,
    ) -> bool:
        return not state.consumed_via_bypass


class ReadyCaching(CachingPolicy):
    """Cache results needed by a waiting instruction that is now ready."""

    name = "ready"

    def should_cache(
        self,
        register: PhysicalRegister,
        state: ValueState,
        window: "IssueQueue",
        cycle: int,
    ) -> bool:
        for entry in window.waiting_consumers_of(register):
            other_sources = [s for s in entry.renamed.sources if s != register]
            if all(window.scoreboard.get(src).produced for src in other_sources):
                return True
        return False


class AlwaysCaching(CachingPolicy):
    """Cache every result (baseline / ablation)."""

    name = "always"

    def should_cache(
        self,
        register: PhysicalRegister,
        state: ValueState,
        window: "IssueQueue",
        cycle: int,
    ) -> bool:
        return True


class NeverCaching(CachingPolicy):
    """Never cache results at write-back (fills/prefetches only)."""

    name = "never"

    def should_cache(
        self,
        register: PhysicalRegister,
        state: ValueState,
        window: "IssueQueue",
        cycle: int,
    ) -> bool:
        return False


_POLICIES: dict[str, type[CachingPolicy]] = {
    NonBypassCaching.name: NonBypassCaching,
    ReadyCaching.name: ReadyCaching,
    AlwaysCaching.name: AlwaysCaching,
    NeverCaching.name: NeverCaching,
}


def caching_policy_by_name(name: str) -> CachingPolicy:
    """Instantiate a caching policy from its short name.

    Raises
    ------
    ConfigurationError
        If the name is unknown.
    """
    try:
        return _POLICIES[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown caching policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from exc
