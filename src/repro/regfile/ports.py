"""Port accounting helpers.

Two small utilities shared by the register file architectures:

* :class:`PortSet` — a per-cycle counter of read (or write) ports that is
  reset at the start of every cycle; ``None`` means "unlimited".
* :class:`WriteScheduler` — schedules result writes onto a limited number
  of write ports, returning for each result the cycle at which it is
  actually written (and therefore readable from the bank).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigurationError, RegisterFileError


class PortSet:
    """A pool of identical ports consumed within a single cycle."""

    def __init__(self, count: Optional[int], kind: str = "read") -> None:
        if count is not None and count <= 0:
            raise ConfigurationError(f"{kind} port count must be positive or None")
        self.count = count
        self.kind = kind
        self._used = 0
        # statistics
        self.total_claims = 0
        self.denied_claims = 0

    @property
    def unlimited(self) -> bool:
        return self.count is None

    @property
    def used(self) -> int:
        return self._used

    def begin_cycle(self) -> None:
        self._used = 0

    def available(self, amount: int = 1) -> bool:
        if amount < 0:
            raise RegisterFileError("cannot request a negative number of ports")
        if self.unlimited:
            return True
        return self._used + amount <= self.count

    def claim(self, amount: int = 1) -> None:
        """Consume ``amount`` ports; callers must check :meth:`available`."""
        if not self.available(amount):
            self.denied_claims += 1
            raise RegisterFileError(
                f"over-subscribed {self.kind} ports: {self._used}+{amount} > {self.count}"
            )
        self._used += amount
        self.total_claims += amount

    def try_claim(self, amount: int = 1) -> bool:
        """Claim ports if available; returns whether the claim succeeded."""
        if not self.available(amount):
            self.denied_claims += 1
            return False
        self._used += amount
        self.total_claims += amount
        return True

    # An instruction may need more operands than the bank has ports (e.g. a
    # two-operand instruction reading a single-read-port bank).  Such a read
    # is serialised over consecutive cycles; it can only start when the bank
    # is otherwise idle, and it consumes the whole port budget of the cycle.

    def available_capped(self, amount: int) -> bool:
        """Like :meth:`available`, but oversized requests are allowed when
        the bank has not been used yet this cycle."""
        if self.unlimited or amount <= (self.count or 0):
            return self.available(amount)
        return self._used == 0

    def claim_capped(self, amount: int) -> None:
        """Claim up to the full port budget for a possibly oversized request."""
        if self.unlimited or amount <= (self.count or 0):
            self.claim(amount)
            return
        if self._used != 0:
            self.denied_claims += 1
            raise RegisterFileError(
                f"oversized {self.kind} request while the bank is busy"
            )
        self._used = self.count or amount
        self.total_claims += amount


class WriteScheduler:
    """Schedules writes onto a limited number of write ports per cycle."""

    def __init__(self, ports_per_cycle: Optional[int], kind: str = "write") -> None:
        if ports_per_cycle is not None and ports_per_cycle <= 0:
            raise ConfigurationError(f"{kind} port count must be positive or None")
        self.ports_per_cycle = ports_per_cycle
        self.kind = kind
        self._scheduled: Dict[int, int] = {}
        # statistics
        self.total_writes = 0
        self.delayed_writes = 0
        self.total_delay_cycles = 0

    @property
    def unlimited(self) -> bool:
        return self.ports_per_cycle is None

    def schedule(self, requested_cycle: int) -> int:
        """Reserve a write port at the earliest cycle >= ``requested_cycle``.

        Returns the cycle at which the write actually happens.
        """
        self.total_writes += 1
        if self.unlimited:
            return requested_cycle
        cycle = requested_cycle
        while self._scheduled.get(cycle, 0) >= self.ports_per_cycle:
            cycle += 1
        self._scheduled[cycle] = self._scheduled.get(cycle, 0) + 1
        if cycle != requested_cycle:
            self.delayed_writes += 1
            self.total_delay_cycles += cycle - requested_cycle
        return cycle

    def ports_free(self, cycle: int) -> bool:
        """Whether at least one port is still free at ``cycle``."""
        if self.unlimited:
            return True
        return self._scheduled.get(cycle, 0) < self.ports_per_cycle

    def reserve(self, cycle: int) -> bool:
        """Reserve a port exactly at ``cycle`` if one is free."""
        if self.unlimited:
            return True
        if self._scheduled.get(cycle, 0) >= self.ports_per_cycle:
            return False
        self._scheduled[cycle] = self._scheduled.get(cycle, 0) + 1
        self.total_writes += 1
        return True

    def forget_before(self, cycle: int) -> None:
        """Drop bookkeeping for cycles before ``cycle`` (keeps memory flat)."""
        if not self._scheduled:
            return
        for key in [c for c in self._scheduled if c < cycle]:
            del self._scheduled[key]
