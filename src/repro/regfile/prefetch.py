"""Fetch/prefetch policies of the register file cache.

Both policies service *demand* fills: when an instruction has all its
operands ready but one of them lives only in the lowest bank, a fill is
requested over a free bus (the instruction then waits for the transfer).
The difference is whether values are additionally *prefetched*:

* **fetch-on-demand** — no prefetching; operands are brought up only when
  a ready instruction needs them.
* **prefetch-first-pair** — when an instruction issues, the *other*
  source operand of the first (oldest) instruction in the window that
  consumes its result is prefetched into the uppermost level, so that by
  the time the consumer becomes ready its second operand is already
  there.  This is the scheme proposed in Section 3 of the paper.
"""

from __future__ import annotations

from abc import ABC
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.execute.issue_queue import IssueQueue, IssueQueueEntry
    from repro.execute.scoreboard import ValueScoreboard
    from repro.regfile.cache import RegisterFileCache


class FetchPolicy(ABC):
    """Decides when values are moved from the lowest to the uppermost bank."""

    name: str = "fetch-policy"

    def on_issue(
        self,
        regfile: "RegisterFileCache",
        entry: "IssueQueueEntry",
        cycle: int,
        window: "IssueQueue",
        scoreboard: "ValueScoreboard",
    ) -> None:
        """Hook called when ``entry`` is issued (prefetch opportunity)."""


class FetchOnDemand(FetchPolicy):
    """Only demand fills; no prefetching."""

    name = "fetch-on-demand"


class PrefetchFirstPair(FetchPolicy):
    """Prefetch the other operand of the first consumer of an issued result."""

    name = "prefetch-first-pair"

    def on_issue(
        self,
        regfile: "RegisterFileCache",
        entry: "IssueQueueEntry",
        cycle: int,
        window: "IssueQueue",
        scoreboard: "ValueScoreboard",
    ) -> None:
        dest = entry.renamed.dest
        if dest is None:
            return
        consumers = window.waiting_consumers_of(dest)
        if not consumers:
            return
        first = min(consumers, key=lambda candidate: candidate.seq)
        for other in first.renamed.sources:
            if other == dest:
                continue
            if other.reg_class is not dest.reg_class:
                # The other operand lives in the other register file (e.g. an
                # integer base address feeding an FP load); this register
                # file cannot prefetch it.
                continue
            if not scoreboard.contains(other):
                continue
            state = scoreboard.get(other)
            if not state.written_back:
                continue  # still in flight; it will be cached or bypassed
            if regfile.present_in_upper(other):
                continue
            regfile.request_fill(other, state, cycle, prefetch=True)


_POLICIES: dict[str, type[FetchPolicy]] = {
    FetchOnDemand.name: FetchOnDemand,
    PrefetchFirstPair.name: PrefetchFirstPair,
}


def fetch_policy_by_name(name: str) -> FetchPolicy:
    """Instantiate a fetch policy from its short name.

    Raises
    ------
    ConfigurationError
        If the name is unknown.
    """
    try:
        return _POLICIES[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown fetch policy {name!r}; expected one of {sorted(_POLICIES)}"
        ) from exc


def optional_fetch_policy(policy: Optional[FetchPolicy]) -> FetchPolicy:
    """Return ``policy`` or the default fetch-on-demand policy."""
    return policy if policy is not None else FetchOnDemand()
