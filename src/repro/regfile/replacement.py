"""Pseudo-LRU replacement for the fully-associative upper bank.

The paper specifies a fully-associative upper level with pseudo-LRU
replacement.  For the small capacities involved (16 registers) a
tree-based pseudo-LRU is modelled: entries are arranged at the leaves of
a complete binary tree whose internal nodes each hold one bit pointing
towards the "colder" half; a victim is found by following the bits, and a
touch flips the bits along the path away from the touched leaf.
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, List, Optional, TypeVar

from repro.errors import ConfigurationError, RegisterFileError

KeyT = TypeVar("KeyT", bound=Hashable)


class PseudoLRU(Generic[KeyT]):
    """Tree pseudo-LRU over a fixed number of ways."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ConfigurationError("PseudoLRU capacity must be a positive power of two")
        self.capacity = capacity
        self._bits: List[int] = [0] * max(1, capacity - 1)
        #: Resident keys -> slot.  Never rebound; the register file cache
        #: reads it directly for residency checks.
        self._slot_of: Dict[KeyT, int] = {}
        self._key_at: List[Optional[KeyT]] = [None] * capacity
        # The tree path touched for each slot is fixed by the geometry;
        # precompute the (node, bit) updates so a touch is straight-line
        # stores instead of per-level interval arithmetic.
        self._touch_paths: List[tuple] = []
        for slot in range(capacity):
            path = []
            node, low, high = 0, 0, capacity
            while high - low > 1:
                mid = (low + high) // 2
                if slot < mid:
                    path.append((node, 1))  # cold side is the right half
                    node, high = 2 * node + 1, mid
                else:
                    path.append((node, 0))  # cold side is the left half
                    node, low = 2 * node + 2, mid
            self._touch_paths.append(tuple(path))

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, key: KeyT) -> bool:
        return key in self._slot_of

    @property
    def full(self) -> bool:
        return len(self._slot_of) >= self.capacity

    def keys(self) -> List[KeyT]:
        return list(self._slot_of)

    # ------------------------------------------------------------------

    def _touch_slot(self, slot: int) -> None:
        """Flip the tree bits along the path so they point away from ``slot``."""
        bits = self._bits
        for node, bit in self._touch_paths[slot]:
            bits[node] = bit

    def _victim_slot(self) -> int:
        """Follow the bits to the pseudo-least-recently-used slot."""
        if self.capacity == 1:
            return 0
        node = 0
        low, high = 0, self.capacity
        while high - low > 1:
            mid = (low + high) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        return low

    # ------------------------------------------------------------------

    def touch(self, key: KeyT) -> None:
        """Mark ``key`` as recently used.

        Raises
        ------
        RegisterFileError
            If ``key`` is not currently resident.
        """
        slot = self._slot_of.get(key)
        if slot is None:
            raise RegisterFileError(f"cannot touch non-resident key {key!r}")
        self._touch_slot(slot)

    def insert(self, key: KeyT, can_evict=None) -> Optional[KeyT]:
        """Insert ``key``; returns the evicted key (or ``None``).

        Inserting a resident key just touches it.  ``can_evict`` is an
        optional predicate over candidate victims: candidates it rejects
        are touched (marked hot) and another victim is tried, up to one
        pass over the ways; if every way is rejected the last candidate is
        evicted anyway so insertion always makes forward progress.
        """
        if key in self._slot_of:
            self.touch(key)
            return None
        evicted: Optional[KeyT] = None
        if self.full:
            slot = self._victim_slot()
            if can_evict is not None:
                for _ in range(self.capacity):
                    candidate = self._key_at[slot]
                    if candidate is None or can_evict(candidate):
                        break
                    self._touch_slot(slot)
                    slot = self._victim_slot()
            evicted = self._key_at[slot]
            if evicted is not None:
                del self._slot_of[evicted]
        else:
            slot = next(i for i, k in enumerate(self._key_at) if k is None)
        self._key_at[slot] = key
        self._slot_of[key] = slot
        self._touch_slot(slot)
        return evicted

    def remove(self, key: KeyT) -> bool:
        """Remove ``key`` if resident; returns whether it was present."""
        slot = self._slot_of.pop(key, None)
        if slot is None:
            return False
        self._key_at[slot] = None
        return True
