"""Register renaming: map table, free list and the renamer."""

from repro.rename.free_list import FreeList
from repro.rename.map_table import MapTable
from repro.rename.renamer import Renamer, RenamedInstruction

__all__ = ["FreeList", "MapTable", "Renamer", "RenamedInstruction"]
