"""Free list of physical registers."""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import ConfigurationError, RenameError


class FreeList:
    """FIFO free list of physical register identifiers.

    Physical registers are plain integers.  The free list is a FIFO so
    register identifiers are recycled in a round-robin fashion, which is
    both realistic and makes simulations deterministic.
    """

    def __init__(self, registers: Iterable[int],
                 valid_registers: Iterable[int] | None = None) -> None:
        """Create a free list.

        Parameters
        ----------
        registers:
            Registers that are free initially.
        valid_registers:
            The full register space this pool manages (registers that are
            currently mapped may be released into the pool later).
            Defaults to ``registers``.
        """
        self._free = deque(registers)
        initially_free = set(self._free)
        if len(initially_free) != len(self._free):
            raise ConfigurationError("free list initialized with duplicate registers")
        self._valid = set(valid_registers) if valid_registers is not None else set(initially_free)
        if not initially_free <= self._valid:
            raise ConfigurationError("initially free registers must be within the valid set")

    def __len__(self) -> int:
        return len(self._free)

    @property
    def empty(self) -> bool:
        return not self._free

    def allocate(self) -> int:
        """Pop a free physical register.

        Raises
        ------
        RenameError
            If no register is free (the caller must check first).
        """
        if not self._free:
            raise RenameError("free list underflow")
        return self._free.popleft()

    def release(self, register: int) -> None:
        """Return a physical register to the pool.

        Raises
        ------
        RenameError
            If the register is already free (double release) or was never
            part of this free list's register space.
        """
        if register not in self._valid:
            raise RenameError(f"physical register {register} does not belong to this pool")
        if register in self._free:
            raise RenameError(f"double release of physical register {register}")
        self._free.append(register)

    def contains(self, register: int) -> bool:
        """Whether ``register`` is currently free."""
        return register in self._free

    def snapshot(self) -> tuple[int, ...]:
        """Immutable snapshot of the current free registers (for checkpoints)."""
        return tuple(self._free)

    def restore(self, snapshot: tuple[int, ...]) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        self._free = deque(snapshot)
