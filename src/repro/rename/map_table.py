"""Logical → physical register map table with checkpointing."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import RenameError
from repro.isa.instruction import NUM_LOGICAL_PER_CLASS, LogicalRegister


class MapTable:
    """The speculative rename map from logical to physical registers.

    Storage is dual: an authoritative dictionary (checkpoints, iteration)
    and a flat slot list indexed by the register's cached integer hash
    (``(index << 1) | is_fp``) for the per-source lookup on the rename
    hot path.
    """

    _NUM_SLOTS = NUM_LOGICAL_PER_CLASS * 2

    def __init__(self, initial: Dict[LogicalRegister, int] | None = None) -> None:
        self._map: Dict[LogicalRegister, int] = dict(initial or {})
        self._slots: List[Optional[int]] = [None] * self._NUM_SLOTS
        for register, physical in self._map.items():
            self._slots[register._hash] = physical

    def lookup(self, register: LogicalRegister) -> int:
        """Return the physical register currently mapped to ``register``.

        Raises
        ------
        RenameError
            If the logical register has no mapping (the renamer always
            seeds an initial mapping, so this indicates a bug).
        """
        physical = self._slots[register._hash]
        if physical is None:
            raise RenameError(f"logical register {register} has no mapping")
        return physical

    def contains(self, register: LogicalRegister) -> bool:
        return register in self._map

    def update(self, register: LogicalRegister, physical: int) -> int | None:
        """Map ``register`` to ``physical``; returns the previous mapping."""
        previous = self._map.get(register)
        self._map[register] = physical
        self._slots[register._hash] = physical
        return previous

    def mapped_physical_registers(self) -> set[int]:
        """The set of physical registers currently mapped."""
        return set(self._map.values())

    def checkpoint(self) -> Dict[LogicalRegister, int]:
        """Return a copy of the current mapping (branch checkpoint)."""
        return dict(self._map)

    def restore(self, checkpoint: Dict[LogicalRegister, int]) -> None:
        """Restore a mapping copied with :meth:`checkpoint`."""
        self._map = dict(checkpoint)
        self._slots = [None] * self._NUM_SLOTS
        for register, physical in self._map.items():
            self._slots[register._hash] = physical

    def items(self) -> Iterable[tuple[LogicalRegister, int]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)
