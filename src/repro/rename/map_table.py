"""Logical → physical register map table with checkpointing."""

from __future__ import annotations

from typing import Dict, Iterable

from repro.errors import RenameError
from repro.isa.instruction import LogicalRegister


class MapTable:
    """The speculative rename map from logical to physical registers."""

    def __init__(self, initial: Dict[LogicalRegister, int] | None = None) -> None:
        self._map: Dict[LogicalRegister, int] = dict(initial or {})

    def lookup(self, register: LogicalRegister) -> int:
        """Return the physical register currently mapped to ``register``.

        Raises
        ------
        RenameError
            If the logical register has no mapping (the renamer always
            seeds an initial mapping, so this indicates a bug).
        """
        try:
            return self._map[register]
        except KeyError as exc:
            raise RenameError(f"logical register {register} has no mapping") from exc

    def contains(self, register: LogicalRegister) -> bool:
        return register in self._map

    def update(self, register: LogicalRegister, physical: int) -> int | None:
        """Map ``register`` to ``physical``; returns the previous mapping."""
        previous = self._map.get(register)
        self._map[register] = physical
        return previous

    def mapped_physical_registers(self) -> set[int]:
        """The set of physical registers currently mapped."""
        return set(self._map.values())

    def checkpoint(self) -> Dict[LogicalRegister, int]:
        """Return a copy of the current mapping (branch checkpoint)."""
        return dict(self._map)

    def restore(self, checkpoint: Dict[LogicalRegister, int]) -> None:
        """Restore a mapping copied with :meth:`checkpoint`."""
        self._map = dict(checkpoint)

    def items(self) -> Iterable[tuple[LogicalRegister, int]]:
        return self._map.items()

    def __len__(self) -> int:
        return len(self._map)
