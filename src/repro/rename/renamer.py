"""The register renamer.

Dynamically scheduled processors rename logical to physical registers at
decode so every in-flight result gets its own physical register (Section
2 of the paper).  The renamer here keeps one map table and one free list
per register class (integer and floating point), supports checkpointing
for recovery, and records the *previous* mapping of each destination so
the physical register can be released when the next writer of the same
logical register commits (the paper's "registers are released late"
observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError, RenameError
from repro.isa.instruction import (
    DynamicInstruction,
    LogicalRegister,
    RegisterClass,
    INT_LOGICAL_REGISTERS,
    FP_LOGICAL_REGISTERS,
)
from repro.rename.free_list import FreeList
from repro.rename.map_table import MapTable


@dataclass(frozen=True)
class PhysicalRegister:
    """A physical register identifier (register class + index)."""

    reg_class: RegisterClass
    index: int

    def __post_init__(self) -> None:
        # Physical registers key the scoreboard, the wakeup/consumer
        # indexes and the register-file-cache structures — the hottest
        # dictionaries in the simulator.  The generated dataclass hash
        # allocates a tuple per call; cache an equality-consistent
        # integer instead.  ``uid`` is the same integer under its public
        # name: the hot structures key their dictionaries by it directly,
        # which hashes at C speed instead of through this class's
        # Python-level ``__hash__``.
        uid = (self.index << 1) | (self.reg_class is RegisterClass.FP)
        object.__setattr__(self, "_hash", uid)
        object.__setattr__(self, "uid", uid)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        prefix = "p" if self.reg_class is RegisterClass.INT else "pf"
        return f"{prefix}{self.index}"


@dataclass(slots=True)
class RenamedInstruction:
    """A dynamic instruction after renaming."""

    instruction: DynamicInstruction
    sources: tuple[PhysicalRegister, ...] = ()
    dest: Optional[PhysicalRegister] = None
    previous_dest: Optional[PhysicalRegister] = None
    #: Pipeline-attached collaborators, kept as plain slots instead of an
    #: annotations dictionary: one dictionary per renamed instruction was
    #: pure allocation churn on the hot path.  ``fetched`` is the
    #: front-end record of this instruction; ``dest_state`` the
    #: scoreboard state of ``dest``, resolved once at dispatch.
    fetched: Optional[object] = None
    dest_state: Optional[object] = None

    @property
    def seq(self) -> int:
        return self.instruction.seq


class Renamer:
    """Renames logical registers of a dynamic instruction stream."""

    def __init__(self, num_int_physical: int = 128, num_fp_physical: int = 128) -> None:
        num_logical = len(INT_LOGICAL_REGISTERS)
        if num_int_physical <= num_logical or num_fp_physical <= num_logical:
            raise ConfigurationError(
                f"need more physical than logical registers "
                f"({num_logical} logical per class)"
            )
        self.num_int_physical = num_int_physical
        self.num_fp_physical = num_fp_physical

        self._map: Dict[RegisterClass, MapTable] = {}
        self._free: Dict[RegisterClass, FreeList] = {}
        self._checkpoints: Dict[int, dict] = {}
        self._next_checkpoint_id = 0

        for reg_class, count, logicals in (
            (RegisterClass.INT, num_int_physical, INT_LOGICAL_REGISTERS),
            (RegisterClass.FP, num_fp_physical, FP_LOGICAL_REGISTERS),
        ):
            initial = {logical: i for i, logical in enumerate(logicals)}
            self._map[reg_class] = MapTable(initial)
            self._free[reg_class] = FreeList(
                range(len(logicals), count), valid_registers=range(count)
            )

        # Hot-path shortcuts: renaming happens for every dispatched
        # instruction, so skip the enum-keyed dictionary hops and reuse
        # one interned PhysicalRegister object per (class, index) instead
        # of allocating a fresh one per source operand.
        self._int_map = self._map[RegisterClass.INT]
        self._fp_map = self._map[RegisterClass.FP]
        self._int_free = self._free[RegisterClass.INT]
        self._fp_free = self._free[RegisterClass.FP]
        self._int_physical: tuple[PhysicalRegister, ...] = tuple(
            PhysicalRegister(RegisterClass.INT, i) for i in range(num_int_physical)
        )
        self._fp_physical: tuple[PhysicalRegister, ...] = tuple(
            PhysicalRegister(RegisterClass.FP, i) for i in range(num_fp_physical)
        )
        # Direct views of the map tables' slot lists (rebound only by
        # ``MapTable.restore``, which the pipeline never calls on the hot
        # path — re-fetched per rename below at attribute-access cost).

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def free_count(self, reg_class: RegisterClass) -> int:
        """Number of currently free physical registers of ``reg_class``."""
        return len(self._free[reg_class])

    def can_rename(self, instruction: DynamicInstruction) -> bool:
        """Whether a free destination register is available for ``instruction``."""
        dest = instruction.dest
        if dest is None:
            return True
        free = (self._int_free if dest.reg_class is RegisterClass.INT
                else self._fp_free)
        return not free.empty

    def current_mapping(self, register: LogicalRegister) -> PhysicalRegister:
        if register.reg_class is RegisterClass.INT:
            return self._int_physical[self._int_map.lookup(register)]
        return self._fp_physical[self._fp_map.lookup(register)]

    # ------------------------------------------------------------------
    # renaming
    # ------------------------------------------------------------------

    def rename(self, instruction: DynamicInstruction) -> RenamedInstruction:
        """Rename one instruction (sources first, then the destination).

        Raises
        ------
        RenameError
            If no free physical register is available for the destination;
            callers should check :meth:`can_rename` first.
        """
        int_physical = self._int_physical
        fp_physical = self._fp_physical
        int_slots = self._int_map._slots
        fp_slots = self._fp_map._slots
        sources = tuple(
            int_physical[int_slots[src._hash]]
            if src.reg_class is RegisterClass.INT
            else fp_physical[fp_slots[src._hash]]
            for src in instruction.sources
        )
        dest: Optional[PhysicalRegister] = None
        previous: Optional[PhysicalRegister] = None
        if instruction.dest is not None:
            reg_class = instruction.dest.reg_class
            if reg_class is RegisterClass.INT:
                free_list, table, physical = (
                    self._int_free, self._int_map, self._int_physical)
            else:
                free_list, table, physical = (
                    self._fp_free, self._fp_map, self._fp_physical)
            if free_list.empty:
                raise RenameError(
                    f"no free {reg_class.value} physical register for seq "
                    f"{instruction.seq}"
                )
            new_index = free_list.allocate()
            old_index = table.update(instruction.dest, new_index)
            dest = physical[new_index]
            if old_index is not None:
                previous = physical[old_index]
        return RenamedInstruction(
            instruction=instruction,
            sources=sources,
            dest=dest,
            previous_dest=previous,
        )

    # ------------------------------------------------------------------
    # retirement / recovery
    # ------------------------------------------------------------------

    def commit(self, renamed: RenamedInstruction) -> Optional[PhysicalRegister]:
        """Commit ``renamed``: release the previous mapping of its destination.

        Returns the released physical register (or ``None``).
        """
        if renamed.previous_dest is None:
            return None
        self._free[renamed.previous_dest.reg_class].release(renamed.previous_dest.index)
        return renamed.previous_dest

    def squash(self, renamed: RenamedInstruction) -> None:
        """Undo the rename of a squashed (never committed) instruction.

        The *new* destination register is returned to the free list and
        the previous mapping is restored, provided the instruction is
        squashed in reverse program order (youngest first).
        """
        if renamed.dest is None:
            return
        reg_class = renamed.dest.reg_class
        current = self._map[reg_class].lookup(renamed.instruction.dest)
        if current != renamed.dest.index:
            raise RenameError(
                "squash must proceed youngest-first; mapping already overwritten"
            )
        if renamed.previous_dest is not None:
            self._map[reg_class].update(renamed.instruction.dest, renamed.previous_dest.index)
        self._free[reg_class].release(renamed.dest.index)

    def checkpoint(self) -> int:
        """Take a checkpoint of the full rename state; returns its id."""
        checkpoint_id = self._next_checkpoint_id
        self._next_checkpoint_id += 1
        self._checkpoints[checkpoint_id] = {
            reg_class: (self._map[reg_class].checkpoint(), self._free[reg_class].snapshot())
            for reg_class in (RegisterClass.INT, RegisterClass.FP)
        }
        return checkpoint_id

    def restore(self, checkpoint_id: int) -> None:
        """Restore a checkpoint taken with :meth:`checkpoint`."""
        try:
            saved = self._checkpoints.pop(checkpoint_id)
        except KeyError as exc:
            raise RenameError(f"unknown checkpoint {checkpoint_id}") from exc
        for reg_class, (mapping, free) in saved.items():
            self._map[reg_class].restore(mapping)
            self._free[reg_class].restore(free)

    def discard_checkpoint(self, checkpoint_id: int) -> None:
        """Drop a checkpoint that is no longer needed."""
        self._checkpoints.pop(checkpoint_id, None)

    # ------------------------------------------------------------------

    def in_use_registers(self, reg_class: RegisterClass) -> int:
        """Number of physical registers currently not free."""
        total = self.num_int_physical if reg_class is RegisterClass.INT else self.num_fp_physical
        return total - len(self._free[reg_class])
