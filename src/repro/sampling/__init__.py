"""Systematic interval sampling with confidence intervals.

SMARTS/SimPoint-style sampling over a recorded
:class:`~repro.trace.schema.DecodedTrace`: short detailed windows at a
fixed stride, cheap functional fast-forward between them, and an IPC
estimate with error bars instead of a point value.  Exact simulation
remains the default everywhere; sampling is opt-in per point via a
:class:`SamplingSpec` (``--sample stride:window[:warmup]`` on the
experiment runner, ``"sample"`` on service job submissions).

Protocol invariants the rest of the stack relies on:

* **Confidence-interval semantics** — the reported interval is a
  two-sided Student-t interval over the *per-window IPCs*:
  ``mean ± t(confidence, n-1) · s / sqrt(n)`` with the sample standard
  deviation (``ddof=1``).  Windows are equal-size by construction, so
  the unweighted mean is the systematic-sampling estimator.  Supported
  confidence levels are exactly the committed t-tables (0.90, 0.95,
  0.99).  The accuracy contract — validated by ``repro.validate
  --sampled-accuracy`` over the 10-architecture differential matrix —
  is that the interval contains the full-run IPC.
* **Window placement** — window ``k`` targets offset ``k · stride`` and
  snaps forward to the next fetch-event boundary (fetch groups are
  indivisible); a spec that places fewer than two windows is rejected
  (:class:`~repro.errors.ConfigurationError`), never silently degraded.
* **Warm-up neutrality** — functional warm-up touches rename, the
  scoreboard, the register-file model and the data cache only, at
  negative cycle numbers, and must not contribute to any window
  statistic (data-cache counters are zeroed after warming; value-read
  accounting is skipped on warm releases).
* **Checkpoint addressing** — a :class:`TraceCheckpoint` is
  content-addressed by ``(trace key, position, schema version)`` and
  stored through the sharded :class:`~repro.trace.store.TraceStore`;
  corrupt or schema-mismatched stored checkpoints load as ``None``
  (cache miss), mirroring trace-store quarantine semantics.  Resume
  from a checkpoint reproduces the commit-record *suffix* of a full run
  byte for byte, because commit records are pure per-instruction.

``python -m repro.sampling --list`` prints the knobs and their valid
ranges; ``--spec STRIDE:WINDOW[:WARMUP]`` validates a spec offline.
"""

from repro.sampling.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    TraceCheckpoint,
    build_checkpoint,
    build_checkpoints,
    checkpoint_key,
    load_checkpoint,
    resume_simulate,
    store_checkpoint,
)
from repro.sampling.engine import (
    confidence_interval,
    functional_warmup,
    sampled_simulate,
    t_critical,
    window_plan,
)
from repro.sampling.spec import (
    MIN_SAMPLED_STREAM,
    SUPPORTED_CONFIDENCE_LEVELS,
    SamplingSpec,
    parse_sampling,
    quick_sampling,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "MIN_SAMPLED_STREAM",
    "SUPPORTED_CONFIDENCE_LEVELS",
    "SamplingSpec",
    "TraceCheckpoint",
    "build_checkpoint",
    "build_checkpoints",
    "checkpoint_key",
    "confidence_interval",
    "functional_warmup",
    "load_checkpoint",
    "parse_sampling",
    "quick_sampling",
    "resume_simulate",
    "sampled_simulate",
    "store_checkpoint",
    "t_critical",
    "window_plan",
]
