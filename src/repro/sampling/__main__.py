"""CLI introspection for the sampling subsystem.

``python -m repro.sampling --list`` prints the sampling knobs, their
valid ranges and the supported confidence levels; ``--spec
STRIDE:WINDOW[:WARMUP]`` validates a spec string exactly as the
experiment runner and the service admission layer would, printing the
resolved spec payload as JSON.  Invalid specs exit with status 2 and a
one-line ``error:`` message — never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.sampling.spec import (
    SUPPORTED_CONFIDENCE_LEVELS,
    SamplingSpec,
    parse_sampling,
)

_KNOBS = (
    ("stride", "instructions between detailed-window starts (positive int)"),
    ("window", "detailed instructions per window (positive int, <= stride)"),
    ("warmup", "functional warm-up instructions per window "
               "(non-negative int; default: one window)"),
    ("confidence", "confidence level of the IPC interval "
                   f"(one of {', '.join(str(c) for c in SUPPORTED_CONFIDENCE_LEVELS)})"),
    ("target_half_width", "optional relative half-width target in (0, 1); "
                          "stops adding windows once reached"),
    ("min_windows", "windows simulated before adaptive stopping (int >= 2)"),
    ("max_windows", "hard cap on the window count (int >= min_windows)"),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sampling",
        description="Inspect and validate systematic-sampling specifications.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list the sampling knobs, valid ranges and confidence levels",
    )
    parser.add_argument(
        "--spec",
        metavar="STRIDE:WINDOW[:WARMUP]",
        help="validate a sampling spec string and print its resolved payload",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.list and args.spec is None:
        parser.print_help()
        return 0
    if args.list:
        print("sampling knobs (CLI form: --sample STRIDE:WINDOW[:WARMUP]):")
        for name, description in _KNOBS:
            print(f"  {name:<18} {description}")
        defaults = SamplingSpec(stride=2, window=1)
        print(
            "defaults: confidence "
            f"{defaults.confidence}, min_windows {defaults.min_windows}, "
            "warmup = window, no half-width target, no window cap"
        )
    if args.spec is not None:
        try:
            spec = parse_sampling(args.spec)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(json.dumps(spec.to_payload(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
