"""Trace-level architectural checkpoints for mid-stream resume.

A :class:`TraceCheckpoint` pins one *position* in a decoded trace — an
instruction offset snapped to a fetch-event boundary — together with
everything needed to start a detailed simulation there without
replaying the prefix:

* the **symbolic architectural register state** at the position: each
  logical register → the sequence number of its youngest writer among
  ``instructions[:position]`` (the simulator is timing-only, so this is
  the full architectural contract — the same symbolic state every
  correct pipeline run reaches after committing the prefix), and
* the **warm-up seed**: the offset the functional warm-up replay should
  start from (``position - warmup``, clamped to 0), so microarchitected
  state (map table, RFC content, data cache) is warm when timing starts.

Checkpoints are content-addressed (trace key + position + schema
version) and stored through the existing sharded :class:`TraceStore`
payload API; a corrupt or schema-mismatched stored checkpoint loads as
``None`` — a cache miss, never an error — mirroring the store's trace
semantics.

Commit-suffix equality: because commit records are pure per-instruction
functions (see :func:`repro.validate.observer.commit_record`), a resumed
run's commit stream is exactly the ``instructions[position:]`` suffix of
a full run's stream, and its final architectural state merged over the
checkpoint's ``register_state`` equals the full run's final state.
``tests/test_sampling_checkpoint.py`` locks both properties down.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.pipeline.stats import SimulationStats
from repro.sampling.engine import event_offsets, functional_warmup, window_plan
from repro.sampling.spec import SamplingSpec
from repro.trace.schema import DecodedTrace

#: Bump whenever the checkpoint payload layout changes; mismatching
#: stored checkpoints are treated as cache misses, never as errors.
CHECKPOINT_SCHEMA_VERSION = 1


def checkpoint_key(trace_key: str, position: int) -> str:
    """Content hash identifying one checkpoint of one trace."""
    payload = {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "kind": "trace-checkpoint",
        "trace": trace_key,
        "position": position,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TraceCheckpoint:
    """Architectural state + warm-up seed at one trace position.

    ``register_state`` uses the observer's stringified register keys
    (``"r5"``, ``"f12"`` → youngest writer seq), so it merges directly
    with :meth:`CommitStreamAccumulator.state_snapshot` output.
    """

    trace_key: str
    position: int
    event_index: int
    warmup_start: int
    register_state: Dict[str, int]

    @property
    def key(self) -> str:
        return checkpoint_key(self.trace_key, self.position)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serializable payload (inverse of :meth:`from_payload`)."""
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "trace_key": self.trace_key,
            "position": self.position,
            "event_index": self.event_index,
            "warmup_start": self.warmup_start,
            "register_state": dict(self.register_state),
        }

    @classmethod
    def from_payload(cls, payload) -> "TraceCheckpoint":
        """Rebuild a checkpoint from :meth:`to_payload` output.

        Raises
        ------
        SimulationError
            On schema mismatch or a structurally invalid payload.
        """
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CHECKPOINT_SCHEMA_VERSION
        ):
            raise SimulationError(
                "checkpoint payload schema "
                f"{payload.get('schema') if isinstance(payload, dict) else payload!r} "
                f"!= {CHECKPOINT_SCHEMA_VERSION}"
            )
        try:
            checkpoint = cls(
                trace_key=payload["trace_key"],
                position=int(payload["position"]),
                event_index=int(payload["event_index"]),
                warmup_start=int(payload["warmup_start"]),
                register_state={
                    str(register): int(seq)
                    for register, seq in payload["register_state"].items()
                },
            )
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise SimulationError(
                f"malformed checkpoint payload: {error}"
            ) from error
        if checkpoint.position < 0 or checkpoint.event_index < 0:
            raise SimulationError("malformed checkpoint payload: negative position")
        if not 0 <= checkpoint.warmup_start <= checkpoint.position:
            raise SimulationError(
                "malformed checkpoint payload: warmup_start outside prefix"
            )
        return checkpoint


# ----------------------------------------------------------------------
# building
# ----------------------------------------------------------------------

def _register_state(trace: DecodedTrace, position: int) -> Dict[str, int]:
    """Youngest-writer map over the prefix, observer-key encoded."""
    state: Dict[str, int] = {}
    for instruction in trace.instructions[:position]:
        if instruction.dest is not None:
            state[str(instruction.dest)] = instruction.seq
    return state


def build_checkpoint(
    trace: DecodedTrace, position: int, warmup: int
) -> TraceCheckpoint:
    """Checkpoint the trace at the event boundary at or past ``position``.

    Raises
    ------
    SimulationError
        When no event boundary at or past ``position`` exists.
    """
    if position < 0:
        raise SimulationError(f"checkpoint position {position} is negative")
    offsets = event_offsets(trace)
    index = bisect_left(offsets, position)
    if index >= len(offsets):
        raise SimulationError(
            f"checkpoint position {position} is past the last fetch event "
            f"of trace {trace.name!r} ({len(trace.instructions)} instructions)"
        )
    snapped = offsets[index]
    return TraceCheckpoint(
        trace_key=trace.key,
        position=snapped,
        event_index=index,
        warmup_start=max(0, snapped - warmup),
        register_state=_register_state(trace, snapped),
    )


def build_checkpoints(
    trace: DecodedTrace, spec: SamplingSpec
) -> List[TraceCheckpoint]:
    """One checkpoint per detailed-window start of ``spec`` over ``trace``."""
    warmup = spec.effective_warmup
    return [
        TraceCheckpoint(
            trace_key=trace.key,
            position=start,
            event_index=index,
            warmup_start=max(0, start - warmup),
            register_state=_register_state(trace, start),
        )
        for index, start in window_plan(trace, spec)
    ]


# ----------------------------------------------------------------------
# persistence (through the sharded trace store)
# ----------------------------------------------------------------------

def store_checkpoint(store, checkpoint: TraceCheckpoint) -> None:
    """Persist ``checkpoint`` through a :class:`TraceStore`."""
    store.put_payload(checkpoint.key, checkpoint.to_payload())


def load_checkpoint(store, trace_key: str, position: int) -> Optional[TraceCheckpoint]:
    """Load a stored checkpoint; corrupt or absent entries are misses."""
    payload = store.get_payload(checkpoint_key(trace_key, position))
    if payload is None:
        return None
    try:
        checkpoint = TraceCheckpoint.from_payload(payload)
    except SimulationError:
        return None
    if checkpoint.trace_key != trace_key or checkpoint.position != position:
        return None
    return checkpoint


# ----------------------------------------------------------------------
# resume
# ----------------------------------------------------------------------

def resume_simulate(
    trace: DecodedTrace,
    checkpoint: TraceCheckpoint,
    regfile_factory,
    config,
    benchmark_name: Optional[str] = None,
    commit_observer=None,
) -> SimulationStats:
    """Run the trace suffix starting at ``checkpoint`` with timing.

    The warm-up seed ``instructions[warmup_start:position]`` is replayed
    functionally first, then the pipeline runs the remaining stream in
    full detail.  The returned stats cover only the suffix; merge
    ``checkpoint.register_state`` under the observer's final snapshot to
    recover the full-run architectural state.
    """
    if checkpoint.trace_key != trace.key:
        raise SimulationError(
            f"checkpoint is for trace {checkpoint.trace_key[:12]}…, "
            f"got {trace.key[:12]}…"
        )
    from repro.pipeline.processor import Processor
    from repro.trace.replayer import TraceReplayer

    remaining = len(trace.instructions) - checkpoint.position
    run_config = config.with_overrides(max_instructions=remaining)
    replayer = TraceReplayer(trace, start_event=checkpoint.event_index)
    processor = Processor(
        None,
        regfile_factory,
        run_config,
        benchmark_name=benchmark_name or trace.name,
        commit_observer=commit_observer,
        frontend=replayer,
    )
    functional_warmup(
        processor,
        trace.instructions[checkpoint.warmup_start:checkpoint.position],
    )
    return processor.run()
