"""Systematic interval sampling over a decoded trace.

The engine implements the SMARTS-style recipe: detailed windows at a
fixed stride, functional fast-forward between them, and a CLT estimate
over the per-window IPCs.

* **Window placement** — window starts are the multiples of the stride,
  snapped forward to the next *fetch-event boundary* of the trace
  (fetch groups are indivisible: a blocked group must end with its
  mispredicted branch, so a window cannot begin inside one).
* **Functional warm-up** — before each window, the ``warmup``
  instructions preceding it are replayed through the *rename and
  value-tracking* structures only: map table, scoreboard, register-file
  model (including RFC upper-level content) and the data cache.  One
  instruction retires per warm cycle at negative cycle numbers, so the
  window itself starts at cycle 0 with warmed state and zero timing
  residue.
* **Estimate** — IPC is reported as the mean of the per-window IPCs
  with a Student-t confidence interval (the per-window populations are
  equal-size, so the unweighted mean is the systematic-sampling
  estimator).  With ``target_half_width`` set, windows are added until
  the relative half-width drops below the target.

The aggregated :class:`~repro.pipeline.stats.SimulationStats` sums the
windows' counters (so rates such as cache hit rate remain meaningful
over the *detailed* portion) and carries the interval in its
``sampling`` field.
"""

from __future__ import annotations

import dataclasses
import math
from bisect import bisect_left
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.isa.instruction import RegisterClass
from repro.isa.opcodes import OpClass
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import Processor
from repro.pipeline.stats import SimulationStats
from repro.sampling.spec import SamplingSpec
from repro.trace.replayer import TraceReplayer
from repro.trace.schema import DecodedTrace

# ----------------------------------------------------------------------
# Student-t critical values
# ----------------------------------------------------------------------

#: Two-sided Student-t critical values for df = 1..30; beyond that the
#: normal approximation (the last entry of each ``(table, z)`` pair) is
#: within 0.7% of the exact value.  Committed as literals so the engine
#: needs no scipy dependency.
_T_TABLES = {
    0.90: (
        (6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
         1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
         1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
         1.701, 1.699, 1.697),
        1.645,
    ),
    0.95: (
        (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
         2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
         2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
         2.048, 2.045, 2.042),
        1.960,
    ),
    0.99: (
        (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
         3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
         2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
         2.763, 2.756, 2.750),
        2.576,
    ),
}


def t_critical(confidence: float, samples: int) -> float:
    """Two-sided Student-t critical value for ``samples`` window IPCs."""
    try:
        table, z = _T_TABLES[confidence]
    except KeyError:
        raise ConfigurationError(
            f"no Student-t table for confidence {confidence!r}"
        ) from None
    df = samples - 1
    if df < 1:
        raise ConfigurationError(
            "a confidence interval needs at least two sampled windows"
        )
    if df <= len(table):
        return table[df - 1]
    return z


def confidence_interval(values: List[float], confidence: float) -> Tuple[float, float]:
    """``(mean, half_width)`` of the two-sided interval over ``values``."""
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = t_critical(confidence, n) * math.sqrt(variance / n)
    return mean, half_width


# ----------------------------------------------------------------------
# window placement
# ----------------------------------------------------------------------

def event_offsets(trace: DecodedTrace) -> List[int]:
    """Cumulative instruction offset at the start of each fetch event."""
    offsets: List[int] = []
    position = 0
    for event in trace.events:
        offsets.append(position)
        position += event[0]
    return offsets


def window_plan(trace: DecodedTrace, spec: SamplingSpec) -> List[Tuple[int, int]]:
    """Detailed-window placement: ``(event_index, start_offset)`` pairs.

    Window ``k`` targets instruction offset ``k * stride`` and snaps
    forward to the first fetch-event boundary at or past it; windows
    whose ``window`` instructions do not fit the stream are dropped.

    Raises
    ------
    ConfigurationError
        When the trace is too short to place two windows (no interval).
    """
    offsets = event_offsets(trace)
    total = len(trace.instructions)
    plan: List[Tuple[int, int]] = []
    last_start = -1
    k = 0
    while True:
        target = k * spec.stride
        if target >= total:
            break
        index = bisect_left(offsets, target)
        if index >= len(offsets):
            break
        start = offsets[index]
        if start != last_start and start + spec.window <= total:
            plan.append((index, start))
            last_start = start
        k += 1
    if len(plan) < 2:
        raise ConfigurationError(
            f"trace {trace.name!r} ({total} instructions) is too short for "
            f"sampling with stride {spec.stride} and window {spec.window}: "
            f"only {len(plan)} window(s) fit — use exact mode or a smaller "
            "stride"
        )
    return plan


# ----------------------------------------------------------------------
# functional warm-up
# ----------------------------------------------------------------------

def functional_warmup(processor: Processor, instructions) -> None:
    """Warm a freshly built processor's value-tracking state.

    Replays ``instructions`` through rename, the scoreboard, the
    register-file model and the data cache — one instruction per cycle
    at negative cycle numbers, with the previous mapping of each
    destination released immediately (so any physical-register budget
    that admits the logical set suffices).  No pipeline timing runs, no
    statistic of the subsequent detailed window is touched: the data
    cache's hit/miss counters are zeroed afterwards and the value-read
    distribution is deliberately not updated on release.
    """
    if not instructions:
        return
    renamer = processor.renamer
    scoreboard = processor.scoreboard
    sb_states = processor._sb_states
    int_free = renamer._int_free
    fp_free = renamer._fp_free
    int_rf = processor._int_rf
    fp_rf = processor._fp_rf
    window = processor.window
    dcache = processor.dcache
    cycle = -len(instructions)
    for instruction in instructions:
        int_rf.begin_cycle(cycle)
        fp_rf.begin_cycle(cycle)
        renamed = renamer.rename(instruction)
        dest = renamed.dest
        if dest is not None:
            state = scoreboard.allocate(dest, instruction.seq)
            state.ex_end_cycle = cycle
            regfile = int_rf if dest.reg_class is RegisterClass.INT else fp_rf
            state.rf_ready_cycle = regfile.writeback(dest, state, cycle, window)
            state.written_back = True
        op_class = instruction.op_class
        if op_class is OpClass.LOAD:
            dcache.access(instruction.mem_address or 0)
        elif op_class is OpClass.STORE:
            dcache.access(instruction.mem_address or 0, is_write=True)
        released = renamed.previous_dest
        if released is not None:
            (int_free if released.reg_class is RegisterClass.INT
             else fp_free).release(released.index)
            state = sb_states.get(released.uid)
            if state is not None:
                scoreboard.release(released)
                (int_rf if released.reg_class is RegisterClass.INT
                 else fp_rf).release(released)
        cycle += 1
    # Warm accesses must not count toward the detailed window's rates.
    dcache.hits = 0
    dcache.misses = 0


# ----------------------------------------------------------------------
# windows and aggregation
# ----------------------------------------------------------------------

def run_window(
    trace: DecodedTrace,
    regfile_factory: Callable,
    config: ProcessorConfig,
    event_index: int,
    start_offset: int,
    window: int,
    warmup: int,
    benchmark_name: Optional[str] = None,
) -> SimulationStats:
    """Simulate one detailed window of ``window`` committed instructions."""
    run_config = config.with_overrides(max_instructions=window, max_cycles=None)
    replayer = TraceReplayer(trace, start_event=event_index)
    processor = Processor(
        None,
        regfile_factory,
        run_config,
        benchmark_name=benchmark_name or trace.name,
        frontend=replayer,
    )
    warm_start = max(0, start_offset - warmup)
    functional_warmup(processor, trace.instructions[warm_start:start_offset])
    return processor.run()


_SUM_EXEMPT = ("benchmark", "architecture", "commit_checksum", "sampling")


def _aggregate_stats(window_stats: List[SimulationStats]) -> SimulationStats:
    first = window_stats[0]
    total = SimulationStats(
        benchmark=first.benchmark, architecture=first.architecture
    )
    counter_fields = SimulationStats._COUNTER_FIELDS
    for stats in window_stats:
        for spec in dataclasses.fields(SimulationStats):
            name = spec.name
            if name in _SUM_EXEMPT:
                continue
            value = getattr(stats, name)
            if name in counter_fields:
                getattr(total, name).update(value)
            elif name == "regfile_statistics":
                merged = total.regfile_statistics
                for key, count in value.items():
                    merged[key] = merged.get(key, 0) + count
            elif name.startswith("max_"):
                if value > getattr(total, name):
                    setattr(total, name, value)
            else:
                setattr(total, name, getattr(total, name) + value)
    return total


def sampled_simulate(
    trace: DecodedTrace,
    regfile_factory: Callable,
    config: ProcessorConfig,
    spec: SamplingSpec,
    benchmark_name: Optional[str] = None,
) -> SimulationStats:
    """Estimate one point's statistics by systematic interval sampling.

    Returns aggregated stats over the detailed windows; the
    ``sampling`` field carries the spec, the per-window IPCs, and the
    mean ± half-width summary.  ``stats.ipc`` is the ratio estimate
    (total committed / total cycles over the windows); the interval in
    ``stats.sampling`` is the authoritative accuracy statement.
    """
    plan = window_plan(trace, spec)
    if spec.max_windows is not None:
        plan = plan[: spec.max_windows]
    warmup = spec.effective_warmup
    window_stats: List[SimulationStats] = []
    ipcs: List[float] = []
    mean = half_width = 0.0
    for event_index, start_offset in plan:
        stats = run_window(
            trace, regfile_factory, config, event_index, start_offset,
            spec.window, warmup, benchmark_name=benchmark_name,
        )
        window_stats.append(stats)
        ipcs.append(stats.ipc)
        mean, half_width = confidence_interval(ipcs, spec.confidence)
        if (
            spec.target_half_width is not None
            and len(ipcs) >= spec.min_windows
            and mean > 0.0
            and half_width / mean <= spec.target_half_width
        ):
            break

    aggregate = _aggregate_stats(window_stats)
    n = len(ipcs)
    variance = (
        sum((v - mean) ** 2 for v in ipcs) / (n - 1) if n > 1 else 0.0
    )
    aggregate.sampling = {
        "spec": spec.to_payload(),
        "windows": n,
        "window_ipcs": [round(v, 6) for v in ipcs],
        "ipc_mean": round(mean, 6),
        "ipc_std": round(math.sqrt(variance), 6),
        "confidence": spec.confidence,
        "ci_half_width": round(half_width, 6),
        "detailed_instructions": aggregate.committed_instructions,
        "total_instructions": len(trace.instructions),
    }
    return aggregate
