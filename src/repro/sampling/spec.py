"""The sampling specification: stride, window and CI knobs.

A :class:`SamplingSpec` describes one systematic-sampling policy over a
decoded trace: simulate a detailed **window** of instructions at every
**stride** boundary, functionally warm the renamer/scoreboard/register
files over the **warmup** instructions preceding each window, and report
IPC as the mean of the per-window IPCs with a Student-t confidence
interval at the configured **confidence** level.  With a
``target_half_width`` the engine stops adding windows as soon as the
relative half-width of the interval drops below the target (adaptive
window count); otherwise every stride boundary that fits the stream is
simulated.

This module deliberately imports nothing but the error hierarchy so the
spec can be shared by the experiment scheduler, the service admission
layer and the sampling engine without import cycles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: Confidence levels with a committed Student-t table (see
#: :mod:`repro.sampling.engine`).
SUPPORTED_CONFIDENCE_LEVELS = (0.90, 0.95, 0.99)


def _positive_int(value, name: str) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigurationError(f"sampling {name} must be a positive integer")


@dataclass(frozen=True)
class SamplingSpec:
    """One systematic interval-sampling policy.

    ``stride``
        Instructions between consecutive detailed-window starts.
    ``window``
        Detailed instructions simulated per window (``window <= stride``
        so windows never overlap).
    ``warmup``
        Instructions of functional warm-up replay before each window
        (defaults to ``window`` when omitted).
    ``confidence``
        Confidence level of the reported IPC interval.
    ``target_half_width``
        Optional relative half-width target in (0, 1); the engine stops
        adding windows once ``half_width / mean`` drops below it (but
        never before ``min_windows`` windows).
    ``min_windows`` / ``max_windows``
        Bounds on the adaptive window count.
    """

    stride: int
    window: int
    warmup: Optional[int] = None
    confidence: float = 0.95
    target_half_width: Optional[float] = None
    min_windows: int = 4
    max_windows: Optional[int] = None

    def __post_init__(self) -> None:
        _positive_int(self.stride, "stride")
        _positive_int(self.window, "window")
        if self.window > self.stride:
            raise ConfigurationError(
                f"sampling window ({self.window}) cannot exceed the stride "
                f"({self.stride}): detailed windows must not overlap"
            )
        if self.warmup is not None and (
            not isinstance(self.warmup, int)
            or isinstance(self.warmup, bool)
            or self.warmup < 0
        ):
            raise ConfigurationError(
                "sampling warmup must be a non-negative integer (or omitted)"
            )
        if self.confidence not in SUPPORTED_CONFIDENCE_LEVELS:
            raise ConfigurationError(
                f"sampling confidence {self.confidence!r} is unsupported "
                f"(supported: {', '.join(str(c) for c in SUPPORTED_CONFIDENCE_LEVELS)})"
            )
        if self.target_half_width is not None:
            value = self.target_half_width
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or not 0.0 < value < 1.0
            ):
                raise ConfigurationError(
                    "sampling target_half_width must be a relative width in (0, 1)"
                )
        if (
            not isinstance(self.min_windows, int)
            or isinstance(self.min_windows, bool)
            or self.min_windows < 2
        ):
            raise ConfigurationError(
                "sampling min_windows must be an integer >= 2 "
                "(a confidence interval needs at least two windows)"
            )
        if self.max_windows is not None:
            _positive_int(self.max_windows, "max_windows")
            if self.max_windows < self.min_windows:
                raise ConfigurationError(
                    f"sampling max_windows ({self.max_windows}) cannot be "
                    f"smaller than min_windows ({self.min_windows})"
                )

    # ------------------------------------------------------------------

    @property
    def effective_warmup(self) -> int:
        """The warm-up budget actually applied (default: one window)."""
        return self.window if self.warmup is None else self.warmup

    def label(self) -> str:
        """Compact ``stride:window:warmup`` tag for metadata and logs."""
        return f"{self.stride}:{self.window}:{self.effective_warmup}"

    # ------------------------------------------------------------------
    # serialization (service API, store keys)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serializable dictionary (inverse of :meth:`from_payload`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload) -> "SamplingSpec":
        """Rebuild a spec from a payload dictionary.

        Raises
        ------
        ConfigurationError
            On a non-mapping payload, unknown fields, missing
            ``stride``/``window`` or out-of-range values.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError("sampling spec must be a JSON object")
        known = {spec.name for spec in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown sampling field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        missing = sorted({"stride", "window"} - set(payload))
        if missing:
            raise ConfigurationError(
                f"sampling spec is missing required field(s): {', '.join(missing)}"
            )
        return cls(**payload)


#: Streams shorter than this gain nothing from sampling (the windows
#: would cover most of the stream anyway); :func:`quick_sampling`
#: returns ``None`` below it and callers fall back to exact simulation.
MIN_SAMPLED_STREAM = 256


def quick_sampling(instructions: int, fraction: int = 4) -> Optional[SamplingSpec]:
    """A cheap sampling budget covering ``~1/fraction`` of the stream.

    The successive-halving search rungs use this to derive their quick
    budgets deterministically from the instruction budget alone: the
    stride splits the stream into eight segments, the window covers
    ``stride / fraction`` of each (halving ``fraction`` per promotion
    rung doubles the detail).  Returns ``None`` when the stream is too
    short to sample (< ``MIN_SAMPLED_STREAM``) or the derived window
    would not leave at least two non-overlapping windows.
    """
    if not isinstance(instructions, int) or isinstance(instructions, bool):
        raise ConfigurationError("instructions must be an integer")
    if not isinstance(fraction, int) or isinstance(fraction, bool) or fraction < 1:
        raise ConfigurationError("fraction must be a positive integer")
    if instructions < MIN_SAMPLED_STREAM:
        return None
    stride = max(32, instructions // 8)
    window = max(8, stride // fraction)
    if window > stride or instructions < 2 * stride:
        return None
    return SamplingSpec(stride=stride, window=window, min_windows=2)


def parse_sampling(text) -> SamplingSpec:
    """Parse the CLI form ``stride:window[:warmup]`` into a spec.

    Raises
    ------
    ConfigurationError
        On anything that is not two or three colon-separated integers,
        or on values the :class:`SamplingSpec` validator rejects.
    """
    if not isinstance(text, str):
        raise ConfigurationError("sampling spec must be a string")
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(
            f"sampling spec {text!r} must be STRIDE:WINDOW[:WARMUP], "
            "e.g. 2000:200 or 2000:200:400"
        )
    try:
        numbers = [int(part) for part in parts]
    except ValueError as error:
        raise ConfigurationError(
            f"sampling spec {text!r} must be colon-separated integers"
        ) from error
    warmup = numbers[2] if len(numbers) == 3 else None
    return SamplingSpec(stride=numbers[0], window=numbers[1], warmup=warmup)
