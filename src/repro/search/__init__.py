"""Config-space search autopilot over the sweep engine.

The paper is a trade-off study — IPC against register-file area — and
this package turns the repo's fixed figure grids into an optimizer: a
search request names a **space** of register-file configurations, an
**objective** (``max ipc``, ``min area`` or ``pareto ipc-vs-area``) and
optional **constraints**, and the driver runs successive halving over
sampled-budget rungs until an exact-simulation frontier falls out.

Every evaluation is a regular
:class:`~repro.experiments.scheduler.SimulationPoint` executed through
the shared :class:`~repro.experiments.scheduler.SweepEngine`, so
searches inherit the whole storage/fleet stack: results persist in the
sharded store, identical in-flight points are single-flighted within
and across replicas, and a repeated search is pure cache hits with a
byte-identical report.

Exposed on the service as ``POST /search`` (see
:mod:`repro.service.server`) and on the CLI as
``python -m repro.service search`` / ``frontier``; usable directly via
:func:`run_search` for library callers.
"""

from repro.search.driver import (
    SEARCH_SCHEMA_VERSION,
    SearchSpec,
    run_search,
)
from repro.search.objectives import (
    Constraints,
    Objective,
    parse_constraints,
    parse_objective,
)
from repro.search.space import Candidate, SearchSpace, build_space

__all__ = [
    "SEARCH_SCHEMA_VERSION",
    "SearchSpec",
    "run_search",
    "Constraints",
    "Objective",
    "parse_constraints",
    "parse_objective",
    "Candidate",
    "SearchSpace",
    "build_space",
]
