"""The successive-halving search driver.

:class:`SearchSpec` is the validated form of one ``POST /search``
request; :func:`run_search` executes it against a shared
:class:`~repro.experiments.scheduler.SweepEngine` and returns a
schema-versioned report.

The optimizer is successive halving over *budget rungs*: every active
candidate is first scored under a cheap sampled budget (derived
deterministically from the instruction budget via
:func:`repro.sampling.spec.quick_sampling`), the best
``ceil(n / eta)`` survive to the next rung, and the final rung always
re-evaluates the survivors with **exact** simulation — the reported
frontier never rests on an estimate.  Every evaluation goes through the
engine's two-level single-flight dedup and the shared result store, so
a repeated search (or one overlapping a previous figure sweep) executes
nothing and reproduces its report byte for byte.

The report deliberately contains **no timestamps or durations**: a
warm-cache re-run must be byte-identical.  Wall-clock counters live in
the job record's ``counters`` section instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import harmonic_mean
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.hwmodel.evaluate import evaluate
from repro.hwmodel.pareto import DesignPoint, pareto_frontier
from repro.pipeline.config import ProcessorConfig
from repro.sampling.spec import SamplingSpec, quick_sampling
from repro.search.objectives import (
    Constraints,
    Objective,
    parse_constraints,
    parse_objective,
    rank_scores,
    select_survivors,
)
from repro.search.space import Candidate, SearchSpace, build_space

#: Search report schema; bump on layout changes.
SEARCH_SCHEMA_VERSION = 1

#: Ceiling on sampled rungs before the exact rung.
MAX_RUNGS = 3

#: Default benchmarks a search evaluates when the request names none.
DEFAULT_BENCHMARKS = ("gcc",)

DEFAULT_INSTRUCTIONS = 2_000


def _int_field(payload: dict, name: str, default: int, minimum: int,
               maximum: Optional[int] = None) -> int:
    value = payload.get(name, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ConfigurationError(
            f"search {name} must be an integer >= {minimum}"
        )
    if maximum is not None and value > maximum:
        raise ConfigurationError(
            f"search {name} must be at most {maximum}"
        )
    return value


@dataclass(frozen=True)
class SearchSpec:
    """One validated search request."""

    space: SearchSpace
    objective: Objective
    constraints: Constraints
    benchmarks: Tuple[str, ...]
    instructions: int
    warmup_instructions: int
    rungs: int
    eta: int
    min_survivors: int

    # ------------------------------------------------------------------

    @classmethod
    def from_payload(cls, payload) -> "SearchSpec":
        """Validate a raw ``POST /search`` body (raises ConfigurationError)."""
        if not isinstance(payload, dict):
            raise ConfigurationError("search spec must be a JSON object")
        known = {"space", "objective", "constraints", "benchmarks",
                 "instructions", "warmup_instructions", "rungs", "eta",
                 "min_survivors"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown search field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        if "space" not in payload:
            raise ConfigurationError("search spec needs a 'space'")
        space = build_space(payload["space"])
        objective = parse_objective(payload.get("objective", "pareto ipc-vs-area"))
        constraints = parse_constraints(payload.get("constraints"))
        benchmarks = payload.get("benchmarks", list(DEFAULT_BENCHMARKS))
        if (not isinstance(benchmarks, list) and
                not isinstance(benchmarks, tuple)) or not benchmarks or not all(
                isinstance(name, str) and name for name in benchmarks):
            raise ConfigurationError(
                "search benchmarks must be a non-empty list of benchmark names"
            )
        # Surface bad benchmark names at admission, not mid-search.
        from repro.workloads.profiles import get_profile

        deduped = list(dict.fromkeys(benchmarks))
        try:
            for name in deduped:
                get_profile(name)
        except ReproError as error:
            raise ConfigurationError(str(error)) from error
        instructions = _int_field(payload, "instructions",
                                  DEFAULT_INSTRUCTIONS, minimum=1)
        warmup = _int_field(payload, "warmup_instructions", 0, minimum=0)
        rungs = _int_field(payload, "rungs", 1, minimum=0, maximum=MAX_RUNGS)
        eta = _int_field(payload, "eta", 2, minimum=2)
        min_survivors = _int_field(payload, "min_survivors", 2, minimum=1)
        return cls(
            space=space,
            objective=objective,
            constraints=constraints,
            benchmarks=tuple(deduped),
            instructions=instructions,
            warmup_instructions=warmup,
            rungs=rungs,
            eta=eta,
            min_survivors=min_survivors,
        )

    def to_payload(self) -> dict:
        """Canonical echo; re-validating it rebuilds an identical spec."""
        return {
            "space": self.space.to_payload(),
            "objective": self.objective.canonical(),
            "constraints": self.constraints.to_payload(),
            "benchmarks": list(self.benchmarks),
            "instructions": self.instructions,
            "warmup_instructions": self.warmup_instructions,
            "rungs": self.rungs,
            "eta": self.eta,
            "min_survivors": self.min_survivors,
        }

    # ------------------------------------------------------------------

    def admitted_candidates(self) -> List[Candidate]:
        """Candidates surviving the analytic area pre-prune."""
        return [
            candidate for candidate in self.space.candidates
            if self.constraints.admits_area(candidate.area_units)
        ]

    def pruned_candidates(self) -> List[Candidate]:
        return [
            candidate for candidate in self.space.candidates
            if not self.constraints.admits_area(candidate.area_units)
        ]

    def rung_samplings(self) -> List[Optional[SamplingSpec]]:
        """Budget ladder: sampled rungs (cheapest first), then exact.

        Sampled rungs the instruction budget is too short to support are
        dropped (a 100-instruction search is exact-only); the final
        ``None`` entry is the mandatory exact rung.
        """
        ladder: List[Optional[SamplingSpec]] = []
        for index in range(self.rungs):
            # Earlier rungs use a smaller detailed fraction: 1/8 of each
            # stride on the first of two rungs, 1/4 on the next, etc.
            fraction = 2 ** (self.rungs - index + 1)
            spec = quick_sampling(self.instructions, fraction=fraction)
            if spec is not None and spec not in ladder:
                ladder.append(spec)
        ladder.append(None)
        return ladder

    def rung0_points(self) -> int:
        """Size of the first rung (the initial ``points.requested`` guess)."""
        return len(self.admitted_candidates()) * len(self.benchmarks)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------


#: Engine counter fields accumulated across rungs into the job totals.
_COUNTER_FIELDS = (
    "requested", "unique", "cached", "executed", "shared_inflight",
    "remote_inflight", "remote_reclaimed", "traces_recorded", "traces_reused",
)


def _build_points(
    spec: SearchSpec,
    candidates: Sequence[Candidate],
    sampling: Optional[SamplingSpec],
):
    from repro.experiments.scheduler import SimulationPoint

    config = ProcessorConfig().with_overrides(max_instructions=spec.instructions)
    return [
        SimulationPoint(
            benchmark=benchmark,
            factory=candidate.factory,
            architecture=candidate.label,
            config=config,
            warmup_instructions=spec.warmup_instructions,
            sampling=sampling,
        )
        for candidate in candidates
        for benchmark in spec.benchmarks
    ]


def _score_candidates(
    spec: SearchSpec,
    candidates: Sequence[Candidate],
    points,
    results,
) -> List[dict]:
    """Per-candidate evaluation records for one rung, unranked."""
    by_key = {point.store_key(): point for point in points}
    stats_by_arch_bench: Dict[Tuple[str, str], object] = {}
    for key, stats in results.items():
        point = by_key.get(key)
        if point is not None:
            stats_by_arch_bench[(point.architecture, point.benchmark)] = stats
    scores = []
    for candidate in candidates:
        per_benchmark = {}
        for benchmark in spec.benchmarks:
            stats = stats_by_arch_bench.get((candidate.label, benchmark))
            if stats is None:
                raise SimulationError(
                    f"search: no stored result for {benchmark} @ "
                    f"{candidate.label} after the rung executed"
                )
            per_benchmark[benchmark] = evaluate(stats, candidate.geometry)
        ipc = round(
            harmonic_mean(entry["ipc"] for entry in per_benchmark.values()), 6
        )
        area = round(candidate.area_units, 6)
        scores.append({
            "label": candidate.label,
            "area_units": area,
            "ipc": ipc,
            "ipc_by_benchmark": {
                name: entry["ipc"] for name, entry in per_benchmark.items()
            },
            "feasible": spec.constraints.admits_ipc(ipc),
        })
    return scores


def run_search(
    spec: SearchSpec,
    engine,
    progress: Optional[Callable[[str], None]] = None,
    on_point: Optional[Callable] = None,
    on_rung: Optional[Callable[[int, dict], None]] = None,
) -> Tuple[dict, dict]:
    """Run one search to completion; returns ``(report, counters)``.

    ``engine`` is a :class:`~repro.experiments.scheduler.SweepEngine`;
    every rung goes through :meth:`execute`, so concurrent searches,
    figure jobs and fleet replicas all share in-flight work and stored
    results.  ``on_rung(index, rung_counters)`` fires after each rung
    (the service uses it to publish live progress); ``on_point`` is
    forwarded to the engine.
    """

    def say(message: str) -> None:
        if progress is not None:
            progress(message)

    active = spec.admitted_candidates()
    pruned = spec.pruned_candidates()
    if not active:
        raise ConfigurationError(
            "the area constraint prunes every candidate in the search space"
        )

    ladder = spec.rung_samplings()
    totals = {field: 0 for field in _COUNTER_FIELDS}
    totals["rungs"] = 0
    elapsed = 0.0
    audit: List[dict] = []
    final_scores: List[dict] = []

    for index, sampling in enumerate(ladder):
        is_final = sampling is None
        budget = (
            {"mode": "exact"} if is_final
            else {"mode": "sampled", "sampling": sampling.to_payload()}
        )
        say(
            f"search rung {index}: {len(active)} candidate(s) x "
            f"{len(spec.benchmarks)} benchmark(s), "
            + ("exact" if is_final else f"sampled {sampling.label()}")
        )
        points = _build_points(spec, active, sampling)
        counters = engine.execute(points, progress=progress, on_point=on_point)
        for field in _COUNTER_FIELDS:
            totals[field] += counters.get(field, 0)
        elapsed += counters.get("elapsed_seconds", 0)
        totals["rungs"] += 1
        results = engine.results_for(points)
        scores = _score_candidates(spec, active, points, results)
        ranked = rank_scores(spec.objective, scores)
        if is_final:
            survivors = [score["label"] for score in ranked]
            final_scores = ranked
        else:
            keep = max(spec.min_survivors,
                       math.ceil(len(active) / spec.eta))
            survivors = select_survivors(spec.objective, scores, keep)
        audit.append({
            "rung": index,
            "budget": budget,
            "candidates": len(active),
            "points": len(points),
            "scores": ranked,
            "survivors": sorted(survivors),
        })
        if on_rung is not None:
            on_rung(index, counters)
        if not is_final:
            keep_set = set(survivors)
            active = [c for c in active if c.label in keep_set]

    by_label = {candidate.label: candidate for candidate in spec.space.candidates}
    feasible_final = [score for score in final_scores if score["feasible"]]
    frontier_points = pareto_frontier([
        DesignPoint(cost=score["area_units"], value=score["ipc"],
                    label=score["label"])
        for score in feasible_final
    ])
    frontier = []
    for point in frontier_points:
        candidate = by_label[point.label]
        frontier.append({
            "label": point.label,
            "area_units": point.cost,
            "ipc": point.value,
            "geometry": candidate.describe()["geometry"],
        })

    best = None
    if not spec.objective.is_pareto and feasible_final:
        top = rank_scores(spec.objective, feasible_final)[0]
        best = dict(top)

    report = {
        "schema": SEARCH_SCHEMA_VERSION,
        "objective": spec.objective.canonical(),
        "constraints": spec.constraints.to_payload(),
        "space": {
            "kind": spec.space.kind,
            "dimensions": spec.space.dimensions,
            "candidates": len(spec.space.candidates),
        },
        "settings": {
            "benchmarks": list(spec.benchmarks),
            "instructions": spec.instructions,
            "warmup_instructions": spec.warmup_instructions,
            "rungs": spec.rungs,
            "eta": spec.eta,
            "min_survivors": spec.min_survivors,
        },
        "pruned_by_area": [
            {"label": candidate.label,
             "area_units": round(candidate.area_units, 6)}
            for candidate in pruned
        ],
        "rungs": audit,
        "evaluations": final_scores,
        "frontier": frontier,
        "best": best,
    }
    totals["elapsed_seconds"] = round(elapsed, 1)
    say(
        f"search: frontier has {len(frontier)} point(s) "
        f"({totals['executed']} executed, {totals['cached']} cached)"
    )
    return report, totals
