"""Objective grammar, constraints and candidate ranking for the search.

Objectives are tiny textual expressions::

    "max ipc"             # fastest design (ties broken toward less area)
    "min area"            # cheapest design (ties broken toward more IPC)
    "pareto ipc-vs-area"  # the whole IPC-vs-area frontier

Constraints bound the feasible region and come either as a mapping
(``{"max_area_units": 25000, "min_ipc": 1.0}``) or as comparison
strings (``"area_units <= 25000"``, ``"ipc >= 1.0"``).  The area bound
is analytic, so the driver prunes it *before* any simulation runs; the
IPC bound is applied to each rung's measured scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.hwmodel.pareto import DesignPoint, pareto_frontier

#: A scored candidate as ranked here: the driver's per-rung record.
Score = Dict[str, object]


@dataclass(frozen=True)
class Objective:
    """A parsed objective expression."""

    kind: str  # "max" | "min" | "pareto"
    metric: str  # "ipc" | "area_units" | "ipc-vs-area"

    def canonical(self) -> str:
        if self.kind == "min" and self.metric == "area_units":
            return "min area"
        return f"{self.kind} {self.metric}"

    @property
    def is_pareto(self) -> bool:
        return self.kind == "pareto"


#: Accepted objective spellings -> (kind, metric).
_OBJECTIVES = {
    ("max", "ipc"): ("max", "ipc"),
    ("min", "area"): ("min", "area_units"),
    ("min", "area_units"): ("min", "area_units"),
    ("pareto", "ipc-vs-area"): ("pareto", "ipc-vs-area"),
    ("pareto", "ipc vs area"): ("pareto", "ipc-vs-area"),
}


def parse_objective(text) -> Objective:
    """Parse an objective expression (case- and whitespace-insensitive)."""
    if not isinstance(text, str):
        raise ConfigurationError("objective must be a string expression")
    words = text.lower().split()
    if len(words) >= 2:
        key = (words[0], " ".join(words[1:]))
        resolved = _OBJECTIVES.get(key)
        if resolved is not None:
            return Objective(kind=resolved[0], metric=resolved[1])
    known = sorted({f"{kind} {metric}" for kind, metric in _OBJECTIVES})
    raise ConfigurationError(
        f"unknown objective {text!r} (known: {'; '.join(known)})"
    )


# ----------------------------------------------------------------------
# constraints
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Constraints:
    """Bounds on the feasible region (``None`` = unconstrained)."""

    max_area_units: Optional[float] = None
    min_ipc: Optional[float] = None

    def to_payload(self) -> dict:
        payload = {}
        if self.max_area_units is not None:
            payload["max_area_units"] = self.max_area_units
        if self.min_ipc is not None:
            payload["min_ipc"] = self.min_ipc
        return payload

    def admits_area(self, area_units: float) -> bool:
        return self.max_area_units is None or area_units <= self.max_area_units

    def admits_ipc(self, ipc: float) -> bool:
        return self.min_ipc is None or ipc >= self.min_ipc


def _positive_number(value, name: str) -> float:
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
        or value <= 0
    ):
        raise ConfigurationError(f"constraint {name} must be a positive number")
    return float(value)


def _parse_constraint_expr(text: str) -> dict:
    """One ``metric <op> number`` comparison string -> mapping fields."""
    for op in ("<=", ">="):
        if op in text:
            left, _, right = text.partition(op)
            metric = left.strip().lower()
            try:
                bound = float(right.strip())
            except ValueError as error:
                raise ConfigurationError(
                    f"constraint {text!r}: {right.strip()!r} is not a number"
                ) from error
            if metric in ("area", "area_units") and op == "<=":
                return {"max_area_units": bound}
            if metric == "ipc" and op == ">=":
                return {"min_ipc": bound}
            raise ConfigurationError(
                f"unsupported constraint {text!r} "
                f"(supported: 'area_units <= X', 'ipc >= Y')"
            )
    raise ConfigurationError(
        f"constraint {text!r} must be 'area_units <= X' or 'ipc >= Y'"
    )


def parse_constraints(payload) -> Constraints:
    """Parse the constraints section of a search request.

    Accepts ``None``, a mapping with ``max_area_units``/``min_ipc``
    keys, or a list of comparison strings; raises
    :class:`~repro.errors.ConfigurationError` on anything else.
    """
    if payload is None:
        return Constraints()
    merged: dict = {}
    if isinstance(payload, list):
        for entry in payload:
            if not isinstance(entry, str):
                raise ConfigurationError(
                    "constraint list entries must be comparison strings"
                )
            for key, value in _parse_constraint_expr(entry).items():
                if key in merged:
                    raise ConfigurationError(
                        f"constraint on {key} given more than once"
                    )
                merged[key] = value
    elif isinstance(payload, dict):
        known = ("max_area_units", "min_ipc")
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ConfigurationError(
                f"unknown constraint field(s): {', '.join(unknown)} "
                f"(known: {', '.join(known)})"
            )
        merged = {key: payload[key] for key in known if payload.get(key) is not None}
    else:
        raise ConfigurationError(
            "constraints must be a mapping or a list of comparison strings"
        )
    kwargs = {}
    for name in ("max_area_units", "min_ipc"):
        if name in merged:
            kwargs[name] = _positive_number(merged[name], name)
    return Constraints(**kwargs)


# ----------------------------------------------------------------------
# ranking and survivor selection
# ----------------------------------------------------------------------


def rank_scores(objective: Objective, scores: Sequence[Score]) -> List[Score]:
    """Scores ordered best-first under ``objective``.

    Infeasible candidates always rank after feasible ones; within each
    group the order is deterministic (label as the final tiebreak) so
    reports are stable across runs.  For the pareto objective the order
    is by non-dominated layer (layer 0 = the frontier), then by area.
    """
    if not objective.is_pareto:
        if objective.metric == "ipc":
            def sort_key(score):
                return (not score["feasible"], -score["ipc"],
                        score["area_units"], score["label"])
        else:
            def sort_key(score):
                return (not score["feasible"], score["area_units"],
                        -score["ipc"], score["label"])
        return sorted(scores, key=sort_key)

    layers = pareto_layers(scores)
    ranked: List[Score] = []
    for layer in layers:
        ranked.extend(
            sorted(layer, key=lambda s: (s["area_units"], -s["ipc"], s["label"]))
        )
    return ranked


def pareto_layers(scores: Sequence[Score]) -> List[List[Score]]:
    """Successive non-dominated layers of the feasible scores.

    Layer 0 is the Pareto frontier; peeling it off exposes layer 1, and
    so on.  Infeasible scores form one final layer of their own (they
    can never outrank a feasible design, however fast).
    """
    feasible = [score for score in scores if score["feasible"]]
    infeasible = [score for score in scores if not score["feasible"]]
    remaining = {score["label"]: score for score in feasible}
    layers: List[List[Score]] = []
    while remaining:
        frontier = pareto_frontier([
            DesignPoint(cost=score["area_units"], value=score["ipc"],
                        label=score["label"])
            for score in remaining.values()
        ])
        layer = [remaining.pop(point.label) for point in frontier]
        layers.append(layer)
    if infeasible:
        layers.append(
            sorted(infeasible,
                   key=lambda s: (s["area_units"], -s["ipc"], s["label"]))
        )
    return layers


def select_survivors(
    objective: Objective, scores: Sequence[Score], keep: int
) -> List[str]:
    """Labels promoted to the next (bigger-budget) rung.

    Scalar objectives keep the top ``keep`` of the ranking.  The pareto
    objective keeps whole non-dominated layers until at least ``keep``
    candidates survive — a layer is never split, so no member of a tied
    frontier is arbitrarily dropped.
    """
    keep = max(1, min(keep, len(scores)))
    if not objective.is_pareto:
        return [score["label"] for score in rank_scores(objective, scores)[:keep]]
    survivors: List[str] = []
    for layer in pareto_layers(scores):
        survivors.extend(score["label"] for score in layer)
        if len(survivors) >= keep:
            break
    return survivors
