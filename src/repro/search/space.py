"""Named search spaces over register-file configurations.

A search space is a small JSON object naming a space ``kind`` plus the
port/bus/latency dimensions to sweep; :func:`build_space` turns it into
the concrete list of :class:`Candidate` designs the driver evaluates.
Candidates are seeded from the :mod:`repro.hwmodel.pareto` enumerations
(``enumerate_single_banked`` / ``enumerate_register_file_cache``) so the
search walks exactly the geometries the area model prices.

Candidate labels deliberately reuse the Figure 8 sweep's architecture
keys (``1-cycle/3R2W``, ``2-cycle-1byp/3R2W``, ``rfc/4R3W2B``): a point
evaluated by a figure job and the same point evaluated by a search share
one store key, so searches over previously-swept ground are pure cache
hits.

Space kinds::

    {"kind": "single-banked",
     "read_ports": [2, 3, 4],      # optional, default (2, 3, 4)
     "write_ports": [2, 3, 4],     # optional, default (2, 3, 4)
     "latencies": [1]}             # optional, default (1,); 2 = one bypass

    {"kind": "register-file-cache",
     "read_ports": [2, 3, 4],      # upper-bank reads, default (2, 3, 4)
     "write_ports": [2, 3],        # upper-bank writes, default (2, 3)
     "buses": [1, 2],              # default (1, 2)
     "lower_write_ports": null}    # default: tied to the upper writes

    {"kind": "figure8"}            # the paper's full Figure 8 sweep
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.hwmodel.area import RegisterFileGeometry
from repro.hwmodel.configurations import RegisterFileCacheGeometry
from repro.hwmodel.evaluate import area_units, geometry_payload
from repro.hwmodel.pareto import (
    enumerate_register_file_cache,
    enumerate_single_banked,
)

#: Default dimension ranges, aligned with the Figure 8 sweep defaults.
SINGLE_READ_PORTS: Tuple[int, ...] = (2, 3, 4)
SINGLE_WRITE_PORTS: Tuple[int, ...] = (2, 3, 4)
SINGLE_LATENCIES: Tuple[int, ...] = (1,)
CACHE_READ_PORTS: Tuple[int, ...] = (2, 3, 4)
CACHE_WRITE_PORTS: Tuple[int, ...] = (2, 3)
CACHE_BUSES: Tuple[int, ...] = (1, 2)

#: Hard ceiling on enumerated candidates per space: a search request
#: must not be able to enqueue an unbounded sweep.
MAX_CANDIDATES = 512

#: Registers of the single-banked file / the RFC's lower bank.
LOWER_REGISTERS = 128

SPACE_KINDS = ("single-banked", "register-file-cache", "figure8")


@dataclass(frozen=True)
class Candidate:
    """One concrete design the search evaluates.

    ``label`` doubles as the simulation architecture key (store-key
    relevant); ``geometry`` prices the design analytically, so its area
    is known before any simulation runs.
    """

    label: str
    factory: Callable
    geometry: Union[RegisterFileGeometry, RegisterFileCacheGeometry]

    @property
    def area_units(self) -> float:
        return area_units(self.geometry)

    def describe(self) -> dict:
        return {
            "label": self.label,
            "area_units": round(self.area_units, 6),
            "geometry": geometry_payload(self.geometry),
        }


@dataclass(frozen=True)
class SearchSpace:
    """A validated space: its canonical echo plus concrete candidates."""

    kind: str
    dimensions: Dict[str, Optional[List[int]]]
    candidates: Tuple[Candidate, ...]

    def to_payload(self) -> dict:
        payload: dict = {"kind": self.kind}
        payload.update(self.dimensions)
        return payload


# ----------------------------------------------------------------------
# dimension validation
# ----------------------------------------------------------------------


def _int_list(
    payload: dict, name: str, default: Sequence[int], minimum: int = 1,
) -> List[int]:
    value = payload.get(name)
    if value is None:
        return list(default)
    if not isinstance(value, list) or not value:
        raise ConfigurationError(
            f"search space {name} must be a non-empty list of integers"
        )
    seen = []
    for item in value:
        if not isinstance(item, int) or isinstance(item, bool) or item < minimum:
            raise ConfigurationError(
                f"search space {name} values must be integers >= {minimum} "
                f"(got {item!r})"
            )
        if item not in seen:
            seen.append(item)
    return seen


def _reject_unknown(payload: dict, known: Sequence[str], kind: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ConfigurationError(
            f"unknown field(s) for {kind!r} search space: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )


# ----------------------------------------------------------------------
# candidate enumeration per kind
# ----------------------------------------------------------------------


def _single_banked_candidates(
    read_ports: Sequence[int],
    write_ports: Sequence[int],
    latencies: Sequence[int],
) -> List[Candidate]:
    from repro.experiments.common import (
        one_cycle_factory,
        two_cycle_one_bypass_factory,
    )

    candidates = []
    for latency in latencies:
        for geometry in enumerate_single_banked(
            num_registers=LOWER_REGISTERS,
            read_port_range=read_ports,
            write_port_range=write_ports,
        ):
            reads, writes = geometry.read_ports, geometry.write_ports
            if latency == 1:
                factory = one_cycle_factory(read_ports=reads, write_ports=writes)
                label = f"1-cycle/{reads}R{writes}W"
            else:
                factory = two_cycle_one_bypass_factory(
                    read_ports=reads, write_ports=writes
                )
                label = f"2-cycle-1byp/{reads}R{writes}W"
            candidates.append(Candidate(label, factory, geometry))
    return candidates


def _cache_candidates(
    read_ports: Sequence[int],
    write_ports: Sequence[int],
    buses: Sequence[int],
    lower_write_ports: Optional[Sequence[int]],
) -> List[Candidate]:
    from repro.experiments.common import register_file_cache_factory

    tied = lower_write_ports is None
    lower_range = list(write_ports) if tied else list(lower_write_ports)
    candidates = []
    for geometry in enumerate_register_file_cache(
        lower_registers=LOWER_REGISTERS,
        upper_read_range=read_ports,
        upper_write_range=write_ports,
        lower_write_range=lower_range,
        bus_range=buses,
    ):
        if tied and geometry.lower_write_ports != geometry.upper_write_ports:
            continue
        factory = register_file_cache_factory(
            upper_read_ports=geometry.upper_read_ports,
            upper_write_ports=geometry.upper_write_ports,
            lower_write_ports=geometry.lower_write_ports,
            buses=geometry.buses,
        )
        reads = geometry.upper_read_ports
        writes = geometry.upper_write_ports
        if tied:
            label = f"rfc/{reads}R{writes}W{geometry.buses}B"
        else:
            label = (
                f"rfc/{reads}R{writes}W"
                f"{geometry.lower_write_ports}L{geometry.buses}B"
            )
        candidates.append(Candidate(label, factory, geometry))
    return candidates


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def build_space(payload) -> SearchSpace:
    """Validate a space payload and enumerate its candidates.

    Raises :class:`~repro.errors.ConfigurationError` on anything
    malformed — unknown kinds or fields, bad dimension values, an empty
    or oversized enumeration.
    """
    if isinstance(payload, str):
        payload = {"kind": payload}
    if not isinstance(payload, dict):
        raise ConfigurationError("search space must be a JSON object (or a kind name)")
    kind = payload.get("kind")
    if kind not in SPACE_KINDS:
        raise ConfigurationError(
            f"unknown search space kind {kind!r} "
            f"(known: {', '.join(SPACE_KINDS)})"
        )

    if kind == "single-banked":
        _reject_unknown(
            payload, ("kind", "read_ports", "write_ports", "latencies"), kind
        )
        reads = _int_list(payload, "read_ports", SINGLE_READ_PORTS)
        writes = _int_list(payload, "write_ports", SINGLE_WRITE_PORTS)
        latencies = _int_list(payload, "latencies", SINGLE_LATENCIES)
        if any(latency not in (1, 2) for latency in latencies):
            raise ConfigurationError(
                "search space latencies must be 1 (non-pipelined) or "
                "2 (pipelined, one bypass level)"
            )
        candidates = _single_banked_candidates(reads, writes, latencies)
        dimensions = {
            "read_ports": reads, "write_ports": writes, "latencies": latencies,
        }
    elif kind == "register-file-cache":
        _reject_unknown(
            payload,
            ("kind", "read_ports", "write_ports", "buses", "lower_write_ports"),
            kind,
        )
        reads = _int_list(payload, "read_ports", CACHE_READ_PORTS)
        writes = _int_list(payload, "write_ports", CACHE_WRITE_PORTS)
        buses = _int_list(payload, "buses", CACHE_BUSES)
        lower = (
            None if payload.get("lower_write_ports") is None
            else _int_list(payload, "lower_write_ports", ())
        )
        candidates = _cache_candidates(reads, writes, buses, lower)
        dimensions = {
            "read_ports": reads, "write_ports": writes, "buses": buses,
            "lower_write_ports": lower,
        }
    else:  # figure8: the paper's fixed union sweep, no dimensions
        _reject_unknown(payload, ("kind",), kind)
        candidates = _single_banked_candidates(
            SINGLE_READ_PORTS, SINGLE_WRITE_PORTS, (1, 2)
        ) + _cache_candidates(
            CACHE_READ_PORTS, CACHE_WRITE_PORTS, CACHE_BUSES, None
        )
        dimensions = {}

    if not candidates:
        raise ConfigurationError("search space enumerates no candidates")
    if len(candidates) > MAX_CANDIDATES:
        raise ConfigurationError(
            f"search space enumerates {len(candidates)} candidates "
            f"(limit: {MAX_CANDIDATES}); restrict the dimension ranges"
        )
    labels = [candidate.label for candidate in candidates]
    if len(set(labels)) != len(labels):
        raise ConfigurationError("search space produced duplicate candidate labels")
    return SearchSpace(kind=kind, dimensions=dimensions,
                       candidates=tuple(candidates))
