"""repro.service — persistent sweep service over the experiment engine.

PRs 1–4 made one sweep fast (parallel scheduler, two-tier result store,
trace-once/replay-many, warm worker pool); this package makes the engine
*infrastructure*: a long-lived HTTP service whose warm pools and caches
amortize across every submitted job instead of every process.

* ``python -m repro.service serve`` — the server: a JSON API
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/result``,
  ``GET /healthz``, ``GET /metrics``) over a priority job queue with a
  schema-versioned on-disk job store (atomic writes; queued and running
  jobs resume after a restart) and two-level single-flight deduplication
  (completed points come from the shared
  :class:`~repro.experiments.store.ResultStore`, identical in-flight
  points across concurrent jobs share one simulation).
* ``python -m repro.service submit|status|result|watch`` — the client
  CLI over :class:`ServiceClient`.

Execution rides the same :class:`~repro.experiments.scheduler.SweepEngine`
facade the experiment runner uses — the service adds no second execution
engine.  See ``docs/service.md``.
"""

from repro.service.app import ServiceApp
from repro.service.client import DEFAULT_URL, ServiceClient, ServiceError
from repro.service.jobs import (
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobStore,
)
from repro.service.server import build_server
from repro.service.spec import ApiError, validate_submission

__all__ = [
    "ApiError",
    "COMPLETED",
    "DEFAULT_URL",
    "FAILED",
    "Job",
    "JobQueue",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "build_server",
    "validate_submission",
]
