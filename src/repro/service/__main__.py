"""Command-line interface of the sweep service.

Run the server (long-lived; SIGTERM drains running jobs and exits)::

    python -m repro.service serve --port 8642 --cache-dir .simcache --jobs 4

Talk to it::

    job=$(python -m repro.service submit --figure figure6 --instructions 2000)
    python -m repro.service watch  "$job"
    python -m repro.service status "$job"
    python -m repro.service result "$job" --format csv
    python -m repro.service metrics

Let the service pick the config instead of naming one::

    sid=$(python -m repro.service search --space figure8 \
              --objective "pareto ipc-vs-area" --wait)
    python -m repro.service frontier "$sid"

``submit`` prints the new job id alone on stdout (shell-friendly);
everything narrative goes to stderr.  Server-side rejections are
printed verbatim as ``error: [<code>] <message>``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import Optional, Sequence

from repro.obs import logging as obs_logging
from repro.obs import profile as obs_profile
from repro.service.app import ServiceApp
from repro.service.client import DEFAULT_URL, ServiceClient, ServiceError
from repro.service.jobs import COMPLETED
from repro.service.server import build_server
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the sweep service")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (default: 8642; 0 picks a free port)")
    serve.add_argument("--cache-dir", default=None,
                       help="directory for the persistent result/trace/job "
                            "stores; omit for a memory-only (non-resumable) "
                            "service")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the simulation fan-out "
                            "(default: 1, serial)")
    serve.add_argument("--job-concurrency", type=int, default=2,
                       help="jobs executed concurrently; identical in-flight "
                            "points are single-flighted (default: 2)")
    serve.add_argument("--no-trace-replay", action="store_true",
                       help="run every point with a live frontend instead of "
                            "the trace-once/replay-many engine")
    serve.add_argument("--replicas", type=int, default=1,
                       help="run N service replicas in this process on "
                            "consecutive ports, sharing the cache dir "
                            "(default: 1)")
    serve.add_argument("--replica-id", default=None,
                       help="stable replica identity for leases/metrics "
                            "(default: host-pid-random)")
    serve.add_argument("--lease-ttl", type=float, default=None,
                       help="job lease lifetime in seconds; a replica dead "
                            "longer than this has its jobs stolen "
                            "(default: 15)")
    serve.add_argument("--claim-ttl", type=float, default=None,
                       help="point claim lifetime in seconds; a point "
                            "claimed by a replica dead longer than this is "
                            "re-executed by whoever waits on it "
                            "(default: 120)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="reject submissions with a structured 503 "
                            "'overloaded' (plus Retry-After) once this many "
                            "jobs are waiting (default: unbounded)")
    serve.add_argument("--port-file", default=None,
                       help="write the bound port(s), one per line, to this "
                            "file once listening — pair with --port 0 for "
                            "race-free ephemeral ports in scripts and CI")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress progress lines on stderr")
    serve.add_argument("--log-level", default="info",
                       choices=("debug", "info", "warning", "error"),
                       help="stderr log verbosity (default: info)")
    serve.add_argument("--log-json", action="store_true",
                       help="emit log lines as JSON objects (one per line) "
                            "carrying the active trace_id")
    serve.add_argument("--profile-dir", default=None,
                       help="enable cProfile in the server and every "
                            "simulation worker; .pstats files land here on "
                            "drain (default: off)")

    def client_parser(name: str, help_text: str) -> argparse.ArgumentParser:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("--url", default=DEFAULT_URL,
                             help=f"service base URL (default: {DEFAULT_URL})")
        return command

    submit = client_parser("submit", "submit a sweep job; prints the job id")
    group = submit.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", default=None,
                       help="named figure plan to run (or 'all')")
    group.add_argument("--points-file", default=None,
                       help="JSON file with an explicit {'points': [...]} spec")
    submit.add_argument("--instructions", type=int, default=None,
                        help="committed instructions per benchmark per run")
    submit.add_argument("--warmup-instructions", type=int, default=None,
                        help="warmup instructions per run")
    submit.add_argument("--benchmarks", nargs="*", default=None,
                        help="restrict the figure plan to these benchmarks")
    submit.add_argument("--priority", type=int, default=0,
                        help="queue priority; higher runs first (default: 0)")
    submit.add_argument("--sample", default=None,
                        metavar="STRIDE:WINDOW[:WARMUP]",
                        help="estimate every point by systematic interval "
                             "sampling instead of exact simulation "
                             "(server-validated; default: exact)")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="server-side wall-clock budget from submission; "
                             "an unfinished job fails with cause "
                             "deadline_exceeded (default: unbounded)")
    submit.add_argument("--wait", action="store_true",
                        help="watch the job until it finishes")

    search = client_parser("search",
                           "submit a config-space search; prints the job id")
    search.add_argument("--spec-file", default=None,
                        help="JSON file with a full search request; flags "
                             "below override its fields")
    search.add_argument("--space", default=None,
                        choices=("single-banked", "register-file-cache",
                                 "figure8"),
                        help="search space kind (default: single-banked)")
    search.add_argument("--objective", default=None,
                        help="'max ipc', 'min area' or 'pareto ipc-vs-area' "
                             "(default: pareto ipc-vs-area)")
    search.add_argument("--constraint", action="append", default=None,
                        metavar="EXPR",
                        help="feasibility bound, e.g. 'area_units <= 25000' "
                             "or 'ipc >= 1.0' (repeatable)")
    search.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmarks scored per candidate "
                             "(default: gcc)")
    search.add_argument("--instructions", type=int, default=None,
                        help="committed instructions per evaluation "
                             "(default: 2000)")
    search.add_argument("--warmup-instructions", type=int, default=None,
                        help="warmup instructions per evaluation (default: 0)")
    search.add_argument("--read-ports", nargs="+", type=int, default=None,
                        help="read-port dimension of the space")
    search.add_argument("--write-ports", nargs="+", type=int, default=None,
                        help="write-port dimension of the space")
    search.add_argument("--latencies", nargs="+", type=int, default=None,
                        help="single-banked latencies to sweep (1 and/or 2)")
    search.add_argument("--buses", nargs="+", type=int, default=None,
                        help="bus dimension (register-file-cache space)")
    search.add_argument("--lower-write-ports", nargs="+", type=int,
                        default=None,
                        help="lower-bank write ports (register-file-cache "
                             "space; default: tied to the upper writes)")
    search.add_argument("--rungs", type=int, default=None,
                        help="sampled successive-halving rungs before the "
                             "exact rung (default: 1)")
    search.add_argument("--eta", type=int, default=None,
                        help="halving factor: keep ceil(n/eta) per rung "
                             "(default: 2)")
    search.add_argument("--min-survivors", type=int, default=None,
                        help="never halve below this many candidates "
                             "(default: 2)")
    search.add_argument("--priority", type=int, default=0,
                        help="queue priority; higher runs first (default: 0)")
    search.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="server-side wall-clock budget from submission; "
                             "an unfinished search fails with cause "
                             "deadline_exceeded (default: unbounded)")
    search.add_argument("--wait", action="store_true",
                        help="watch the search until it finishes")

    frontier = client_parser("frontier",
                             "print a completed search's Pareto frontier")
    frontier.add_argument("job_id")
    frontier.add_argument("--format", default="table",
                          choices=("table", "json", "csv"),
                          help="frontier rendering (default: table)")

    status = client_parser("status", "print one job's status record")
    status.add_argument("job_id")

    result = client_parser("result", "print a completed job's result")
    result.add_argument("job_id")
    result.add_argument("--format", default="json", choices=("json", "csv"),
                        help="result rendering (default: json)")

    watch = client_parser("watch", "poll a job until it finishes")
    watch.add_argument("job_id")
    watch.add_argument("--interval", type=float, default=0.5,
                       help="initial poll interval in seconds (default: 0.5); "
                            "backs off with jitter while the job is idle")
    watch.add_argument("--max-interval", type=float, default=None,
                       help="poll interval ceiling for the idle backoff "
                            "(default: max(interval, 8.0))")
    watch.add_argument("--timeout", type=float, default=None,
                       help="give up after this many seconds")

    client_parser("metrics", "print the service metrics snapshot")
    client_parser("health", "print the service health record")
    return parser


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------


def _run_serve(args: argparse.Namespace) -> int:
    # Progress lines flow through the stdlib logger so --log-level
    # filters them and --log-json turns them into machine-readable
    # records stamped with the active trace_id.
    obs_logging.setup(level=args.log_level, json_lines=args.log_json)
    logger = obs_logging.get_logger("service")

    def progress(message: str) -> None:
        logger.info(message)

    if args.profile_dir is not None:
        # The env var is inherited by the simulation worker processes
        # (each dumps <dir>/worker-<pid>.pstats at exit); the server
        # process profiles itself under the "serve" prefix.
        os.environ[obs_profile.PROFILE_ENV] = os.path.abspath(args.profile_dir)
        obs_profile.enable("serve")

    if args.replicas < 1:
        print("error: --replicas must be at least 1", file=sys.stderr)
        return 2
    if args.replicas > 1 and not args.cache_dir:
        print("error: --replicas needs --cache-dir (replicas coordinate "
              "through the shared cache tree)", file=sys.stderr)
        return 2

    lease_kwargs = {}
    if args.lease_ttl is not None:
        lease_kwargs["lease_ttl"] = args.lease_ttl
    if args.claim_ttl is not None:
        lease_kwargs["claim_ttl"] = args.claim_ttl

    pairs = []  # (app, server) per replica
    for index in range(args.replicas):
        replica_id = args.replica_id
        if replica_id is not None and args.replicas > 1:
            replica_id = f"{replica_id}-{index}"
        app = ServiceApp(
            cache_dir=args.cache_dir,
            jobs=args.jobs,
            job_concurrency=args.job_concurrency,
            use_trace_replay=not args.no_trace_replay,
            progress=None if args.quiet else progress,
            replica_id=replica_id,
            max_queue_depth=args.max_queue_depth,
            **lease_kwargs,
        )
        port = args.port + index if args.port else 0
        try:
            server = build_server(app, host=args.host, port=port)
        except OSError as error:
            print(f"error: cannot bind {args.host}:{port}: {error}",
                  file=sys.stderr)
            for _, started in pairs:
                started.server_close()
            return 2
        pairs.append((app, server))

    for app, server in pairs:
        app.start()
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        print(
            f"repro.service {__version__} serving on http://{host}:{port} "
            f"(cache: {args.cache_dir or 'memory only'}, jobs={args.jobs}, "
            f"job-concurrency={args.job_concurrency}, "
            f"replica={app.replica_id})",
            file=sys.stderr, flush=True,
        )

    if args.port_file:
        # Written only after every replica is bound and serving, so a
        # script can block on the file's existence instead of polling
        # the port (and `--port 0` becomes race-free in CI).
        ports = "\n".join(
            str(server.server_address[1]) for _, server in pairs
        )
        try:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(ports + "\n")
        except OSError as error:
            print(f"error: cannot write --port-file: {error}",
                  file=sys.stderr)
            for _, server in pairs:
                server.shutdown()
                server.server_close()
            for app, _ in pairs:
                app.stop(drain=False)
            return 2

    stop = threading.Event()

    def request_shutdown(signum, frame) -> None:  # noqa: ARG001
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    while not stop.is_set():
        stop.wait(0.5)
    print("shutdown: draining running jobs...", file=sys.stderr, flush=True)
    for _, server in pairs:
        server.shutdown()
        server.server_close()
    for app, _ in pairs:
        app.stop(drain=True)
    if args.profile_dir is not None:
        obs_profile.flush()  # dump the server's own .pstats before exit
    print("shutdown: complete", file=sys.stderr, flush=True)
    return 0


# ----------------------------------------------------------------------
# client commands
# ----------------------------------------------------------------------


def _print_job_line(job: dict) -> None:
    points = job.get("points", {})
    print(
        f"job {job.get('id')}: {job.get('state')} "
        f"[{points.get('completed', 0)}/{points.get('unique', 0)} points]",
        file=sys.stderr, flush=True,
    )


def _watch(client: ServiceClient, job_id: str, interval: float = 0.5,
           timeout: Optional[float] = None,
           max_interval: Optional[float] = None) -> int:
    last_phase = [None]

    def on_phase(event: dict) -> None:
        phase = event.get("phase")
        if phase == last_phase[0]:
            return
        last_phase[0] = phase
        print(f"job {job_id}: phase {phase}", file=sys.stderr, flush=True)

    job = client.watch(job_id, interval=interval, timeout=timeout,
                       max_interval=max_interval, on_update=_print_job_line,
                       on_phase=on_phase)
    # Final span breakdown (queue wait / lease hold / execute) from the
    # event stream; older servers without /events just skip it.
    breakdown = client.job_span_breakdown(job_id)
    if breakdown:
        parts = ", ".join(
            f"{name} {seconds:.3f}s"
            for name, seconds in sorted(breakdown.items())
        )
        print(f"job {job_id}: spans {parts}", file=sys.stderr, flush=True)
    if job.get("state") == COMPLETED:
        return 0
    error = job.get("error") or {}
    print(f"error: [{error.get('code', 'unknown')}] "
          f"{error.get('message', 'job failed')}", file=sys.stderr)
    return 1


def _run_submit(args: argparse.Namespace, client: ServiceClient) -> int:
    if args.points_file is not None:
        try:
            with open(args.points_file, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read points file: {error}", file=sys.stderr)
            return 2
        if isinstance(spec, dict):
            spec.setdefault("priority", args.priority)
            if args.sample is not None:
                spec.setdefault("sample", args.sample)
            if args.deadline is not None:
                spec.setdefault("deadline_s", args.deadline)
    else:
        settings: dict = {}
        if args.instructions is not None:
            settings["instructions"] = args.instructions
        if args.warmup_instructions is not None:
            settings["warmup_instructions"] = args.warmup_instructions
        if args.benchmarks is not None:
            settings["benchmarks"] = args.benchmarks
        spec = {"figure": args.figure, "settings": settings,
                "priority": args.priority}
        if args.sample is not None:
            # Passed through verbatim; the server validates and echoes
            # the resolved spec (422 invalid_sampling on bad values).
            spec["sample"] = args.sample
        if args.deadline is not None:
            spec["deadline_s"] = args.deadline
    job = client.submit(spec)
    _print_job_line(job)
    print(job["id"])
    if args.wait:
        return _watch(client, job["id"])
    return 0


def _run_search(args: argparse.Namespace, client: ServiceClient) -> int:
    spec: dict = {}
    if args.spec_file is not None:
        try:
            with open(args.spec_file, "r", encoding="utf-8") as handle:
                spec = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read spec file: {error}", file=sys.stderr)
            return 2
        if not isinstance(spec, dict):
            print("error: spec file must hold a JSON object", file=sys.stderr)
            return 2

    dims = {
        "read_ports": args.read_ports,
        "write_ports": args.write_ports,
        "latencies": args.latencies,
        "buses": args.buses,
        "lower_write_ports": args.lower_write_ports,
    }
    if args.space is not None or any(v is not None for v in dims.values()):
        space = spec.get("space")
        if isinstance(space, str):
            space = {"kind": space}
        elif not isinstance(space, dict):
            space = {}
        else:
            space = dict(space)
        if args.space is not None:
            space["kind"] = args.space
        space.setdefault("kind", "single-banked")
        for key, value in dims.items():
            if value is not None:
                space[key] = value
        spec["space"] = space
    spec.setdefault("space", "single-banked")

    if args.objective is not None:
        spec["objective"] = args.objective
    if args.constraint is not None:
        spec["constraints"] = args.constraint
    if args.benchmarks is not None:
        spec["benchmarks"] = args.benchmarks
    for key in ("instructions", "warmup_instructions", "rungs", "eta",
                "min_survivors"):
        value = getattr(args, key)
        if value is not None:
            spec[key] = value
    spec["priority"] = args.priority
    if args.deadline is not None:
        spec["deadline_s"] = args.deadline

    job = client.search(spec)
    _print_job_line(job)
    print(job["id"])
    if args.wait:
        return _watch(client, job["id"])
    return 0


def _run_frontier(args: argparse.Namespace, client: ServiceClient) -> int:
    frontier = client.frontier(args.job_id)
    if args.format == "json":
        print(json.dumps(frontier, indent=2, sort_keys=True))
    elif args.format == "csv":
        print("label,area_units,ipc")
        for point in frontier:
            print(f"{point['label']},{point['area_units']},{point['ipc']}")
    else:
        width = max([len("config")] + [len(p["label"]) for p in frontier])
        print(f"{'config':<{width}}  {'area_units':>12}  {'ipc':>10}")
        for point in frontier:
            print(f"{point['label']:<{width}}  "
                  f"{point['area_units']:>12.1f}  {point['ipc']:>10.6f}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    client = ServiceClient(base_url=args.url)
    try:
        if args.command == "submit":
            return _run_submit(args, client)
        if args.command == "search":
            return _run_search(args, client)
        if args.command == "frontier":
            return _run_frontier(args, client)
        if args.command == "status":
            print(json.dumps(client.status(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        if args.command == "result":
            result = client.result(args.job_id, fmt=args.format)
            if args.format == "csv":
                print(result, end="")
            else:
                print(json.dumps(result, indent=2, sort_keys=True))
            return 0
        if args.command == "watch":
            return _watch(client, args.job_id, interval=args.interval,
                          timeout=args.timeout,
                          max_interval=args.max_interval)
        if args.command == "metrics":
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            return 0
        if args.command == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
    except ServiceError as error:
        # The server's structured error, verbatim: "error: [<code>] <message>".
        print(f"error: {error}", file=sys.stderr)
        return 2 if error.status is None else 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    sys.exit(main())
