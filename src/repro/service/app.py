"""The sweep service core: job admission, execution and metrics.

:class:`ServiceApp` is the whole service minus HTTP: it owns the shared
:class:`~repro.experiments.scheduler.SweepEngine` (one warm worker pool
and one result/trace cache for the service's lifetime), the job
registry/queue and the executor threads.  The HTTP layer
(:mod:`repro.service.server`) is a thin translation onto these methods,
which keeps every behaviour — admission errors, dedup, resume, drain —
testable without sockets.

Deduplication happens at two levels, both inherited from the engine:

* **completed points** are served from the ``ResultStore``/``TraceStore``
  (a re-submitted figure is ~instant, ``executed == 0``);
* **in-flight points** submitted concurrently by different jobs are
  single-flighted — one job simulates, the others wait on the shared
  result and report the points as ``shared_inflight``;
* **points claimed by another replica** sharing the cache tree are
  awaited instead of re-executed (``remote_inflight``; see
  :mod:`repro.service.fleet` and the engine's store-level claims).

With N replicas over one ``--cache-dir`` the app also runs a fleet
control loop: jobs are executed under an expiring **lease** (at most
one replica runs a job; a crashed replica's jobs are stolen and re-run,
completed points being cache hits), a **heartbeat** thread renews
leases and publishes this replica's counters, and a **poller** thread
adopts jobs submitted to other replicas, refreshes job records this
replica is not running, and steals expired leases.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.chaos import seams as _seams
from repro.errors import ReproError
from repro.experiments.common import SimulationCache
from repro.experiments.scheduler import SweepEngine, dedupe_points
from repro.experiments.store import ResultStore
from repro.obs import prometheus as _prometheus
from repro.obs.context import TraceContext
from repro.obs.events import EventBus, EventLog
from repro.obs.metrics import MetricsRegistry, RateWindow
from repro.obs.telemetry import Telemetry
from repro.service import spec as spec_mod
from repro.service.fleet import (
    DEFAULT_LEASE_TTL,
    LeaseManager,
    ReplicaRegistry,
    default_replica_id,
)
from repro.service.jobs import (
    COMPLETED,
    DEFAULT_POISON_ATTEMPTS,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobStore,
    new_job_id,
)
from repro.service.spec import ApiError
from repro.trace import TraceStore
from repro.version import __version__

#: Metrics/health payload schema; bump on layout changes.
METRICS_SCHEMA_VERSION = 1

#: Progress sink for one-line status messages.
ProgressCallback = Callable[[str], None]

#: How often the deadline watchdog re-checks running/queued jobs.
WATCHDOG_INTERVAL = 0.2

#: Point-counter families served under ``points`` in /metrics.  The
#: names and their order are part of the JSON contract (regression
#: tested against the historical payload shape).
_POINT_FIELDS = (
    "requested", "unique", "completed", "executed", "from_cache",
    "shared_inflight", "remote_inflight", "remote_reclaimed",
)

#: Subdirectory of the cache dir holding the telemetry event log.
EVENTS_SUBDIR = "events"


class _DeadlineExceeded(Exception):
    """Internal: raised out of ``on_point`` when a job's budget is gone."""


def _hit_rate(counters: Dict[str, int]) -> float:
    hits = counters.get("memory_hits", 0) + counters.get("disk_hits", 0)
    lookups = hits + counters.get("misses", 0)
    return round(hits / lookups, 4) if lookups else 0.0


class ServiceApp:
    """Long-lived sweep service over one shared :class:`SweepEngine`."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        job_concurrency: int = 1,
        use_trace_replay: bool = True,
        progress: Optional[ProgressCallback] = None,
        replica_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        fleet_poll_interval: float = 1.0,
        claim_ttl: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
        poison_attempts: int = DEFAULT_POISON_ATTEMPTS,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if job_concurrency < 1:
            raise ValueError("job_concurrency must be at least 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if poison_attempts < 1:
            raise ValueError("poison_attempts must be at least 1")
        self.cache_dir = cache_dir
        self.progress = progress
        self.replica_id = replica_id or default_replica_id()
        self.lease_ttl = lease_ttl
        self.fleet_poll_interval = fleet_poll_interval
        if telemetry is None:
            log = bus = None
            if cache_dir:
                log = EventLog(
                    os.path.join(cache_dir, EVENTS_SUBDIR),
                    source=f"service-{self.replica_id}",
                )
                bus = EventBus()
            telemetry = Telemetry(registry=MetricsRegistry(), log=log, bus=bus)
        #: The replica's observability bundle: metrics registry, on-disk
        #: event log (cache-dir backed) and the SSE ring buffer.
        self.telemetry = telemetry
        self.store = ResultStore(cache_dir=cache_dir, owner=self.replica_id)
        self.trace_store = TraceStore(cache_dir)
        self.store.set_observer(self._storage_observer("results"))
        self.trace_store.set_observer(self._storage_observer("traces"))
        engine_kwargs = {}
        if claim_ttl is not None:
            engine_kwargs["claim_ttl"] = claim_ttl
        self.engine = SweepEngine(
            store=self.store,
            jobs=jobs,
            use_trace_replay=use_trace_replay,
            trace_store=self.trace_store,
            telemetry=self.telemetry,
            **engine_kwargs,
        )
        self.job_store = JobStore(cache_dir)
        self.leases = LeaseManager(cache_dir, owner=self.replica_id, ttl=lease_ttl)
        self.replicas = ReplicaRegistry(cache_dir, replica_id=self.replica_id)
        self.queue = JobQueue()
        self.job_concurrency = job_concurrency
        self.started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
        # The rate clock is monotonic: wall-clock (``started_at``) is for
        # display only, so an NTP step can never skew (or negate) the
        # points/min rate derived from uptime.  Injectable for tests.
        self._monotonic = time.monotonic
        self._started_clock = self._monotonic()
        # The lambda re-reads ``self._monotonic`` on every tick, so tests
        # that inject a fake clock after construction stay in control of
        # the sliding window too.
        self._rate_window = RateWindow(clock=lambda: self._monotonic())
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        #: Validated plans of jobs admitted by *this* process; resumed
        #: jobs re-validate from their persisted spec instead.
        self._plans: Dict[str, spec_mod.JobPlan] = {}
        registry = self.telemetry.registry
        self._point_counters = {
            name: registry.counter(
                f"points.{name}", help=f"points {name} service-wide"
            )
            for name in _POINT_FIELDS
        }
        #: Backpressure: submissions beyond this queue depth are rejected
        #: with a structured 503 ``overloaded`` (``None`` = unbounded).
        self.max_queue_depth = max_queue_depth
        #: Execution attempts before a job is quarantined as poisonous.
        self.poison_attempts = poison_attempts
        # Fleet/robustness counters live in the registry; the public
        # ``app.stolen_jobs``-style names survive as read-only properties.
        self._resumed_jobs = registry.counter("jobs.resumed")
        self._adopted_jobs = registry.counter("jobs.adopted")
        self._stolen_jobs = registry.counter("jobs.stolen")
        self._poisoned_jobs = registry.counter("jobs.poisoned")
        self._deadline_failures = registry.counter("jobs.deadline_failures")
        self._rejected_overloaded = registry.counter("queue.rejected_overloaded")
        #: Pending queue-wait spans by job id: ``(span, perf_counter)``
        #: opened at admission, closed by the executor that picks the job
        #: up; plus the set of jobs whose root span already ended (the
        #: watchdog and the executor can both reach a terminal job).
        self._span_lock = threading.Lock()
        self._queue_waits: Dict[str, Tuple[TraceContext, float]] = {}
        self._ended_jobs: Set[str] = set()
        #: Job ids this replica is executing right now; the fleet poller
        #: never refreshes or steals a job its own executor owns.
        self._running_ids: set = set()
        self._running_lock = threading.Lock()

    # ------------------------------------------------------------------
    # registry-backed counter views (historical attribute names)
    # ------------------------------------------------------------------

    @property
    def resumed_jobs(self) -> int:
        return self._resumed_jobs.int_value

    @property
    def adopted_jobs(self) -> int:
        return self._adopted_jobs.int_value

    @property
    def stolen_jobs(self) -> int:
        return self._stolen_jobs.int_value

    @property
    def poisoned_jobs(self) -> int:
        return self._poisoned_jobs.int_value

    @property
    def deadline_failures(self) -> int:
        return self._deadline_failures.int_value

    @property
    def rejected_overloaded(self) -> int:
        return self._rejected_overloaded.int_value

    # ------------------------------------------------------------------
    # telemetry plumbing
    # ------------------------------------------------------------------

    def _storage_observer(self, tier: str):
        """An ``(op, seconds)`` sink for one store's disk tier: observes
        the latency histogram and emits a matched storage span pair."""

        def observer(op: str, seconds: float) -> None:
            name = f"storage.{op}"
            self.telemetry.registry.histogram(
                f"{name}_seconds", help=f"sharded-store {op} latency"
            ).observe(seconds)
            span = self.telemetry.span_start(name, tier=tier)
            self.telemetry.span_end(name, span, duration_s=seconds, tier=tier)

        return observer

    def _job_trace(self, job: Job) -> Optional[TraceContext]:
        """The job's root span context (from its persisted record)."""
        return TraceContext.from_dict(job.trace)

    def _end_queue_wait(self, job: Job) -> None:
        with self._span_lock:
            entry = self._queue_waits.pop(job.id, None)
        if entry is not None:
            span, started = entry
            self.telemetry.span_end(
                "queue.wait", span, started=started, job_id=job.id
            )

    def _finish_job_telemetry(self, job: Job) -> None:
        """Terminal phase + root-span end for a job, exactly once.

        Both the executor and the deadline watchdog can drive a job
        terminal; whichever arrives second only cleans up the pending
        queue-wait span (if the job never reached an executor)."""
        if not job.terminal:
            return
        with self._span_lock:
            already_ended = job.id in self._ended_jobs
            self._ended_jobs.add(job.id)
        self._end_queue_wait(job)
        if already_ended:
            return
        trace = self._job_trace(job)
        self.telemetry.phase(job.id, job.state, trace=trace,
                             replica=self.replica_id)
        if trace is None:
            return  # pre-telemetry job record: no root span to close
        duration = None
        try:
            submitted = datetime.fromisoformat(job.submitted_at)
            if submitted.tzinfo is None:
                submitted = submitted.replace(tzinfo=timezone.utc)
            duration = max(
                0.0,
                (datetime.now(timezone.utc) - submitted).total_seconds(),
            )
        except (TypeError, ValueError):
            pass
        self.telemetry.span_end(
            "job", trace, duration_s=duration, job_id=job.id, state=job.state
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def start(self) -> None:
        """Load persisted jobs (resuming unfinished ones), start executors."""
        self._stop.clear()  # a stopped app can be started again
        for job in self.job_store.load_all():
            resume = job.state in (QUEUED, RUNNING)
            if job.state == RUNNING:
                holder = self.leases.holder(job.id)
                if holder is not None and holder[0] != self.replica_id:
                    # Another replica of this cache tree is live and
                    # mid-job; register for status queries, don't touch.
                    self.queue.add(job, enqueue=False)
                    continue
                # The owning process died mid-job (no live lease); run it
                # again from the top — completed points are all cache
                # hits, so the rerun only pays for what was actually lost.
                job.record_fault("resume_requeue", "owner died mid-job",
                                 replica=self.replica_id)
                if self._poison_check(job):
                    self.queue.add(job, enqueue=False)
                    continue
                job.state = QUEUED
                job.started_at = None
                self.job_store.save(job)
            self.queue.add(job, enqueue=resume)
            if resume:
                self._resumed_jobs.inc()
                self.telemetry.phase(job.id, "resumed",
                                     trace=self._job_trace(job),
                                     replica=self.replica_id)
                self._say(f"resume: job {job.id} re-queued ({job.state})")
        if self.job_store.quarantined:
            self._say(
                f"job store: quarantined {self.job_store.quarantined} "
                f"unreadable job record(s)"
            )
        for index in range(self.job_concurrency):
            thread = threading.Thread(
                target=self._executor_loop,
                name=f"sweep-executor-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        watchdog = threading.Thread(
            target=self._watchdog_loop, name="deadline-watchdog", daemon=True
        )
        watchdog.start()
        self._threads.append(watchdog)
        if self.cache_dir:
            for name, target in (
                ("fleet-heartbeat", self._heartbeat_loop),
                ("fleet-poller", self._fleet_poll_loop),
            ):
                thread = threading.Thread(target=target, name=name, daemon=True)
                thread.start()
                self._threads.append(thread)
            self.replicas.publish(self._snapshot())

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the executors; with ``drain`` the running jobs finish first.

        Queued jobs are left in the (persistent) job store untouched —
        a later :meth:`start` on the same cache dir picks them up.
        """
        self._stop.set()
        if drain:
            for thread in self._threads:
                thread.join(timeout=timeout)
        self._threads = []
        # A final snapshot so fleet metrics keep this replica's finished
        # work after it drains (stale snapshots stay in the totals).
        self.replicas.publish(self._snapshot())
        self.engine.close()
        # Flush the event log last so engine-drain spans land in it; the
        # log reopens transparently if this app is started again.
        self.telemetry.close()

    # ------------------------------------------------------------------
    # admission and queries
    # ------------------------------------------------------------------

    def submit(self, payload, trace: Optional[TraceContext] = None) -> Job:
        """Validate a submission and enqueue a job (raises ApiError).

        ``trace`` is the client's context (parsed from ``X-Repro-Trace``
        by the HTTP layer, if sent); the job's root span is minted as its
        child, so a client-side trace id follows the job all the way to
        its last stored point.  Without one, a fresh trace is minted here.
        """
        if (self.max_queue_depth is not None
                and self.queue.depth() >= self.max_queue_depth):
            self._rejected_overloaded.inc()
            raise ApiError(
                503, "overloaded",
                f"job queue is full ({self.queue.depth()} waiting, "
                f"cap {self.max_queue_depth}); retry after the backlog "
                f"drains",
                retry_after=2.0,
            )
        plan = spec_mod.validate_submission(payload)
        job = Job(
            id=new_job_id(),
            spec=plan.spec,
            priority=int(plan.spec.get("priority", 0)),
        )
        if plan.kind == "search":
            # A search plans its points rung by rung; admit it with the
            # first rung's size (the counters grow as rungs complete).
            requested = unique = plan.search.rung0_points()
        else:
            points = plan.plan_points()
            requested = len(points)
            unique = len(dedupe_points(points))
        job.points["requested"] = requested
        job.points["unique"] = unique
        self._point_counters["requested"].inc(requested)
        job_span = self.telemetry.span_start(
            "job", parent=trace, job_id=job.id, job_kind=plan.kind
        )
        job.trace = job_span.to_dict()
        self.telemetry.phase(job.id, "queued", trace=job_span,
                             unique_points=unique, priority=job.priority)
        queue_span = self.telemetry.span_start(
            "queue.wait", parent=job_span, job_id=job.id
        )
        with self._span_lock:
            self._queue_waits[job.id] = (queue_span, time.perf_counter())
        self._plans[job.id] = plan
        self.job_store.save(job)
        self.queue.add(job)
        self._say(
            f"job {job.id}: queued ({job.points['unique']} unique points, "
            f"priority {job.priority})"
        )
        return job

    def get_job(self, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise ApiError(404, "job_not_found", f"no job with id {job_id!r}")
        return job

    def job_result(self, job_id: str, fmt: str = "json"):
        """The result payload of a completed job (dict for json, str for csv)."""
        if fmt not in ("json", "csv"):
            raise ApiError(400, "bad_format",
                           f"unsupported result format {fmt!r} (json or csv)")
        job = self.get_job(job_id)
        if job.state == FAILED:
            error = job.error or {}
            raise ApiError(
                409, "job_failed",
                f"job {job_id} failed: "
                f"[{error.get('code', 'unknown')}] {error.get('message', '')}",
            )
        if job.state != COMPLETED or job.result is None:
            raise ApiError(
                409, "job_not_completed",
                f"job {job_id} is {job.state}; results exist once it completes",
            )
        if fmt == "csv":
            return spec_mod.result_to_csv(job.result)
        return {"id": job.id, "version": __version__, "result": job.result}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=0.2)
            if job is None:
                continue
            if job.terminal:  # defensively skip stale queue entries
                continue
            if not self.leases.acquire(
                job.id, trace_id=(job.trace or {}).get("trace_id")
            ):
                # Another replica is running this job; our poller will
                # refresh its record (and steal it if that replica dies).
                continue
            try:
                # Read-through under the lease: another replica may have
                # finished (or re-shaped) the job since we enqueued it.
                latest = self.job_store.load(job.id)
                if latest is not None:
                    job.update_from(latest)
                if job.terminal:
                    self._finish_job_telemetry(job)
                    continue
                self._end_queue_wait(job)
                trace = self._job_trace(job)
                self.telemetry.phase(job.id, "leased", trace=trace,
                                     replica=self.replica_id)
                lease_span = self.telemetry.span_start(
                    "lease.hold", parent=trace, job_id=job.id
                )
                lease_started = time.perf_counter()
                with self._running_lock:
                    self._running_ids.add(job.id)
                try:
                    self._run_job(job)
                finally:
                    with self._running_lock:
                        self._running_ids.discard(job.id)
                    self.telemetry.span_end(
                        "lease.hold", lease_span, started=lease_started,
                        job_id=job.id,
                    )
            finally:
                self.leases.release(job.id)

    # ------------------------------------------------------------------
    # deadlines and poison quarantine
    # ------------------------------------------------------------------

    def _deadline_remaining(self, job: Job) -> Optional[float]:
        """Seconds left in the job's ``deadline_s`` budget; ``None`` when
        the job has no deadline.  Anchored at submission, so the budget
        covers queueing time, retries and steals — a job cannot dodge
        its deadline by ping-ponging between replicas."""
        deadline_s = (job.spec or {}).get("deadline_s")
        if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
            return None
        try:
            submitted = datetime.fromisoformat(job.submitted_at)
        except (TypeError, ValueError):
            return None
        if submitted.tzinfo is None:
            submitted = submitted.replace(tzinfo=timezone.utc)
        elapsed = (datetime.now(timezone.utc) - submitted).total_seconds()
        return float(deadline_s) - elapsed

    def _watchdog_loop(self) -> None:
        """Fail jobs past their deadline even when their executor hangs.

        The executor checks the deadline between points, but a *hung*
        worker never reaches the next point — this loop is the backstop
        that still fails the job (first terminal mark wins; the sticky
        ``mark_failed`` makes the race with a late executor harmless)
        and releases the lease so nothing steals a terminal job.
        """
        while not self._stop.wait(WATCHDOG_INTERVAL):
            for job in self.queue.jobs():
                if job.terminal:
                    continue
                remaining = self._deadline_remaining(job)
                if remaining is None or remaining > 0:
                    continue
                if job.mark_failed(
                    "deadline_exceeded",
                    f"job exceeded its {(job.spec or {}).get('deadline_s')}s "
                    f"deadline",
                ):
                    job.record_fault("deadline_exceeded",
                                     replica=self.replica_id)
                    self._deadline_failures.inc()
                    self.job_store.save(job)
                    self.leases.release(job.id)
                    self._finish_job_telemetry(job)
                    self._say(f"job {job.id}: failed [deadline_exceeded]")

    def _poison_check(self, job: Job) -> bool:
        """Quarantine a job that keeps dying mid-run; ``True`` if it was.

        Called wherever a job is about to be re-queued for another
        attempt (steal, crash-resume).  A job whose execution already
        *started* ``poison_attempts`` times is terminally failed with
        cause ``poisoned`` and its full record — fault history included —
        lands in ``jobs/quarantine/`` instead of ping-ponging between
        replicas forever.
        """
        if job.attempts < self.poison_attempts:
            return False
        if job.mark_failed(
            "poisoned",
            f"job kept dying mid-run; quarantined after {job.attempts} "
            f"attempts (see fault_history)",
        ):
            self._poisoned_jobs.inc()
            self.job_store.quarantine_job(job)
            self.leases.release(job.id)
            self._finish_job_telemetry(job)
            self._say(
                f"fleet: quarantined poison job {job.id} after "
                f"{job.attempts} attempts"
            )
        return True

    # ------------------------------------------------------------------
    # fleet control loops
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Renew held leases and publish this replica's counters."""
        interval = max(0.05, min(self.lease_ttl / 3.0, 2.0))
        while not self._stop.wait(interval):
            self.leases.renew_held()
            self.replicas.publish(self._snapshot())

    def _fleet_poll_loop(self) -> None:
        while not self._stop.wait(self.fleet_poll_interval):
            try:
                self._fleet_poll_once()
            except Exception as error:  # noqa: BLE001 - never kill the loop
                self._say(f"fleet poll error: {type(error).__name__}: {error}")

    def _fleet_poll_once(self) -> None:
        """Adopt, refresh and steal jobs from the shared job store."""
        with self._running_lock:
            running = set(self._running_ids)
        for disk_job in self.job_store.load_all():
            if disk_job.id in running:
                continue  # our executor's copy is authoritative
            known = self.queue.get(disk_job.id)
            if known is None:
                # Submitted to another replica: adopt it.  Queued jobs
                # enter our queue too — the lease decides who runs them.
                self.queue.add(disk_job, enqueue=disk_job.state == QUEUED)
                self._adopted_jobs.inc()
                if disk_job.state == QUEUED:
                    self._say(f"fleet: adopted queued job {disk_job.id}")
                known = disk_job
            elif disk_job.state != known.state or (
                disk_job.points != known.points
            ):
                known.update_from(disk_job)
            if known.state == RUNNING and self.leases.holder(known.id) is None:
                self._steal(known)

    def _steal(self, job: Job) -> None:
        """Take over a job whose owner's lease expired (crashed replica).

        Mirrors the restart-resume semantics: the job is reset to queued
        and re-run from the top; points the dead replica completed are
        cache hits, so only the genuinely lost work is paid again.
        """
        if not self.leases.acquire(
            job.id, trace_id=(job.trace or {}).get("trace_id")
        ):
            return  # someone else (or a revived owner) beat us to it
        try:
            latest = self.job_store.load(job.id)
            if latest is not None:
                job.update_from(latest)
            if job.state != RUNNING:
                return
            job.record_fault("lease_expired", "owner stopped heartbeating",
                             replica=self.replica_id)
            if self._poison_check(job):
                return
            job.state = QUEUED
            job.started_at = None
            self.job_store.save(job)
            self.queue.add(job, enqueue=True)
            self._stolen_jobs.inc()
            self.telemetry.phase(job.id, "stolen", trace=self._job_trace(job),
                                 replica=self.replica_id)
            self._say(f"fleet: stole job {job.id} (owner lease expired)")
        finally:
            self.leases.release(job.id)

    def _run_job(self, job: Job) -> None:
        remaining = self._deadline_remaining(job)
        if remaining is not None and remaining <= 0:
            # Spent its whole budget queueing; never start it.
            if job.mark_failed(
                "deadline_exceeded",
                f"job exceeded its {(job.spec or {}).get('deadline_s')}s "
                f"deadline before starting",
            ):
                job.record_fault("deadline_exceeded", replica=self.replica_id)
                self._deadline_failures.inc()
                self.job_store.save(job)
                self._finish_job_telemetry(job)
            return
        job.mark_running()
        self.job_store.save(job)
        self.telemetry.phase(job.id, "running", trace=self._job_trace(job),
                             replica=self.replica_id)
        self._say(f"job {job.id}: running")
        try:
            plan = self._plans.pop(job.id, None)
            if plan is None:  # resumed from the job store after a restart
                plan = spec_mod.validate_submission(job.spec)

            last_save = [time.monotonic()]

            def on_point(_point) -> None:
                if job.terminal:
                    # The deadline watchdog already failed this job; stop
                    # burning simulation time on a dead record.
                    raise _DeadlineExceeded()
                left = self._deadline_remaining(job)
                if left is not None and left <= 0:
                    raise _DeadlineExceeded()
                job.points["completed"] += 1
                self._rate_window.record(1)
                # Persist progress (throttled) so other replicas' watch
                # requests see this job advance, not just start/finish.
                now = time.monotonic()
                if now - last_save[0] >= 0.5:
                    last_save[0] = now
                    self.job_store.save(job)

            with self.telemetry.span(
                "execute", parent=self._job_trace(job), job_id=job.id,
                job_kind=plan.kind, histogram="job.execute_seconds",
            ):
                if plan.kind == "search":
                    from repro.search.driver import run_search

                    job.points["requested"] = 0
                    job.points["unique"] = 0

                    def on_rung(_index: int, rung_counters: dict) -> None:
                        # Point totals grow rung by rung: the halving
                        # schedule decides the next rung's size only once
                        # this one is scored.
                        job.points["requested"] += rung_counters["requested"]
                        job.points["unique"] += rung_counters["unique"]
                        self.job_store.save(job)

                    report, counters = run_search(
                        plan.search, self.engine, progress=self.progress,
                        on_point=on_point, on_rung=on_rung,
                    )
                    result = {"kind": "search", "report": report}
                else:
                    points = plan.plan_points()
                    job.points["requested"] = len(points)
                    job.points["unique"] = len(dedupe_points(points))
                    counters = self.engine.execute(
                        points, progress=self.progress, on_point=on_point
                    )
                    if plan.kind == "figures":
                        cache = SimulationCache(plan.settings, store=self.store)
                        result = spec_mod.assemble_figure_result(plan, cache)
                    else:
                        result = spec_mod.assemble_points_result(plan, self.store)
            job.points["completed"] = counters["unique"]
            completed = job.mark_completed(result, counters)
            self._point_counters["unique"].inc(counters["unique"])
            self._point_counters["completed"].inc(counters["unique"])
            self._point_counters["executed"].inc(counters["executed"])
            self._point_counters["from_cache"].inc(counters["cached"])
            self._point_counters["shared_inflight"].inc(
                counters["shared_inflight"]
            )
            self._point_counters["remote_inflight"].inc(
                counters.get("remote_inflight", 0)
            )
            self._point_counters["remote_reclaimed"].inc(
                counters.get("remote_reclaimed", 0)
            )
            if completed:
                self._say(
                    f"job {job.id}: completed ({counters['executed']} executed, "
                    f"{counters['cached']} cached, "
                    f"{counters['shared_inflight']} shared in-flight, "
                    f"{counters.get('remote_inflight', 0)} remote in-flight)"
                )
        except _DeadlineExceeded:
            if job.mark_failed(
                "deadline_exceeded",
                f"job exceeded its {(job.spec or {}).get('deadline_s')}s "
                f"deadline mid-run",
            ):
                job.record_fault("deadline_exceeded", replica=self.replica_id)
                self._deadline_failures.inc()
        except ApiError as error:
            job.mark_failed(error.code, error.message)
        except BrokenProcessPool as error:
            job.mark_failed(
                "worker_crashed",
                f"a simulation worker process died mid-job: {error} "
                f"(the warm pool was reset; re-submit to retry)",
            )
        except ReproError as error:
            job.mark_failed("execution_error", str(error))
        except Exception as error:  # noqa: BLE001 - jobs must never wedge the loop
            job.mark_failed("internal_error", f"{type(error).__name__}: {error}")
        finally:
            if job.state == FAILED:
                error = job.error or {}
                self._say(
                    f"job {job.id}: failed [{error.get('code')}] "
                    f"{error.get('message')}"
                )
            self.job_store.save(job)
            self._finish_job_telemetry(job)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def uptime_seconds(self) -> float:
        return round(self._monotonic() - self._started_clock, 1)

    @property
    def stopping(self) -> bool:
        """Whether a stop/drain has been requested (streams check this)."""
        return self._stop.is_set()

    def health(self) -> dict:
        """Liveness plus per-component state.

        ``status`` is ``"ok"`` when every component is, ``"degraded"``
        when any component is impaired but the service still answers
        (read-only storage, saturated queue) — distinct from *down*,
        which a client only ever observes as a connection failure.
        """
        storage_stats = self.store.storage_stats()
        storage_read_only = bool(storage_stats.get("read_only", 0))
        storage_degraded = (
            storage_read_only or self.job_store.save_errors > 0
        )
        depth = self.queue.depth()
        queue_saturated = (
            self.max_queue_depth is not None
            and depth >= self.max_queue_depth
        )
        pool_resets = self.engine.totals().get("pool_resets", 0)
        components = {
            "storage": {
                "status": "degraded" if storage_degraded else "ok",
                "writable": not storage_read_only,
                "write_errors": (storage_stats.get("write_errors", 0)
                                 + self.job_store.save_errors),
            },
            "pool": {
                # The warm pool self-heals (a broken pool is torn down
                # and rebuilt), so resets are a health *signal*, not a
                # degradation by themselves.
                "status": "ok",
                "resets": pool_resets,
            },
            "queue": {
                "status": "saturated" if queue_saturated else "ok",
                "depth": depth,
                "max_depth": self.max_queue_depth,
            },
        }
        degraded = storage_degraded or queue_saturated
        return {
            "status": "degraded" if degraded else "ok",
            "version": __version__,
            "started_at": self.started_at,
            "uptime_seconds": self.uptime_seconds(),
            "jobs": self.queue.by_state(),
            "components": components,
            "chaos": _seams.installed(),
        }

    def _points_payload(self, uptime: float) -> dict:
        """The ``points`` metrics family, in its historical key order.

        ``per_minute`` is the **sliding 60 s window** rate (a long-lived
        replica's current throughput); ``per_minute_lifetime`` keeps the
        uptime-averaged figure the field used to carry.
        """
        points = {
            name: self._point_counters[name].int_value
            for name in _POINT_FIELDS
        }
        points["per_minute"] = self._rate_window.per_minute()
        points["per_minute_lifetime"] = (
            round(points["completed"] * 60.0 / uptime, 2) if uptime > 0 else 0.0
        )
        return points

    def _snapshot(self) -> dict:
        """This replica's publishable counter snapshot (see fleet)."""
        uptime = self.uptime_seconds()
        return {
            "points": self._points_payload(uptime),
            "jobs": self.queue.by_state(),
            "uptime_seconds": uptime,
            # Mergeable latency histograms (fixed bounds ⇒ exact fleet
            # percentiles; see ReplicaRegistry.fleet_metrics).
            "histograms": self.telemetry.registry.histogram_payloads(),
        }

    def metrics(self) -> dict:
        uptime = self.uptime_seconds()
        points = self._points_payload(uptime)
        # Publish before aggregating so the fleet section always includes
        # this replica's own up-to-date counters.
        self.replicas.publish(self._snapshot())
        result_cache = self.store.counters()
        trace_cache = self.trace_store.counters()
        engine_totals = self.engine.totals()
        by_state = self.queue.by_state()
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "version": __version__,
            "started_at": self.started_at,
            "uptime_seconds": uptime,
            "queue": {
                "depth": self.queue.depth(),
                "max_depth": self.max_queue_depth,
                "rejected_overloaded": self.rejected_overloaded,
            },
            "jobs": {**by_state, "total": sum(by_state.values()),
                     "resumed": self.resumed_jobs,
                     "poisoned": self.poisoned_jobs,
                     "deadline_failures": self.deadline_failures},
            "points": points,
            "result_cache": {**result_cache, "hit_rate": _hit_rate(result_cache)},
            "trace_cache": {**trace_cache, "hit_rate": _hit_rate(trace_cache)},
            "engine": {
                "jobs": self.engine.jobs,
                "job_concurrency": self.job_concurrency,
                "use_trace_replay": self.engine.use_trace_replay,
                **engine_totals,
            },
            "job_store": {
                "persistent": bool(self.job_store.job_dir),
                "quarantined": self.job_store.quarantined,
                "save_errors": self.job_store.save_errors,
            },
            "storage": {
                "results": self.store.storage_stats(),
                "traces": self.trace_store.storage_stats(),
            },
            "replica": {
                "id": self.replica_id,
                "lease_ttl": self.lease_ttl,
                "held_leases": len(self.leases.held()),
                "resumed_jobs": self.resumed_jobs,
                "adopted_jobs": self.adopted_jobs,
                "stolen_jobs": self.stolen_jobs,
            },
            "fleet": self.replicas.fleet_metrics(
                fresh_within=max(self.lease_ttl, 3.0)
            ),
        }

    def prometheus_text(self) -> str:
        """The registry as Prometheus text exposition (version 0.0.4).

        Registry-native instruments (counters, histograms) render as
        themselves; derived values the JSON endpoint computes on the fly
        (queue depth, cache hit counters, storage stats, job states) are
        mirrored into gauges first so the exposition is self-contained.
        """
        registry = self.telemetry.registry
        registry.gauge("uptime_seconds").set(self.uptime_seconds())
        registry.gauge("queue.depth").set(self.queue.depth())
        registry.gauge("points.per_minute").set(self._rate_window.per_minute())
        registry.gauge("replica.held_leases").set(len(self.leases.held()))
        for state, count in self.queue.by_state().items():
            registry.gauge(f"jobs.state.{state}").set(count)
        for family, values in (
            ("result_cache", self.store.counters()),
            ("trace_cache", self.trace_store.counters()),
            ("storage.results", self.store.storage_stats()),
            ("storage.traces", self.trace_store.storage_stats()),
            ("job_store", {"quarantined": self.job_store.quarantined,
                           "save_errors": self.job_store.save_errors}),
        ):
            for key, value in values.items():
                registry.gauge(f"{family}.{key}").set(value)
        return _prometheus.render(registry, replica=self.replica_id)
