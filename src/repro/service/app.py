"""The sweep service core: job admission, execution and metrics.

:class:`ServiceApp` is the whole service minus HTTP: it owns the shared
:class:`~repro.experiments.scheduler.SweepEngine` (one warm worker pool
and one result/trace cache for the service's lifetime), the job
registry/queue and the executor threads.  The HTTP layer
(:mod:`repro.service.server`) is a thin translation onto these methods,
which keeps every behaviour — admission errors, dedup, resume, drain —
testable without sockets.

Deduplication happens at two levels, both inherited from the engine:

* **completed points** are served from the ``ResultStore``/``TraceStore``
  (a re-submitted figure is ~instant, ``executed == 0``);
* **in-flight points** submitted concurrently by different jobs are
  single-flighted — one job simulates, the others wait on the shared
  result and report the points as ``shared_inflight``;
* **points claimed by another replica** sharing the cache tree are
  awaited instead of re-executed (``remote_inflight``; see
  :mod:`repro.service.fleet` and the engine's store-level claims).

With N replicas over one ``--cache-dir`` the app also runs a fleet
control loop: jobs are executed under an expiring **lease** (at most
one replica runs a job; a crashed replica's jobs are stolen and re-run,
completed points being cache hits), a **heartbeat** thread renews
leases and publishes this replica's counters, and a **poller** thread
adopts jobs submitted to other replicas, refreshes job records this
replica is not running, and steals expired leases.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures.process import BrokenProcessPool
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional

from repro.chaos import seams as _seams
from repro.errors import ReproError
from repro.experiments.common import SimulationCache
from repro.experiments.scheduler import SweepEngine, dedupe_points
from repro.experiments.store import ResultStore
from repro.service import spec as spec_mod
from repro.service.fleet import (
    DEFAULT_LEASE_TTL,
    LeaseManager,
    ReplicaRegistry,
    default_replica_id,
)
from repro.service.jobs import (
    COMPLETED,
    DEFAULT_POISON_ATTEMPTS,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    JobStore,
    new_job_id,
)
from repro.service.spec import ApiError
from repro.trace import TraceStore
from repro.version import __version__

#: Metrics/health payload schema; bump on layout changes.
METRICS_SCHEMA_VERSION = 1

#: Progress sink for one-line status messages.
ProgressCallback = Callable[[str], None]

#: How often the deadline watchdog re-checks running/queued jobs.
WATCHDOG_INTERVAL = 0.2


class _DeadlineExceeded(Exception):
    """Internal: raised out of ``on_point`` when a job's budget is gone."""


def _hit_rate(counters: Dict[str, int]) -> float:
    hits = counters.get("memory_hits", 0) + counters.get("disk_hits", 0)
    lookups = hits + counters.get("misses", 0)
    return round(hits / lookups, 4) if lookups else 0.0


class ServiceApp:
    """Long-lived sweep service over one shared :class:`SweepEngine`."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        jobs: int = 1,
        job_concurrency: int = 1,
        use_trace_replay: bool = True,
        progress: Optional[ProgressCallback] = None,
        replica_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        fleet_poll_interval: float = 1.0,
        claim_ttl: Optional[float] = None,
        max_queue_depth: Optional[int] = None,
        poison_attempts: int = DEFAULT_POISON_ATTEMPTS,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if job_concurrency < 1:
            raise ValueError("job_concurrency must be at least 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        if poison_attempts < 1:
            raise ValueError("poison_attempts must be at least 1")
        self.cache_dir = cache_dir
        self.progress = progress
        self.replica_id = replica_id or default_replica_id()
        self.lease_ttl = lease_ttl
        self.fleet_poll_interval = fleet_poll_interval
        self.store = ResultStore(cache_dir=cache_dir, owner=self.replica_id)
        self.trace_store = TraceStore(cache_dir)
        engine_kwargs = {}
        if claim_ttl is not None:
            engine_kwargs["claim_ttl"] = claim_ttl
        self.engine = SweepEngine(
            store=self.store,
            jobs=jobs,
            use_trace_replay=use_trace_replay,
            trace_store=self.trace_store,
            **engine_kwargs,
        )
        self.job_store = JobStore(cache_dir)
        self.leases = LeaseManager(cache_dir, owner=self.replica_id, ttl=lease_ttl)
        self.replicas = ReplicaRegistry(cache_dir, replica_id=self.replica_id)
        self.queue = JobQueue()
        self.job_concurrency = job_concurrency
        self.started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
        # The rate clock is monotonic: wall-clock (``started_at``) is for
        # display only, so an NTP step can never skew (or negate) the
        # points/min rate derived from uptime.  Injectable for tests.
        self._monotonic = time.monotonic
        self._started_clock = self._monotonic()
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        #: Validated plans of jobs admitted by *this* process; resumed
        #: jobs re-validate from their persisted spec instead.
        self._plans: Dict[str, spec_mod.JobPlan] = {}
        self._points_lock = threading.Lock()
        self._point_totals = {
            "requested": 0,
            "unique": 0,
            "completed": 0,
            "executed": 0,
            "from_cache": 0,
            "shared_inflight": 0,
            "remote_inflight": 0,
            "remote_reclaimed": 0,
        }
        #: Backpressure: submissions beyond this queue depth are rejected
        #: with a structured 503 ``overloaded`` (``None`` = unbounded).
        self.max_queue_depth = max_queue_depth
        #: Execution attempts before a job is quarantined as poisonous.
        self.poison_attempts = poison_attempts
        self.resumed_jobs = 0
        self.adopted_jobs = 0
        self.stolen_jobs = 0
        self.poisoned_jobs = 0
        self.deadline_failures = 0
        self.rejected_overloaded = 0
        #: Job ids this replica is executing right now; the fleet poller
        #: never refreshes or steals a job its own executor owns.
        self._running_ids: set = set()
        self._running_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def start(self) -> None:
        """Load persisted jobs (resuming unfinished ones), start executors."""
        self._stop.clear()  # a stopped app can be started again
        for job in self.job_store.load_all():
            resume = job.state in (QUEUED, RUNNING)
            if job.state == RUNNING:
                holder = self.leases.holder(job.id)
                if holder is not None and holder[0] != self.replica_id:
                    # Another replica of this cache tree is live and
                    # mid-job; register for status queries, don't touch.
                    self.queue.add(job, enqueue=False)
                    continue
                # The owning process died mid-job (no live lease); run it
                # again from the top — completed points are all cache
                # hits, so the rerun only pays for what was actually lost.
                job.record_fault("resume_requeue", "owner died mid-job",
                                 replica=self.replica_id)
                if self._poison_check(job):
                    self.queue.add(job, enqueue=False)
                    continue
                job.state = QUEUED
                job.started_at = None
                self.job_store.save(job)
            self.queue.add(job, enqueue=resume)
            if resume:
                self.resumed_jobs += 1
                self._say(f"resume: job {job.id} re-queued ({job.state})")
        if self.job_store.quarantined:
            self._say(
                f"job store: quarantined {self.job_store.quarantined} "
                f"unreadable job record(s)"
            )
        for index in range(self.job_concurrency):
            thread = threading.Thread(
                target=self._executor_loop,
                name=f"sweep-executor-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        watchdog = threading.Thread(
            target=self._watchdog_loop, name="deadline-watchdog", daemon=True
        )
        watchdog.start()
        self._threads.append(watchdog)
        if self.cache_dir:
            for name, target in (
                ("fleet-heartbeat", self._heartbeat_loop),
                ("fleet-poller", self._fleet_poll_loop),
            ):
                thread = threading.Thread(target=target, name=name, daemon=True)
                thread.start()
                self._threads.append(thread)
            self.replicas.publish(self._snapshot())

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the executors; with ``drain`` the running jobs finish first.

        Queued jobs are left in the (persistent) job store untouched —
        a later :meth:`start` on the same cache dir picks them up.
        """
        self._stop.set()
        if drain:
            for thread in self._threads:
                thread.join(timeout=timeout)
        self._threads = []
        # A final snapshot so fleet metrics keep this replica's finished
        # work after it drains (stale snapshots stay in the totals).
        self.replicas.publish(self._snapshot())
        self.engine.close()

    # ------------------------------------------------------------------
    # admission and queries
    # ------------------------------------------------------------------

    def submit(self, payload) -> Job:
        """Validate a submission and enqueue a job (raises ApiError)."""
        if (self.max_queue_depth is not None
                and self.queue.depth() >= self.max_queue_depth):
            self.rejected_overloaded += 1
            raise ApiError(
                503, "overloaded",
                f"job queue is full ({self.queue.depth()} waiting, "
                f"cap {self.max_queue_depth}); retry after the backlog "
                f"drains",
                retry_after=2.0,
            )
        plan = spec_mod.validate_submission(payload)
        job = Job(
            id=new_job_id(),
            spec=plan.spec,
            priority=int(plan.spec.get("priority", 0)),
        )
        if plan.kind == "search":
            # A search plans its points rung by rung; admit it with the
            # first rung's size (the counters grow as rungs complete).
            requested = unique = plan.search.rung0_points()
        else:
            points = plan.plan_points()
            requested = len(points)
            unique = len(dedupe_points(points))
        job.points["requested"] = requested
        job.points["unique"] = unique
        with self._points_lock:
            self._point_totals["requested"] += requested
        self._plans[job.id] = plan
        self.job_store.save(job)
        self.queue.add(job)
        self._say(
            f"job {job.id}: queued ({job.points['unique']} unique points, "
            f"priority {job.priority})"
        )
        return job

    def get_job(self, job_id: str) -> Job:
        job = self.queue.get(job_id)
        if job is None:
            raise ApiError(404, "job_not_found", f"no job with id {job_id!r}")
        return job

    def job_result(self, job_id: str, fmt: str = "json"):
        """The result payload of a completed job (dict for json, str for csv)."""
        if fmt not in ("json", "csv"):
            raise ApiError(400, "bad_format",
                           f"unsupported result format {fmt!r} (json or csv)")
        job = self.get_job(job_id)
        if job.state == FAILED:
            error = job.error or {}
            raise ApiError(
                409, "job_failed",
                f"job {job_id} failed: "
                f"[{error.get('code', 'unknown')}] {error.get('message', '')}",
            )
        if job.state != COMPLETED or job.result is None:
            raise ApiError(
                409, "job_not_completed",
                f"job {job_id} is {job.state}; results exist once it completes",
            )
        if fmt == "csv":
            return spec_mod.result_to_csv(job.result)
        return {"id": job.id, "version": __version__, "result": job.result}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _executor_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.next_job(timeout=0.2)
            if job is None:
                continue
            if job.terminal:  # defensively skip stale queue entries
                continue
            if not self.leases.acquire(job.id):
                # Another replica is running this job; our poller will
                # refresh its record (and steal it if that replica dies).
                continue
            try:
                # Read-through under the lease: another replica may have
                # finished (or re-shaped) the job since we enqueued it.
                latest = self.job_store.load(job.id)
                if latest is not None:
                    job.update_from(latest)
                if job.terminal:
                    continue
                with self._running_lock:
                    self._running_ids.add(job.id)
                try:
                    self._run_job(job)
                finally:
                    with self._running_lock:
                        self._running_ids.discard(job.id)
            finally:
                self.leases.release(job.id)

    # ------------------------------------------------------------------
    # deadlines and poison quarantine
    # ------------------------------------------------------------------

    def _deadline_remaining(self, job: Job) -> Optional[float]:
        """Seconds left in the job's ``deadline_s`` budget; ``None`` when
        the job has no deadline.  Anchored at submission, so the budget
        covers queueing time, retries and steals — a job cannot dodge
        its deadline by ping-ponging between replicas."""
        deadline_s = (job.spec or {}).get("deadline_s")
        if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
            return None
        try:
            submitted = datetime.fromisoformat(job.submitted_at)
        except (TypeError, ValueError):
            return None
        if submitted.tzinfo is None:
            submitted = submitted.replace(tzinfo=timezone.utc)
        elapsed = (datetime.now(timezone.utc) - submitted).total_seconds()
        return float(deadline_s) - elapsed

    def _watchdog_loop(self) -> None:
        """Fail jobs past their deadline even when their executor hangs.

        The executor checks the deadline between points, but a *hung*
        worker never reaches the next point — this loop is the backstop
        that still fails the job (first terminal mark wins; the sticky
        ``mark_failed`` makes the race with a late executor harmless)
        and releases the lease so nothing steals a terminal job.
        """
        while not self._stop.wait(WATCHDOG_INTERVAL):
            for job in self.queue.jobs():
                if job.terminal:
                    continue
                remaining = self._deadline_remaining(job)
                if remaining is None or remaining > 0:
                    continue
                if job.mark_failed(
                    "deadline_exceeded",
                    f"job exceeded its {(job.spec or {}).get('deadline_s')}s "
                    f"deadline",
                ):
                    job.record_fault("deadline_exceeded",
                                     replica=self.replica_id)
                    self.deadline_failures += 1
                    self.job_store.save(job)
                    self.leases.release(job.id)
                    self._say(f"job {job.id}: failed [deadline_exceeded]")

    def _poison_check(self, job: Job) -> bool:
        """Quarantine a job that keeps dying mid-run; ``True`` if it was.

        Called wherever a job is about to be re-queued for another
        attempt (steal, crash-resume).  A job whose execution already
        *started* ``poison_attempts`` times is terminally failed with
        cause ``poisoned`` and its full record — fault history included —
        lands in ``jobs/quarantine/`` instead of ping-ponging between
        replicas forever.
        """
        if job.attempts < self.poison_attempts:
            return False
        if job.mark_failed(
            "poisoned",
            f"job kept dying mid-run; quarantined after {job.attempts} "
            f"attempts (see fault_history)",
        ):
            self.poisoned_jobs += 1
            self.job_store.quarantine_job(job)
            self.leases.release(job.id)
            self._say(
                f"fleet: quarantined poison job {job.id} after "
                f"{job.attempts} attempts"
            )
        return True

    # ------------------------------------------------------------------
    # fleet control loops
    # ------------------------------------------------------------------

    def _heartbeat_loop(self) -> None:
        """Renew held leases and publish this replica's counters."""
        interval = max(0.05, min(self.lease_ttl / 3.0, 2.0))
        while not self._stop.wait(interval):
            self.leases.renew_held()
            self.replicas.publish(self._snapshot())

    def _fleet_poll_loop(self) -> None:
        while not self._stop.wait(self.fleet_poll_interval):
            try:
                self._fleet_poll_once()
            except Exception as error:  # noqa: BLE001 - never kill the loop
                self._say(f"fleet poll error: {type(error).__name__}: {error}")

    def _fleet_poll_once(self) -> None:
        """Adopt, refresh and steal jobs from the shared job store."""
        with self._running_lock:
            running = set(self._running_ids)
        for disk_job in self.job_store.load_all():
            if disk_job.id in running:
                continue  # our executor's copy is authoritative
            known = self.queue.get(disk_job.id)
            if known is None:
                # Submitted to another replica: adopt it.  Queued jobs
                # enter our queue too — the lease decides who runs them.
                self.queue.add(disk_job, enqueue=disk_job.state == QUEUED)
                self.adopted_jobs += 1
                if disk_job.state == QUEUED:
                    self._say(f"fleet: adopted queued job {disk_job.id}")
                known = disk_job
            elif disk_job.state != known.state or (
                disk_job.points != known.points
            ):
                known.update_from(disk_job)
            if known.state == RUNNING and self.leases.holder(known.id) is None:
                self._steal(known)

    def _steal(self, job: Job) -> None:
        """Take over a job whose owner's lease expired (crashed replica).

        Mirrors the restart-resume semantics: the job is reset to queued
        and re-run from the top; points the dead replica completed are
        cache hits, so only the genuinely lost work is paid again.
        """
        if not self.leases.acquire(job.id):
            return  # someone else (or a revived owner) beat us to it
        try:
            latest = self.job_store.load(job.id)
            if latest is not None:
                job.update_from(latest)
            if job.state != RUNNING:
                return
            job.record_fault("lease_expired", "owner stopped heartbeating",
                             replica=self.replica_id)
            if self._poison_check(job):
                return
            job.state = QUEUED
            job.started_at = None
            self.job_store.save(job)
            self.queue.add(job, enqueue=True)
            self.stolen_jobs += 1
            self._say(f"fleet: stole job {job.id} (owner lease expired)")
        finally:
            self.leases.release(job.id)

    def _run_job(self, job: Job) -> None:
        remaining = self._deadline_remaining(job)
        if remaining is not None and remaining <= 0:
            # Spent its whole budget queueing; never start it.
            if job.mark_failed(
                "deadline_exceeded",
                f"job exceeded its {(job.spec or {}).get('deadline_s')}s "
                f"deadline before starting",
            ):
                job.record_fault("deadline_exceeded", replica=self.replica_id)
                self.deadline_failures += 1
                self.job_store.save(job)
            return
        job.mark_running()
        self.job_store.save(job)
        self._say(f"job {job.id}: running")
        try:
            plan = self._plans.pop(job.id, None)
            if plan is None:  # resumed from the job store after a restart
                plan = spec_mod.validate_submission(job.spec)

            last_save = [time.monotonic()]

            def on_point(_point) -> None:
                if job.terminal:
                    # The deadline watchdog already failed this job; stop
                    # burning simulation time on a dead record.
                    raise _DeadlineExceeded()
                left = self._deadline_remaining(job)
                if left is not None and left <= 0:
                    raise _DeadlineExceeded()
                job.points["completed"] += 1
                # Persist progress (throttled) so other replicas' watch
                # requests see this job advance, not just start/finish.
                now = time.monotonic()
                if now - last_save[0] >= 0.5:
                    last_save[0] = now
                    self.job_store.save(job)

            if plan.kind == "search":
                from repro.search.driver import run_search

                job.points["requested"] = 0
                job.points["unique"] = 0

                def on_rung(_index: int, rung_counters: dict) -> None:
                    # Point totals grow rung by rung: the halving
                    # schedule decides the next rung's size only once
                    # this one is scored.
                    job.points["requested"] += rung_counters["requested"]
                    job.points["unique"] += rung_counters["unique"]
                    self.job_store.save(job)

                report, counters = run_search(
                    plan.search, self.engine, progress=self.progress,
                    on_point=on_point, on_rung=on_rung,
                )
                result = {"kind": "search", "report": report}
            else:
                points = plan.plan_points()
                job.points["requested"] = len(points)
                job.points["unique"] = len(dedupe_points(points))
                counters = self.engine.execute(
                    points, progress=self.progress, on_point=on_point
                )
                if plan.kind == "figures":
                    cache = SimulationCache(plan.settings, store=self.store)
                    result = spec_mod.assemble_figure_result(plan, cache)
                else:
                    result = spec_mod.assemble_points_result(plan, self.store)
            job.points["completed"] = counters["unique"]
            completed = job.mark_completed(result, counters)
            with self._points_lock:
                self._point_totals["unique"] += counters["unique"]
                self._point_totals["completed"] += counters["unique"]
                self._point_totals["executed"] += counters["executed"]
                self._point_totals["from_cache"] += counters["cached"]
                self._point_totals["shared_inflight"] += counters["shared_inflight"]
                self._point_totals["remote_inflight"] += counters.get(
                    "remote_inflight", 0
                )
                self._point_totals["remote_reclaimed"] += counters.get(
                    "remote_reclaimed", 0
                )
            if completed:
                self._say(
                    f"job {job.id}: completed ({counters['executed']} executed, "
                    f"{counters['cached']} cached, "
                    f"{counters['shared_inflight']} shared in-flight, "
                    f"{counters.get('remote_inflight', 0)} remote in-flight)"
                )
        except _DeadlineExceeded:
            if job.mark_failed(
                "deadline_exceeded",
                f"job exceeded its {(job.spec or {}).get('deadline_s')}s "
                f"deadline mid-run",
            ):
                job.record_fault("deadline_exceeded", replica=self.replica_id)
                self.deadline_failures += 1
        except ApiError as error:
            job.mark_failed(error.code, error.message)
        except BrokenProcessPool as error:
            job.mark_failed(
                "worker_crashed",
                f"a simulation worker process died mid-job: {error} "
                f"(the warm pool was reset; re-submit to retry)",
            )
        except ReproError as error:
            job.mark_failed("execution_error", str(error))
        except Exception as error:  # noqa: BLE001 - jobs must never wedge the loop
            job.mark_failed("internal_error", f"{type(error).__name__}: {error}")
        finally:
            if job.state == FAILED:
                error = job.error or {}
                self._say(
                    f"job {job.id}: failed [{error.get('code')}] "
                    f"{error.get('message')}"
                )
            self.job_store.save(job)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def uptime_seconds(self) -> float:
        return round(self._monotonic() - self._started_clock, 1)

    def health(self) -> dict:
        """Liveness plus per-component state.

        ``status`` is ``"ok"`` when every component is, ``"degraded"``
        when any component is impaired but the service still answers
        (read-only storage, saturated queue) — distinct from *down*,
        which a client only ever observes as a connection failure.
        """
        storage_stats = self.store.storage_stats()
        storage_read_only = bool(storage_stats.get("read_only", 0))
        storage_degraded = (
            storage_read_only or self.job_store.save_errors > 0
        )
        depth = self.queue.depth()
        queue_saturated = (
            self.max_queue_depth is not None
            and depth >= self.max_queue_depth
        )
        pool_resets = self.engine.totals().get("pool_resets", 0)
        components = {
            "storage": {
                "status": "degraded" if storage_degraded else "ok",
                "writable": not storage_read_only,
                "write_errors": (storage_stats.get("write_errors", 0)
                                 + self.job_store.save_errors),
            },
            "pool": {
                # The warm pool self-heals (a broken pool is torn down
                # and rebuilt), so resets are a health *signal*, not a
                # degradation by themselves.
                "status": "ok",
                "resets": pool_resets,
            },
            "queue": {
                "status": "saturated" if queue_saturated else "ok",
                "depth": depth,
                "max_depth": self.max_queue_depth,
            },
        }
        degraded = storage_degraded or queue_saturated
        return {
            "status": "degraded" if degraded else "ok",
            "version": __version__,
            "started_at": self.started_at,
            "uptime_seconds": self.uptime_seconds(),
            "jobs": self.queue.by_state(),
            "components": components,
            "chaos": _seams.installed(),
        }

    def _snapshot(self) -> dict:
        """This replica's publishable counter snapshot (see fleet)."""
        uptime = self.uptime_seconds()
        with self._points_lock:
            points = dict(self._point_totals)
        points["per_minute"] = (
            round(points["completed"] * 60.0 / uptime, 2) if uptime > 0 else 0.0
        )
        return {
            "points": points,
            "jobs": self.queue.by_state(),
            "uptime_seconds": uptime,
        }

    def metrics(self) -> dict:
        uptime = self.uptime_seconds()
        with self._points_lock:
            points = dict(self._point_totals)
        points["per_minute"] = (
            round(points["completed"] * 60.0 / uptime, 2) if uptime > 0 else 0.0
        )
        # Publish before aggregating so the fleet section always includes
        # this replica's own up-to-date counters.
        self.replicas.publish(self._snapshot())
        result_cache = self.store.counters()
        trace_cache = self.trace_store.counters()
        engine_totals = self.engine.totals()
        by_state = self.queue.by_state()
        return {
            "schema": METRICS_SCHEMA_VERSION,
            "version": __version__,
            "started_at": self.started_at,
            "uptime_seconds": uptime,
            "queue": {
                "depth": self.queue.depth(),
                "max_depth": self.max_queue_depth,
                "rejected_overloaded": self.rejected_overloaded,
            },
            "jobs": {**by_state, "total": sum(by_state.values()),
                     "resumed": self.resumed_jobs,
                     "poisoned": self.poisoned_jobs,
                     "deadline_failures": self.deadline_failures},
            "points": points,
            "result_cache": {**result_cache, "hit_rate": _hit_rate(result_cache)},
            "trace_cache": {**trace_cache, "hit_rate": _hit_rate(trace_cache)},
            "engine": {
                "jobs": self.engine.jobs,
                "job_concurrency": self.job_concurrency,
                "use_trace_replay": self.engine.use_trace_replay,
                **engine_totals,
            },
            "job_store": {
                "persistent": bool(self.job_store.job_dir),
                "quarantined": self.job_store.quarantined,
                "save_errors": self.job_store.save_errors,
            },
            "storage": {
                "results": self.store.storage_stats(),
                "traces": self.trace_store.storage_stats(),
            },
            "replica": {
                "id": self.replica_id,
                "lease_ttl": self.lease_ttl,
                "held_leases": len(self.leases.held()),
                "resumed_jobs": self.resumed_jobs,
                "adopted_jobs": self.adopted_jobs,
                "stolen_jobs": self.stolen_jobs,
            },
            "fleet": self.replicas.fleet_metrics(
                fresh_within=max(self.lease_ttl, 3.0)
            ),
        }
