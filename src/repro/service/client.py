"""HTTP client for the sweep service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the JSON API; server-side rejections are
re-raised as :class:`ServiceError` carrying the server's structured
``error.code``/``message`` verbatim, so the client CLI can print exactly
what the service said.

**Retries.**  Transport failures (connection refused/reset, timeouts,
dropped responses) and transient server rejections (``503 overloaded``,
``429``) are retried with exponential backoff and *full jitter* — each
delay is drawn uniformly from ``[0, min(cap, base * 2**attempt)]``, so a
thundering herd of clients spreads out instead of re-colliding — under
two limits: at most ``retries`` re-attempts, and never past the
``retry_budget_s`` wall-clock budget per call.  A ``Retry-After`` the
server sent is honored as the delay floor.  Retrying is safe across the
whole API: reads are idempotent, and a doubly-delivered submission only
re-requests simulation points the store already dedupes (the duplicate
job completes from cache).
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional

from repro.errors import ReproError
from repro.obs.context import TRACE_HEADER, TraceContext, new_trace
from repro.service.jobs import TERMINAL_STATES

#: Default address of ``python -m repro.service serve``.
DEFAULT_URL = "http://127.0.0.1:8642"

#: HTTP statuses that mark a *transient* server-side rejection.
RETRYABLE_STATUSES = (429, 503)


class ServiceError(ReproError):
    """A request the service rejected (or could not be delivered at all).

    ``retry_after`` carries the server's suggested backoff (from the
    ``Retry-After`` header or the structured error body), when present.
    """

    def __init__(self, message: str, code: str = "unreachable",
                 status: Optional[int] = None,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = status
        self.retry_after = retry_after

    def __str__(self) -> str:
        prefix = f"[{self.code}] " if self.code else ""
        return f"{prefix}{super().__str__()}"


def _parse_retry_after(value) -> Optional[float]:
    """Seconds from a ``Retry-After`` header/body value (delta form only)."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    return seconds if seconds >= 0 else None


class ServiceClient:
    """Typed access to every endpoint of the sweep service."""

    def __init__(
        self,
        base_url: str = DEFAULT_URL,
        timeout: float = 60.0,
        retries: int = 3,
        retry_base: float = 0.05,
        retry_cap: float = 2.0,
        retry_budget_s: float = 30.0,
        _sleep=time.sleep,
        _clock=time.monotonic,
        _rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self.retry_budget_s = retry_budget_s
        #: Total re-attempts made over this client's lifetime.
        self.retried = 0
        #: The trace context of the most recent submit/search, if any.
        self.last_trace: Optional[TraceContext] = None
        self._sleep = _sleep
        self._clock = _clock
        self._rng = _rng if _rng is not None else random.Random()

    # ------------------------------------------------------------------

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None, raw: bool = False,
                      headers: Optional[dict] = None):
        url = f"{self.base_url}{path}"
        data = None
        request_headers = {"Accept": "application/json"}
        if headers:
            request_headers.update(headers)
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            request_headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data,
                                         headers=request_headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            retry_after = _parse_retry_after(error.headers.get("Retry-After"))
            try:
                detail = json.loads(body)["error"]
                if retry_after is None:
                    retry_after = _parse_retry_after(detail.get("retry_after"))
                raise ServiceError(str(detail.get("message", body)),
                                   code=str(detail.get("code", "http_error")),
                                   status=error.code,
                                   retry_after=retry_after) from error
            except (ValueError, KeyError, TypeError):
                raise ServiceError(f"HTTP {error.code}: {body.strip()}",
                                   code="http_error", status=error.code,
                                   retry_after=retry_after) from error
        except (urllib.error.URLError, OSError, TimeoutError,
                http.client.HTTPException) as error:
            # Connection refused (restarting replica), reset mid-response,
            # dropped responses (RemoteDisconnected / BadStatusLine) and
            # timeouts all land here — every one is retryable.
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: {error}"
            ) from error
        if raw:
            return body
        try:
            return json.loads(body)
        except ValueError as error:
            raise ServiceError(
                f"service returned invalid JSON: {error}", code="bad_response"
            ) from error

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None, raw: bool = False,
                 headers: Optional[dict] = None):
        """One API call with the retry policy of the class docstring."""
        started = self._clock()
        attempt = 0
        while True:
            try:
                # headers ride as a kwarg, and only when present, so test
                # doubles written against the historical 4-argument
                # signature keep working.
                if headers:
                    return self._request_once(method, path, payload, raw,
                                              headers=headers)
                return self._request_once(method, path, payload, raw)
            except ServiceError as error:
                transient = (
                    error.code == "unreachable"
                    or error.status in RETRYABLE_STATUSES
                )
                if not transient or attempt >= self.retries:
                    raise
                # Full jitter: uniform in [0, min(cap, base * 2^attempt)].
                delay = self._rng.uniform(
                    0.0, min(self.retry_cap, self.retry_base * (2 ** attempt))
                )
                if error.retry_after is not None:
                    delay = max(delay, error.retry_after)
                if self._clock() - started + delay > self.retry_budget_s:
                    raise  # out of retry budget; surface the last error
                attempt += 1
                self.retried += 1
                self._sleep(delay)

    # ------------------------------------------------------------------

    def submit(self, spec: dict,
               trace: Optional[TraceContext] = None) -> dict:
        """Submit a job, propagating a trace context end to end.

        A fresh trace is minted when the caller doesn't pass one; the
        context rides the ``X-Repro-Trace`` header and comes back in the
        job record's ``trace`` field, so client and server spans share
        one trace id.  The context used is remembered as
        ``last_trace`` for callers that want to follow the trace later.
        """
        if trace is None:
            trace = new_trace()
        self.last_trace = trace
        return self._request("POST", "/jobs", payload=spec,
                             headers={TRACE_HEADER: trace.to_header()})

    def jobs(self) -> dict:
        return self._request("GET", "/jobs")

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, fmt: str = "json"):
        raw = fmt == "csv"
        return self._request("GET", f"/jobs/{job_id}/result?format={fmt}",
                             raw=raw)

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------

    def search(self, spec: dict,
               trace: Optional[TraceContext] = None) -> dict:
        """Submit a config-space search; returns the new job record."""
        if trace is None:
            trace = new_trace()
        self.last_trace = trace
        return self._request("POST", "/search", payload=spec,
                             headers={TRACE_HEADER: trace.to_header()})

    def searches(self) -> dict:
        return self._request("GET", "/search")

    def search_status(self, job_id: str) -> dict:
        """A search job's record (the report is inlined once completed)."""
        return self._request("GET", f"/search/{job_id}")

    def frontier(self, job_id: str) -> list:
        """The discovered Pareto frontier of a *completed* search job."""
        record = self.search_status(job_id)
        state = record.get("state")
        if state != "completed":
            raise ServiceError(
                f"search {job_id} is {state}; the frontier exists once it "
                f"completes", code="job_not_completed", status=409,
            )
        report = (record.get("result") or {}).get("report") or {}
        return report.get("frontier") or []

    # ------------------------------------------------------------------
    # telemetry event stream
    # ------------------------------------------------------------------

    def events(self, since: int = 0,
               stop_on_idle: bool = False) -> Iterator[dict]:
        """Iterate the server's telemetry events (``GET /events`` SSE).

        Yields each event as a dict; ``since`` resumes after an event
        seq.  With ``stop_on_idle`` the iterator returns at the first
        server keepalive — i.e. once the buffered backlog is drained —
        which turns the live stream into a one-shot ring read.  Raises
        :class:`ServiceError` when the server predates /events or
        publishes no stream; callers wanting graceful degradation catch
        it (see :meth:`watch`).
        """
        url = f"{self.base_url}/events?since={int(since)}"
        request = urllib.request.Request(
            url, headers={"Accept": "text/event-stream"}
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(body)["error"]
                code = str(detail.get("code", "http_error"))
                message = str(detail.get("message", body))
            except (ValueError, KeyError, TypeError):
                code, message = "http_error", f"HTTP {error.code}: {body.strip()}"
            raise ServiceError(message, code=code,
                               status=error.code) from error
        except (urllib.error.URLError, OSError, TimeoutError,
                http.client.HTTPException) as error:
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: {error}"
            ) from error
        with response:
            data_lines: list = []
            try:
                for raw_line in response:
                    line = raw_line.decode("utf-8", errors="replace").rstrip("\r\n")
                    if not line:
                        if data_lines:
                            try:
                                event = json.loads("".join(data_lines))
                            except ValueError:
                                event = None
                            data_lines = []
                            if isinstance(event, dict):
                                yield event
                        continue
                    if line.startswith(":"):
                        if stop_on_idle:
                            return  # backlog drained; the stream is idle
                        continue
                    if line.startswith("data:"):
                        data_lines.append(line[5:].lstrip())
            except (OSError, TimeoutError, http.client.HTTPException):
                return  # stream ended (server drained or connection lost)

    def job_span_breakdown(self, job_id: str) -> Optional[Dict[str, float]]:
        """One-shot read of the event ring: the job's span durations.

        Sums ``span_end`` durations by span name for ``job_id`` (the
        job root span, queue wait, lease hold, execute).  Returns
        ``None`` when the server has no event stream or nothing was
        recorded — callers print the breakdown only when it exists.
        """
        breakdown: Dict[str, float] = {}
        try:
            for event in self.events(since=0, stop_on_idle=True):
                if event.get("kind") != "span_end":
                    continue
                if event.get("job_id") != job_id:
                    continue
                name = event.get("span")
                duration = event.get("duration_s")
                if isinstance(name, str) and isinstance(duration, (int, float)):
                    breakdown[name] = round(
                        breakdown.get(name, 0.0) + float(duration), 6
                    )
        except ServiceError:
            return None  # older server / no cache dir: degrade silently
        return breakdown or None

    # ------------------------------------------------------------------

    def watch(
        self,
        job_id: str,
        interval: float = 0.5,
        timeout: Optional[float] = None,
        on_update=None,
        max_interval: Optional[float] = None,
        backoff: float = 1.6,
        jitter: float = 0.2,
        unreachable_timeout: Optional[float] = 60.0,
        on_phase=None,
        _sleep=time.sleep,
        _clock=time.time,
    ) -> dict:
        """Poll a job until it reaches a terminal state.

        ``on_update`` (if given) receives every observed job record —
        the CLI uses it to print progress lines.  Raises
        :class:`ServiceError` when ``timeout`` elapses first.

        Polling starts at ``interval`` and, while the job makes no
        observable progress (same state, same completed-point count),
        backs off geometrically by ``backoff`` up to ``max_interval``
        (default: ``max(interval, 8.0)``) with ±``jitter`` randomization
        so many watchers of one queued job don't poll in lockstep.  Any
        progress resets the delay to ``interval``.  ``_sleep``/``_clock``
        are injectable for tests.

        A temporarily *unreachable* service (a replica restarting, a
        connection refused between polls) is treated as lack of progress,
        not an error: the watch keeps polling within the same backoff
        loop and only raises once the service has been continuously
        unreachable for ``unreachable_timeout`` seconds (``None`` waits
        forever, bounded only by ``timeout``).

        ``on_phase`` (if given) receives the job's ``job_phase``
        telemetry events (queued → leased → running → completed/failed)
        streamed live from ``GET /events`` on a background thread.  A
        server without an event stream — an older build, or one running
        without a cache dir — simply never calls it: phase streaming
        degrades silently, the poll loop is unaffected.
        """
        if max_interval is None:
            max_interval = max(interval, 8.0)
        phase_stop: Optional[threading.Event] = None
        if on_phase is not None:
            phase_stop = threading.Event()
            stop = phase_stop

            def _pump_phases() -> None:
                try:
                    for event in self.events():
                        if stop.is_set():
                            return
                        if (event.get("kind") == "job_phase"
                                and event.get("job_id") == job_id):
                            on_phase(event)
                except ServiceError:
                    pass  # no event stream on this server: degrade silently

            threading.Thread(
                target=_pump_phases, name=f"watch-events-{job_id}",
                daemon=True,
            ).start()
        try:
            return self._watch_poll(
                job_id, interval, timeout, on_update, max_interval, backoff,
                jitter, unreachable_timeout, _sleep, _clock,
            )
        finally:
            if phase_stop is not None:
                phase_stop.set()

    def _watch_poll(
        self, job_id, interval, timeout, on_update, max_interval, backoff,
        jitter, unreachable_timeout, _sleep, _clock,
    ) -> dict:
        deadline = _clock() + timeout if timeout is not None else None
        delay = interval
        last_completed = -1
        last_state: Optional[str] = None
        unreachable_since: Optional[float] = None
        while True:
            try:
                job = self.status(job_id)
            except ServiceError as error:
                if error.code != "unreachable":
                    raise
                now = _clock()
                if unreachable_since is None:
                    unreachable_since = now
                if (unreachable_timeout is not None
                        and now - unreachable_since > unreachable_timeout):
                    raise
                if deadline is not None and now > deadline:
                    raise ServiceError(
                        f"timed out after {timeout:.0f}s waiting for job "
                        f"{job_id} (service unreachable)",
                        code="watch_timeout",
                    ) from error
                delay = min(delay * backoff, max_interval)
                _sleep(delay * (1.0 + jitter * (2.0 * random.random() - 1.0)))
                continue
            unreachable_since = None
            state = job.get("state")
            completed = int(job.get("points", {}).get("completed", 0))
            progressed = completed != last_completed or state != last_state
            if on_update is not None and (
                completed != last_completed or state in TERMINAL_STATES
            ):
                on_update(job)
            last_completed = completed
            last_state = state
            if state in TERMINAL_STATES:
                return job
            if deadline is not None and _clock() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job {job_id}",
                    code="watch_timeout",
                )
            delay = interval if progressed else min(delay * backoff, max_interval)
            _sleep(delay * (1.0 + jitter * (2.0 * random.random() - 1.0)))
