"""HTTP client for the sweep service (stdlib ``urllib`` only).

:class:`ServiceClient` wraps the JSON API; server-side rejections are
re-raised as :class:`ServiceError` carrying the server's structured
``error.code``/``message`` verbatim, so the client CLI can print exactly
what the service said.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.errors import ReproError
from repro.service.jobs import TERMINAL_STATES

#: Default address of ``python -m repro.service serve``.
DEFAULT_URL = "http://127.0.0.1:8642"


class ServiceError(ReproError):
    """A request the service rejected (or could not be delivered at all)."""

    def __init__(self, message: str, code: str = "unreachable",
                 status: Optional[int] = None) -> None:
        super().__init__(message)
        self.code = code
        self.status = status

    def __str__(self) -> str:
        prefix = f"[{self.code}] " if self.code else ""
        return f"{prefix}{super().__str__()}"


class ServiceClient:
    """Typed access to every endpoint of the sweep service."""

    def __init__(self, base_url: str = DEFAULT_URL, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None, raw: bool = False):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(body)["error"]
                raise ServiceError(str(detail.get("message", body)),
                                   code=str(detail.get("code", "http_error")),
                                   status=error.code) from error
            except (ValueError, KeyError, TypeError):
                raise ServiceError(f"HTTP {error.code}: {body.strip()}",
                                   code="http_error", status=error.code) from error
        except (urllib.error.URLError, OSError, TimeoutError) as error:
            raise ServiceError(
                f"cannot reach sweep service at {self.base_url}: {error}"
            ) from error
        if raw:
            return body
        try:
            return json.loads(body)
        except ValueError as error:
            raise ServiceError(
                f"service returned invalid JSON: {error}", code="bad_response"
            ) from error

    # ------------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        return self._request("POST", "/jobs", payload=spec)

    def jobs(self) -> dict:
        return self._request("GET", "/jobs")

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, fmt: str = "json"):
        raw = fmt == "csv"
        return self._request("GET", f"/jobs/{job_id}/result?format={fmt}",
                             raw=raw)

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------

    def search(self, spec: dict) -> dict:
        """Submit a config-space search; returns the new job record."""
        return self._request("POST", "/search", payload=spec)

    def searches(self) -> dict:
        return self._request("GET", "/search")

    def search_status(self, job_id: str) -> dict:
        """A search job's record (the report is inlined once completed)."""
        return self._request("GET", f"/search/{job_id}")

    def frontier(self, job_id: str) -> list:
        """The discovered Pareto frontier of a *completed* search job."""
        record = self.search_status(job_id)
        state = record.get("state")
        if state != "completed":
            raise ServiceError(
                f"search {job_id} is {state}; the frontier exists once it "
                f"completes", code="job_not_completed", status=409,
            )
        report = (record.get("result") or {}).get("report") or {}
        return report.get("frontier") or []

    # ------------------------------------------------------------------

    def watch(
        self,
        job_id: str,
        interval: float = 0.5,
        timeout: Optional[float] = None,
        on_update=None,
        max_interval: Optional[float] = None,
        backoff: float = 1.6,
        jitter: float = 0.2,
        _sleep=time.sleep,
        _clock=time.time,
    ) -> dict:
        """Poll a job until it reaches a terminal state.

        ``on_update`` (if given) receives every observed job record —
        the CLI uses it to print progress lines.  Raises
        :class:`ServiceError` when ``timeout`` elapses first.

        Polling starts at ``interval`` and, while the job makes no
        observable progress (same state, same completed-point count),
        backs off geometrically by ``backoff`` up to ``max_interval``
        (default: ``max(interval, 8.0)``) with ±``jitter`` randomization
        so many watchers of one queued job don't poll in lockstep.  Any
        progress resets the delay to ``interval``.  ``_sleep``/``_clock``
        are injectable for tests.
        """
        if max_interval is None:
            max_interval = max(interval, 8.0)
        deadline = _clock() + timeout if timeout is not None else None
        delay = interval
        last_completed = -1
        last_state: Optional[str] = None
        while True:
            job = self.status(job_id)
            state = job.get("state")
            completed = int(job.get("points", {}).get("completed", 0))
            progressed = completed != last_completed or state != last_state
            if on_update is not None and (
                completed != last_completed or state in TERMINAL_STATES
            ):
                on_update(job)
            last_completed = completed
            last_state = state
            if state in TERMINAL_STATES:
                return job
            if deadline is not None and _clock() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for job {job_id}",
                    code="watch_timeout",
                )
            delay = interval if progressed else min(delay * backoff, max_interval)
            _sleep(delay * (1.0 + jitter * (2.0 * random.random() - 1.0)))
