"""Fleet coordination: job leases, heartbeats and replica metrics.

Several ``repro.service`` replicas may share one ``--cache-dir``.  The
result/trace stores already make that safe for *data* (sharded segment
logs, cross-replica claims); this module adds the *control* plane:

* :class:`LeaseManager` — at most one replica runs a given job.  A
  lease is a tiny JSON file ``jobs/leases/<job_id>.json`` holding
  ``{owner, deadline}``; all lease operations happen under one global
  ``flock`` so acquire/steal decisions are atomic across processes.
  Live replicas renew their leases from a heartbeat thread; renewal
  never overwrites a lease another owner has taken, so a replica that
  was presumed dead and then woke up cannot steal its old job back.  A
  replica that dies simply stops renewing, its leases expire, and any
  other replica may **steal** the job — reset it to queued and run it
  again.
  Completed points are cache hits, so the re-run only pays for what the
  dead replica never finished (the same semantics as a single-process
  restart).
* :class:`ReplicaRegistry` — each replica periodically publishes an
  atomic snapshot ``replicas/<replica_id>.json`` of its point/engine
  counters.  :meth:`ReplicaRegistry.fleet_metrics` aggregates every
  snapshot into the fleet-wide section of ``/metrics`` (total points
  per minute, per-replica activity), which is how a two-replica CI run
  can assert that no simulation executed twice anywhere in the fleet.

Both classes degrade to no-ops without a cache dir (a memory-only
service is necessarily a fleet of one).
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import threading
import uuid
from time import time as _wall_clock
from typing import Callable, Dict, List, Optional, Tuple

try:  # pragma: no cover - POSIX-only; fallback keeps imports safe
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

from repro.obs.metrics import Histogram

#: Subdirectory of the job dir holding lease files.
LEASE_SUBDIR = "leases"

#: Subdirectory of the cache dir holding replica snapshots.
REPLICA_SUBDIR = "replicas"

#: Default lease lifetime; heartbeats renew at a third of this, so a
#: replica survives two missed beats before its jobs become stealable.
DEFAULT_LEASE_TTL = 15.0


def default_replica_id() -> str:
    """A replica identity unique across hosts, processes and restarts."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:4]}"


class _GlobalLock:
    """Exclusive cross-process flock on one coordination directory."""

    def __init__(self, directory: str) -> None:
        self._path = os.path.join(directory, ".lock")
        self._fd: Optional[int] = None

    def __enter__(self) -> "_GlobalLock":
        os.makedirs(os.path.dirname(self._path), exist_ok=True)
        self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is not None:
            fcntl.flock(self._fd, fcntl.LOCK_EX)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._fd is not None:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
            self._fd = None


def _write_atomic(directory: str, name: str, payload: dict) -> None:
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, os.path.join(directory, name))
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _read_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


class LeaseManager:
    """Leased, heartbeat-renewed ownership of jobs across replicas."""

    def __init__(
        self,
        cache_dir: Optional[str],
        owner: str,
        ttl: float = DEFAULT_LEASE_TTL,
        clock: Callable[[], float] = _wall_clock,
    ) -> None:
        from repro.service.jobs import JOB_SUBDIR  # avoid an import cycle

        self.owner = owner
        self.ttl = ttl
        self.clock = clock
        self.lease_dir = (
            os.path.join(cache_dir, JOB_SUBDIR, LEASE_SUBDIR) if cache_dir else None
        )
        self._held: Dict[str, float] = {}
        self._lock = threading.Lock()
        if self.lease_dir:
            os.makedirs(self.lease_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, job_id: str) -> str:
        return os.path.join(self.lease_dir, f"{job_id}.json")  # type: ignore[arg-type]

    def acquire(self, job_id: str, trace_id: Optional[str] = None) -> bool:
        """Take (or renew) the lease on ``job_id``; ``False`` if another
        replica holds an unexpired lease.  ``trace_id`` (the job's trace
        context) is recorded in the lease file so an operator inspecting
        a stuck lease can jump straight to the owning trace's spans."""
        if not self.lease_dir:
            return True  # fleet of one
        with _GlobalLock(self.lease_dir):
            current = _read_json(self._path(job_id))
            if current is not None and current.get("owner") != self.owner:
                deadline = current.get("deadline")
                if isinstance(deadline, (int, float)) and deadline > self.clock():
                    return False
            deadline = self.clock() + self.ttl
            payload = {"job_id": job_id, "owner": self.owner,
                       "deadline": deadline}
            if trace_id is not None:
                payload["trace_id"] = trace_id
            _write_atomic(self.lease_dir, f"{job_id}.json", payload)
        with self._lock:
            self._held[job_id] = deadline
        return True

    def release(self, job_id: str) -> None:
        """Drop this replica's lease on ``job_id`` (no-op when not held)."""
        with self._lock:
            self._held.pop(job_id, None)
        if not self.lease_dir:
            return
        with _GlobalLock(self.lease_dir):
            current = _read_json(self._path(job_id))
            if current is not None and current.get("owner") == self.owner:
                try:
                    os.unlink(self._path(job_id))
                except OSError:
                    pass

    def renew_held(self) -> None:
        """Heartbeat: push every held lease's deadline forward."""
        with self._lock:
            held = list(self._held)
        if not held or not self.lease_dir:
            return
        with _GlobalLock(self.lease_dir):
            for job_id in held:
                current = _read_json(self._path(job_id))
                if current is None or current.get("owner") != self.owner:
                    # Lost (expired and stolen) while we weren't looking;
                    # never overwrite the thief's lease.
                    with self._lock:
                        self._held.pop(job_id, None)
                    continue
                deadline = self.clock() + self.ttl
                payload = {"job_id": job_id, "owner": self.owner,
                           "deadline": deadline}
                if isinstance(current.get("trace_id"), str):
                    payload["trace_id"] = current["trace_id"]
                _write_atomic(self.lease_dir, f"{job_id}.json", payload)
                with self._lock:
                    self._held[job_id] = deadline

    def holder(self, job_id: str) -> Optional[Tuple[str, float]]:
        """The (owner, deadline) of an unexpired lease, else ``None``."""
        if not self.lease_dir:
            return None
        current = _read_json(self._path(job_id))
        if current is None:
            return None
        owner = current.get("owner")
        deadline = current.get("deadline")
        if not isinstance(owner, str) or not isinstance(deadline, (int, float)):
            return None
        if deadline <= self.clock():
            return None
        return owner, float(deadline)

    def held(self) -> List[str]:
        with self._lock:
            return list(self._held)


def _coerce_count(value) -> Tuple[int, bool]:
    """``(rounded integer, was_numeric)`` for one snapshot counter field.

    Counters are integers at the source, but JSON round-trips and rate
    arithmetic can hand back floats; those are *rounded*, not truncated,
    so fleet totals cannot drift low.  Booleans and non-numbers are
    malformed (counted by the caller), never silently zeroed into the
    totals.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0, False
    return int(round(value)), True


class ReplicaRegistry:
    """Published per-replica counter snapshots and their aggregation."""

    def __init__(
        self,
        cache_dir: Optional[str],
        replica_id: str,
        clock: Callable[[], float] = _wall_clock,
    ) -> None:
        self.replica_id = replica_id
        self.clock = clock
        self.replica_dir = (
            os.path.join(cache_dir, REPLICA_SUBDIR) if cache_dir else None
        )
        if self.replica_dir:
            os.makedirs(self.replica_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def publish(self, snapshot: dict) -> None:
        """Atomically publish this replica's counter snapshot."""
        if not self.replica_dir:
            return
        payload = dict(snapshot)
        payload["replica_id"] = self.replica_id
        payload["updated_at"] = self.clock()
        try:
            _write_atomic(self.replica_dir, f"{self.replica_id}.json", payload)
        except OSError:
            pass  # metrics publishing must never take a replica down

    def snapshots(self) -> List[dict]:
        """Every replica's latest snapshot (unreadable files skipped)."""
        if not self.replica_dir:
            return []
        try:
            names = sorted(os.listdir(self.replica_dir))
        except OSError:
            return []
        result = []
        for name in names:
            if not name.endswith(".json"):
                continue
            payload = _read_json(os.path.join(self.replica_dir, name))
            if payload is not None and isinstance(payload.get("replica_id"), str):
                result.append(payload)
        return result

    def fleet_metrics(self, fresh_within: float) -> dict:
        """Aggregate every published snapshot into fleet-wide totals.

        Stale snapshots (older than ``fresh_within``) still count toward
        the monotonic totals — a drained replica's completed work does
        not vanish from the fleet's history — but not toward
        ``active_replicas`` or the aggregate points/min rate.

        Float counter values are rounded (never truncated) into the
        totals; fields that are present but not numeric are skipped and
        counted in ``snapshot_errors`` so a corrupt snapshot is visible
        instead of silently dragging the fleet totals low.
        """
        now = self.clock()
        totals = {
            "requested": 0, "unique": 0, "completed": 0, "executed": 0,
            "from_cache": 0, "shared_inflight": 0, "remote_inflight": 0,
            "remote_reclaimed": 0,
        }
        replicas = []
        active = 0
        per_minute = 0.0
        snapshot_errors = 0
        merged_hist: Dict[str, Histogram] = {}
        for snapshot in self.snapshots():
            histograms = snapshot.get("histograms")
            if histograms is not None and not isinstance(histograms, dict):
                snapshot_errors += 1
            elif isinstance(histograms, dict):
                for hist_name, payload in sorted(histograms.items()):
                    try:
                        target = merged_hist.get(hist_name)
                        if target is None:
                            target = Histogram(
                                hist_name, buckets=payload["bounds"]
                            )
                            merged_hist[hist_name] = target
                        target.merge_payload(payload)
                    except (KeyError, TypeError, ValueError):
                        snapshot_errors += 1
            updated_at = snapshot.get("updated_at")
            age = (
                round(now - updated_at, 1)
                if isinstance(updated_at, (int, float)) else None
            )
            is_active = age is not None and age <= fresh_within
            points = snapshot.get("points")
            if points is None:
                points = {}
            elif not isinstance(points, dict):
                snapshot_errors += 1
                points = {}
            replica_points = {}
            for field in totals:
                value, numeric = _coerce_count(points.get(field, 0))
                replica_points[field] = value
                if not numeric:
                    snapshot_errors += 1
                    continue
                if field in points:
                    totals[field] += value
            if is_active:
                active += 1
                rate = points.get("per_minute", 0)
                if isinstance(rate, (int, float)) and not isinstance(rate, bool):
                    per_minute += rate
                else:
                    snapshot_errors += 1
            replicas.append({
                "id": snapshot["replica_id"],
                "active": is_active,
                "age_seconds": age,
                "points": replica_points,
            })
        result = {
            "replicas": replicas,
            "active_replicas": active,
            "known_replicas": len(replicas),
            "points": totals,
            "per_minute": round(per_minute, 2),
            "snapshot_errors": snapshot_errors,
        }
        latency = merged_hist.get("point.simulate_seconds")
        if latency is not None and latency.count:
            # Histogram merge is exact (same fixed bucket bounds on every
            # replica), so these fleet-wide percentiles equal a histogram
            # built from the concatenated samples.
            result["point_latency_s"] = {
                "count": latency.count,
                "p50": round(latency.quantile(0.5), 6),
                "p95": round(latency.quantile(0.95), 6),
                "p99": round(latency.quantile(0.99), 6),
            }
        return result
