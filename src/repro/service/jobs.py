"""Job model, priority queue and the schema-versioned on-disk job store.

A *job* is one submitted sweep: either a named figure plan plus
settings, or an explicit list of simulation points.  Jobs move through
``queued -> running -> completed | failed``; every transition is
persisted (atomically, one JSON file per job) so a restarted service
resumes exactly where the previous process stopped — ``queued`` jobs
re-enter the queue, and jobs that were ``running`` when the process
died are re-queued rather than lost.

Corrupt or schema-mismatching job files are **quarantined**: moved into
a ``quarantine/`` subdirectory and counted, mirroring the
:class:`~repro.trace.store.TraceStore` convention that a bad cache file
is a miss, never a crash.
"""

from __future__ import annotations

import errno
import itertools
import json
import os
import queue
import tempfile
import threading
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional

from repro.chaos import seams as _seams
from repro.version import __version__

#: Bump when the on-disk job payload layout changes; mismatching files
#: are quarantined as misses rather than errors.
SCHEMA_VERSION = 1

#: Subdirectory of the cache dir reserved for job records.
JOB_SUBDIR = "jobs"

#: Subdirectory of the job dir holding quarantined (unreadable) records.
QUARANTINE_SUBDIR = "quarantine"

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

STATES = (QUEUED, RUNNING, COMPLETED, FAILED)

#: States a job can never leave.
TERMINAL_STATES = (COMPLETED, FAILED)

#: Fault-history entries kept per job (oldest dropped beyond this).
FAULT_HISTORY_LIMIT = 20

#: Execution attempts (first run + re-queues/steals) before a job is
#: declared poisonous and quarantined instead of retried again.
DEFAULT_POISON_ATTEMPTS = 3


def _now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submitted sweep and everything the API reports about it."""

    id: str
    spec: dict
    priority: int = 0
    state: str = QUEUED
    submitted_at: str = field(default_factory=_now)
    started_at: Optional[str] = None
    finished_at: Optional[str] = None
    #: Point accounting: ``requested``/``unique`` are known at admission,
    #: ``completed`` grows while the job runs.
    points: Dict[str, int] = field(default_factory=lambda: {
        "requested": 0, "unique": 0, "completed": 0,
    })
    #: The scheduler summary of the finished run (cache hits, executed,
    #: traces recorded/reused, ...).
    counters: Optional[dict] = None
    error: Optional[dict] = None
    result: Optional[dict] = None
    #: Trace context of the job's root span (``{"trace_id", "span_id"}``),
    #: minted at admission (or propagated from the client's
    #: ``X-Repro-Trace`` header) and persisted so every replica that
    #: touches the job — adopter, thief, resumer — emits spans into the
    #: same trace.
    trace: Optional[dict] = None
    #: Times execution has *started* for this job — the first run and
    #: every re-queue after a crash/steal each count one.  Drives the
    #: poison-job quarantine threshold.
    attempts: int = 0
    #: Bounded, append-only log of what went wrong along the way
    #: (steals, crashes, deadline kills), persisted with the record so a
    #: quarantined job carries its own post-mortem.
    fault_history: List[dict] = field(default_factory=list)
    #: Guards terminal transitions: a deadline watchdog and the executor
    #: may race to finish one job — first terminal mark wins, later ones
    #: are no-ops.  Not part of the persisted record.
    _state_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    # ------------------------------------------------------------------

    def mark_running(self) -> None:
        with self._state_lock:
            self.state = RUNNING
            self.started_at = _now()
            self.attempts += 1

    def mark_completed(self, result: dict, counters: dict) -> bool:
        """Complete the job; ``False`` (no-op) if already terminal."""
        with self._state_lock:
            if self.state in TERMINAL_STATES:
                return False
            # Publish the payload before flipping the state: readers in
            # other threads treat a terminal state as "the result is
            # there".
            self.result = result
            self.counters = counters
            self.finished_at = _now()
            self.state = COMPLETED
            return True

    def mark_failed(self, code: str, message: str) -> bool:
        """Fail the job; ``False`` (no-op) if already terminal."""
        with self._state_lock:
            if self.state in TERMINAL_STATES:
                return False
            self.error = {"code": code, "message": message}
            self.finished_at = _now()
            self.state = FAILED
            return True

    def record_fault(self, event: str, detail: str = "",
                     replica: Optional[str] = None) -> None:
        """Append one structured entry to the job's fault history."""
        entry = {"at": _now(), "event": event}
        if detail:
            entry["detail"] = detail
        if replica:
            entry["replica"] = replica
        with self._state_lock:
            self.fault_history.append(entry)
            if len(self.fault_history) > FAULT_HISTORY_LIMIT:
                del self.fault_history[: -FAULT_HISTORY_LIMIT]

    def update_from(self, other: "Job") -> None:
        """Adopt another replica's persisted view of this same job.

        The in-memory registry hands out `Job` object references, so a
        cross-replica refresh must mutate in place rather than swap the
        object.  Only ever called for jobs this replica is *not*
        currently running (the runner's own copy is authoritative).
        """
        if other.id != self.id:
            raise ValueError("refusing to update a job from a different id")
        self.spec = other.spec
        self.priority = other.priority
        self.state = other.state
        self.submitted_at = other.submitted_at
        self.started_at = other.started_at
        self.finished_at = other.finished_at
        self.points = dict(other.points)
        self.counters = other.counters
        self.error = other.error
        self.result = other.result
        self.attempts = other.attempts
        self.fault_history = list(other.fault_history)
        if other.trace is not None:
            self.trace = dict(other.trace)

    # ------------------------------------------------------------------

    def to_dict(self, include_result: bool = False) -> dict:
        payload = {
            "schema": SCHEMA_VERSION,
            "version": __version__,
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "spec": self.spec,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "points": dict(self.points),
            "counters": self.counters,
            "error": self.error,
            "attempts": self.attempts,
            "fault_history": list(self.fault_history),
            "trace": self.trace,
        }
        if include_result:
            payload["result"] = self.result
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported job schema {payload.get('schema')!r}"
            )
        job_id = payload["id"]
        state = payload["state"]
        if not isinstance(job_id, str) or state not in STATES:
            raise ValueError("malformed job record")
        points = payload.get("points") or {}
        return cls(
            id=job_id,
            spec=dict(payload.get("spec") or {}),
            priority=int(payload.get("priority", 0)),
            state=state,
            submitted_at=str(payload.get("submitted_at", "")),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            points={
                "requested": int(points.get("requested", 0)),
                "unique": int(points.get("unique", 0)),
                "completed": int(points.get("completed", 0)),
            },
            counters=payload.get("counters"),
            error=payload.get("error"),
            result=payload.get("result"),
            # Pre-resilience records carry neither field; defaulting
            # keeps SCHEMA_VERSION at 1 and old files loadable.
            attempts=int(payload.get("attempts", 0)),
            fault_history=list(payload.get("fault_history") or []),
            trace=(payload.get("trace")
                   if isinstance(payload.get("trace"), dict) else None),
        )


# ----------------------------------------------------------------------
# on-disk store
# ----------------------------------------------------------------------


class JobStore:
    """One JSON file per job under ``<cache-dir>/jobs/`` (atomic writes).

    Without a ``cache_dir`` the store is memory-less: saves are no-ops
    and :meth:`load_all` returns nothing, so a cache-less service simply
    has no persistence (jobs die with the process, by design).
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self.job_dir = os.path.join(cache_dir, JOB_SUBDIR) if cache_dir else None
        self.quarantined = 0
        #: Persist attempts dropped because the disk was full; the job
        #: lives on in memory, so a full disk degrades durability (a
        #: restart forgets recent transitions) without failing jobs.
        self.save_errors = 0
        if self.job_dir:
            os.makedirs(self.job_dir, exist_ok=True)

    def _path(self, job_id: str) -> str:
        return os.path.join(self.job_dir, f"{job_id}.json")  # type: ignore[arg-type]

    # ------------------------------------------------------------------

    def save(self, job: Job) -> None:
        """Persist one job record (atomic replace; no-op without a dir).

        ENOSPC is absorbed: the write is dropped and counted in
        ``save_errors`` rather than failing the job — the in-memory
        record stays authoritative for this process's lifetime.
        """
        if not self.job_dir:
            return
        payload = job.to_dict(include_result=True)
        try:
            if _seams.active is not None:
                _seams.active.fire("jobs.save", job_id=job.id,
                                   state=job.state)
            fd, tmp_path = tempfile.mkstemp(dir=self.job_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, default=str)
                os.replace(tmp_path, self._path(job.id))
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as error:
            if error.errno != errno.ENOSPC:
                raise
            self.save_errors += 1

    def load(self, job_id: str) -> Optional[Job]:
        """Read one job record back from disk; ``None`` when missing or
        unreadable (transient read races are not quarantined)."""
        if not self.job_dir:
            return None
        try:
            with open(self._path(job_id), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            job = Job.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return job if job.id == job_id else None

    def _quarantine(self, path: str) -> None:
        """Move an unreadable job file aside so it is never retried."""
        quarantine_dir = os.path.join(self.job_dir, QUARANTINE_SUBDIR)  # type: ignore[arg-type]
        try:
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(quarantine_dir, os.path.basename(path)))
        except OSError:
            pass
        self.quarantined += 1

    def quarantine_job(self, job: Job) -> None:
        """Land a poisonous job's full record in ``jobs/quarantine/``.

        Called after the job has been terminally failed (cause
        ``poisoned``): the record — fault history included — is written
        into the quarantine directory and the live job file is replaced
        by it, so no replica's resume/steal path will ever pick the job
        up again.
        """
        if not self.job_dir:
            return
        quarantine_dir = os.path.join(self.job_dir, QUARANTINE_SUBDIR)
        payload = job.to_dict(include_result=True)
        try:
            os.makedirs(quarantine_dir, exist_ok=True)
            target = os.path.join(quarantine_dir, f"{job.id}.json")
            with open(target, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, default=str)
        except OSError:
            # Quarantine-on-a-full-disk still works in memory: the job
            # is terminally failed either way.
            pass
        self.quarantined += 1
        # Keep the primary record too (terminal, so never re-queued) so
        # status queries keep answering after a restart.
        self.save(job)

    def load_all(self) -> List[Job]:
        """Every readable job record, oldest submission first.

        Unreadable, corrupt or schema-mismatching files are quarantined
        and skipped — the same "bad cache entry is a miss" semantics as
        the trace store, so one damaged record can never wedge startup.
        """
        if not self.job_dir:
            return []
        jobs: List[Job] = []
        try:
            names = sorted(os.listdir(self.job_dir))
        except OSError:
            return []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.job_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                job = Job.from_dict(payload)
                if job.id != name[: -len(".json")]:
                    raise ValueError("job id does not match its filename")
            except (OSError, ValueError, KeyError, TypeError):
                self._quarantine(path)
                continue
            jobs.append(job)
        jobs.sort(key=lambda job: job.submitted_at)
        return jobs


# ----------------------------------------------------------------------
# in-memory registry + priority queue
# ----------------------------------------------------------------------


class JobQueue:
    """Thread-safe job registry with a priority dispatch queue.

    Higher ``priority`` runs first; jobs of equal priority run in
    submission order.  The registry keeps every job (including finished
    ones) for status queries; the queue holds only runnable job ids.
    """

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.PriorityQueue[tuple]" = queue.PriorityQueue()
        self._sequence = itertools.count()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def add(self, job: Job, enqueue: bool = True) -> None:
        with self._lock:
            self._jobs[job.id] = job
        if enqueue:
            self._queue.put((-job.priority, next(self._sequence), job.id))

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def by_state(self) -> Dict[str, int]:
        counts = {state: 0 for state in STATES}
        for job in self.jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    def depth(self) -> int:
        """Number of jobs waiting for an executor (approximate)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------

    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job; ``None`` on timeout."""
        try:
            _, _, job_id = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        return self.get(job_id)
