"""Stdlib HTTP front-end of the sweep service.

Routes (all JSON unless ``format=csv``)::

    POST /jobs                  submit a figure plan or explicit points
    POST /search                submit a config-space search (a job whose
                                spec is the search request)
    GET  /jobs                  summary list of known jobs
    GET  /jobs/<id>             one job's status record
    GET  /jobs/<id>/result      completed job's result (?format=json|csv)
    GET  /search                summary list of search jobs
    GET  /search/<id>           one search job, report inlined once done
    GET  /healthz               liveness + version
    GET  /metrics               queue depth, jobs by state, points/min,
                                cache hit rates, worker-pool resets
                                (?format=prometheus for text exposition)
    GET  /events                live telemetry event stream (SSE;
                                ?since=<seq> resumes after a cursor)

Submissions may carry an ``X-Repro-Trace: <trace_id>-<span_id>`` header;
the job's root span becomes a child of that context, so client-minted
trace ids follow a job through queueing, execution and storage.  A
missing or malformed header degrades to a server-minted trace — never a
4xx.

Every error — including unknown routes and internal failures — is a
structured JSON body ``{"error": {"code": ..., "message": ...}}``; a
client never sees an HTML traceback.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.chaos import seams as _seams
from repro.obs.context import TRACE_HEADER, TraceContext
from repro.service.app import ServiceApp
from repro.service.spec import ApiError

#: How long one /events poll blocks before emitting a keepalive comment;
#: short enough that a draining server releases its stream threads fast.
EVENTS_POLL_SECONDS = 1.0

#: Upper bound on one SSE connection's lifetime (seconds).  Clients
#: (ServiceClient.events) reconnect with ``since=<last seq>``, so a
#: bounded stream costs a resumed cursor, not lost events.
EVENTS_MAX_SECONDS = 3600.0

#: Submissions larger than this are rejected outright (a malformed
#: Content-Length must not let a request buffer without bound).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto :class:`ServiceApp` methods."""

    server_version = "repro-sweep-service"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ServiceApp:
        return self.server.app  # type: ignore[attr-defined]

    # ------------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.app.progress is not None:
            self.app.progress("http: " + format % args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True, default=str)
        self._send_body(status, body + "\n", "application/json")

    def _send_body(self, status: int, body: str, content_type: str,
                   retry_after: Optional[float] = None) -> None:
        if _seams.active is not None:
            # Chaos seam: dropped / delayed / connection-reset responses.
            # The request was fully processed server-side — exactly the
            # ambiguity (did my idempotent submit land?) the client's
            # retry layer must absorb.
            directive = _seams.active.fire(
                "http.response", method=self.command, path=self.path,
                status=status,
            )
            if directive == "drop":
                # Close without writing a response: the client sees an
                # empty reply / connection closed mid-request.
                self.close_connection = True
                try:
                    self.connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return
            if directive == "reset":
                # RST instead of FIN: SO_LINGER with zero timeout makes
                # close() abort the connection.
                self.close_connection = True
                try:
                    self.connection.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    self.connection.close()
                except OSError:
                    pass
                return
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(encoded)))
        if retry_after is not None:
            self.send_header("Retry-After", str(max(1, int(retry_after))))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_error(self, error: ApiError) -> None:
        body = json.dumps(error.to_dict(), indent=2, sort_keys=True,
                          default=str)
        self._send_body(error.status, body + "\n", "application/json",
                        retry_after=getattr(error, "retry_after", None))

    # ------------------------------------------------------------------

    def _job_route(self, path: str, root: str = "jobs",
                   ) -> Tuple[Optional[str], Optional[str]]:
        """``/<root>/<id>[/sub]`` -> (job_id, subresource)."""
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != root:
            return None, None
        if len(parts) == 1:
            return "", None
        if len(parts) == 2:
            return parts[1], None
        if len(parts) == 3:
            return parts[1], parts[2]
        return None, None

    def _search_job(self, job_id: str):
        """A job that is a search (404 otherwise, matching /jobs semantics)."""
        job = self.app.get_job(job_id)
        if "search" not in (job.spec or {}):
            raise ApiError(404, "search_not_found",
                           f"job {job_id!r} is not a search job")
        return job

    def _read_body(self) -> bytes:
        length = self.headers.get("Content-Length")
        try:
            size = int(length) if length is not None else 0
        except ValueError as exc:
            raise ApiError(400, "bad_request", "invalid Content-Length") from exc
        if size < 0 or size > MAX_BODY_BYTES:
            raise ApiError(400, "bad_request",
                           f"request body must be 0..{MAX_BODY_BYTES} bytes")
        return self.rfile.read(size) if size else b""

    # ------------------------------------------------------------------

    def _stream_events(self, query: dict) -> None:
        """``GET /events``: the replica's live telemetry feed as SSE.

        Frames are ``id: <seq>`` / ``data: <event json>``; a client that
        reconnects with ``?since=<last id>`` resumes from the oldest
        still-buffered event after its cursor (the on-disk event log is
        the lossless record — the stream is the live tail).  Idle
        connections get keepalive comments so proxies don't reap them.
        """
        bus = self.app.telemetry.bus
        if bus is None:
            raise ApiError(
                404, "events_unavailable",
                "this server publishes no event stream (no cache dir)",
            )
        try:
            cursor = int(query.get("since", ["0"])[-1])
        except ValueError as exc:
            raise ApiError(400, "bad_request",
                           "since must be an integer event seq") from exc
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        deadline = time.monotonic() + EVENTS_MAX_SECONDS
        try:
            while not self.app.stopping and time.monotonic() < deadline:
                events = bus.wait(cursor, timeout=EVENTS_POLL_SECONDS)
                if not events:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                for event in events:
                    seq = int(event.get("seq", 0))
                    cursor = max(cursor, seq)
                    data = json.dumps(event, separators=(",", ":"),
                                      default=str)
                    self.wfile.write(
                        f"id: {seq}\ndata: {data}\n\n".encode("utf-8")
                    )
                self.wfile.flush()
        except (OSError, ValueError):
            pass  # subscriber went away; nothing to clean up

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            parsed = urlparse(self.path)
            path = parsed.path
            if path in ("/healthz", "/healthz/"):
                self._send_json(200, self.app.health())
                return
            if path in ("/metrics", "/metrics/"):
                params = parse_qs(parsed.query)
                fmt = params.get("format", ["json"])[-1]
                if fmt == "prometheus":
                    self._send_body(200, self.app.prometheus_text(),
                                    "text/plain; version=0.0.4")
                elif fmt == "json":
                    self._send_json(200, self.app.metrics())
                else:
                    raise ApiError(
                        400, "bad_format",
                        f"unsupported metrics format {fmt!r} "
                        f"(json or prometheus)",
                    )
                return
            if path in ("/events", "/events/"):
                self._stream_events(parse_qs(parsed.query))
                return
            job_id, sub = self._job_route(path)
            if job_id == "" and sub is None:
                jobs = [job.to_dict() for job in self.app.queue.jobs()]
                jobs.sort(key=lambda entry: entry["submitted_at"])
                self._send_json(200, {"jobs": jobs})
                return
            if job_id and sub is None:
                self._send_json(200, self.app.get_job(job_id).to_dict())
                return
            if job_id and sub == "result":
                params = parse_qs(parsed.query)
                fmt = params.get("format", ["json"])[-1]
                result = self.app.job_result(job_id, fmt=fmt)
                if fmt == "csv":
                    self._send_body(200, result, "text/csv")
                else:
                    self._send_json(200, result)
                return
            search_id, sub = self._job_route(path, root="search")
            if search_id == "" and sub is None:
                searches = [
                    job.to_dict() for job in self.app.queue.jobs()
                    if "search" in (job.spec or {})
                ]
                searches.sort(key=lambda entry: entry["submitted_at"])
                self._send_json(200, {"searches": searches})
                return
            if search_id and sub is None:
                # The search record inlines the report once completed,
                # so `GET /search/<id>` is the whole conversation.
                job = self._search_job(search_id)
                self._send_json(200, job.to_dict(include_result=True))
                return
            raise ApiError(404, "not_found", f"no route for GET {path}")
        except ApiError as error:
            self._send_error(error)
        except Exception as error:  # noqa: BLE001 - no tracebacks on the wire
            self._send_error(ApiError(
                500, "internal_error", f"{type(error).__name__}: {error}"
            ))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            path = urlparse(self.path).path
            if path not in ("/jobs", "/jobs/", "/search", "/search/"):
                raise ApiError(404, "not_found", f"no route for POST {path}")
            body = self._read_body()
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (ValueError, UnicodeDecodeError) as exc:
                raise ApiError(400, "bad_request",
                               f"request body is not valid JSON: {exc}") from exc
            if path.startswith("/search"):
                # The body *is* the search request; wrap it into the
                # one-of-figure/points/search submission shape.
                if not isinstance(payload, dict):
                    raise ApiError(400, "bad_request",
                                   "search request body must be a JSON object")
                payload = dict(payload)
                priority = payload.pop("priority", 0)
                deadline_s = payload.pop("deadline_s", None)
                payload = {"search": payload, "priority": priority}
                if deadline_s is not None:
                    payload["deadline_s"] = deadline_s
            trace = TraceContext.parse(self.headers.get(TRACE_HEADER))
            job = self.app.submit(payload, trace=trace)
            self._send_json(202, job.to_dict())
        except ApiError as error:
            self._send_error(error)
        except Exception as error:  # noqa: BLE001 - no tracebacks on the wire
            self._send_error(ApiError(
                500, "internal_error", f"{type(error).__name__}: {error}"
            ))


class SweepServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the :class:`ServiceApp` reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app: ServiceApp) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.app = app


def build_server(app: ServiceApp, host: str = "127.0.0.1",
                 port: int = 8642) -> SweepServiceServer:
    """Bind the service to ``host:port`` (``port=0`` picks a free port)."""
    return SweepServiceServer((host, port), app)
