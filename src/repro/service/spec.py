"""Submission validation and result rendering for the sweep service.

Three accepted job shapes (exactly one of ``figure``/``points``/``search``)::

    {"figure": "figure6",                      # or "all"
     "settings": {"instructions": 2000,
                  "warmup_instructions": 500,
                  "benchmarks": ["gcc", "swim"]},
     "priority": 5}

    {"points": [{"benchmark": "gcc",
                 "architecture": "rfc/default",
                 "factory": {"type": "RegisterFileCacheFactory",
                             "parameters": {"caching": "always"}},
                 "config": {"max_instructions": 2000},
                 "warmup_instructions": 0}],
     "priority": 0}

    {"search": {"space": {"kind": "single-banked",
                          "read_ports": [2, 3, 4],
                          "write_ports": [2, 3, 4]},
                "objective": "pareto ipc-vs-area",
                "constraints": {"max_area_units": 25000},
                "benchmarks": ["gcc"],
                "instructions": 2000,
                "rungs": 1},
     "priority": 0}

Every rejection raises :class:`ApiError` carrying an HTTP status and a
stable ``error.code`` — the HTTP layer serializes it verbatim and the
client CLI prints it verbatim, so a bad submission never turns into a
traceback anywhere on the path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    OneLevelBankedFactory,
    RegisterFileCacheFactory,
    SingleBankedFactory,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    PLANNERS,
    plan_experiments,
    render_csv,
)
from repro.experiments.scheduler import SimulationPoint
from repro.pipeline.config import ProcessorConfig
from repro.sampling.spec import SamplingSpec, parse_sampling
from repro.search.driver import SearchSpec


class ApiError(Exception):
    """A structured, JSON-serializable request rejection.

    ``retry_after`` (seconds) marks the rejection as *transient*: the
    HTTP layer emits it as a ``Retry-After`` header and well-behaved
    clients back off and retry instead of failing (the 503
    ``overloaded`` rejection of a full queue is the canonical case).
    """

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def to_dict(self) -> dict:
        error = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return {"error": error}


#: Factory types explicit-point submissions may reference.
FACTORY_TYPES = {
    "SingleBankedFactory": SingleBankedFactory,
    "RegisterFileCacheFactory": RegisterFileCacheFactory,
    "OneLevelBankedFactory": OneLevelBankedFactory,
    # Friendly aliases.
    "single-banked": SingleBankedFactory,
    "register-file-cache": RegisterFileCacheFactory,
    "one-level-banked": OneLevelBankedFactory,
}

#: ProcessorConfig fields an explicit point may override (flat scalars
#: only; the nested cache/functional-unit configs stay at their Table 1
#: defaults).
_CONFIG_FIELDS = {
    field.name
    for field in dataclasses.fields(ProcessorConfig)
    if field.name not in ("icache", "dcache", "functional_units")
}


@dataclass(frozen=True)
class JobPlan:
    """A validated submission, ready for the executor."""

    kind: str  # "figures", "points" or "search"
    figures: Sequence[str] = ()
    settings: Optional[ExperimentSettings] = None
    points: Sequence[SimulationPoint] = ()
    #: The validated search request of a ``kind == "search"`` job; its
    #: points are planned rung by rung by the search driver, not here.
    search: Optional[SearchSpec] = None
    #: The canonical spec echoed in job records.
    spec: Optional[dict] = None
    #: Wall-clock budget from submission, seconds; ``None`` = unbounded.
    #: Enforced server-side: a job still unfinished ``deadline_s``
    #: after submission fails with cause ``deadline_exceeded``.
    deadline_s: Optional[float] = None

    def plan_points(self) -> List[SimulationPoint]:
        if self.points:  # planned at validation time, figures and explicit alike
            return list(self.points)
        if self.kind == "figures":
            return plan_experiments(list(self.figures), self.settings)
        return []


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def _require_mapping(value, status: int, code: str, what: str) -> dict:
    if not isinstance(value, dict):
        raise ApiError(status, code, f"{what} must be a JSON object")
    return value


def _build_settings(payload: dict) -> ExperimentSettings:
    settings = _require_mapping(
        payload.get("settings", {}), 422, "invalid_settings", "settings"
    )
    known = {"instructions", "warmup_instructions", "benchmarks"}
    unknown = sorted(set(settings) - known)
    if unknown:
        raise ApiError(
            422, "invalid_settings",
            f"unknown settings field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})",
        )
    kwargs = {}
    for field_name, target in (("instructions", "instructions_per_benchmark"),
                               ("warmup_instructions", "warmup_instructions")):
        if field_name in settings:
            value = settings[field_name]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ApiError(422, "invalid_settings",
                               f"settings.{field_name} must be an integer")
            kwargs[target] = value
    if "benchmarks" in settings and settings["benchmarks"] is not None:
        benchmarks = settings["benchmarks"]
        if (not isinstance(benchmarks, list)
                or not all(isinstance(name, str) for name in benchmarks)):
            raise ApiError(422, "invalid_settings",
                           "settings.benchmarks must be a list of names")
        kwargs["benchmarks"] = benchmarks
    try:
        return ExperimentSettings(**kwargs)
    except ReproError as error:
        raise ApiError(422, "invalid_settings", str(error)) from error


def _build_point(
    entry, index: int, sampling: Optional[SamplingSpec] = None
) -> SimulationPoint:
    entry = _require_mapping(entry, 422, "invalid_point",
                             f"points[{index}]")
    benchmark = entry.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        raise ApiError(422, "invalid_point",
                       f"points[{index}].benchmark must be a benchmark name")
    factory_spec = _require_mapping(
        entry.get("factory", {}), 422, "invalid_point",
        f"points[{index}].factory",
    )
    factory_type = factory_spec.get("type", "RegisterFileCacheFactory")
    factory_cls = FACTORY_TYPES.get(factory_type)
    if factory_cls is None:
        raise ApiError(
            422, "invalid_point",
            f"points[{index}].factory.type {factory_type!r} is unknown "
            f"(known: {', '.join(sorted(FACTORY_TYPES))})",
        )
    parameters = _require_mapping(
        factory_spec.get("parameters", {}), 422, "invalid_point",
        f"points[{index}].factory.parameters",
    )
    try:
        factory = factory_cls(**parameters)
    except (TypeError, ReproError) as error:
        raise ApiError(422, "invalid_point",
                       f"points[{index}].factory: {error}") from error
    overrides = _require_mapping(
        entry.get("config", {}), 422, "invalid_point",
        f"points[{index}].config",
    )
    unknown = sorted(set(overrides) - _CONFIG_FIELDS)
    if unknown:
        raise ApiError(
            422, "invalid_point",
            f"points[{index}].config has unknown field(s): {', '.join(unknown)}",
        )
    try:
        config = ProcessorConfig().with_overrides(**overrides)
    except ReproError as error:
        raise ApiError(422, "invalid_point",
                       f"points[{index}].config: {error}") from error
    warmup = entry.get("warmup_instructions", 0)
    if not isinstance(warmup, int) or isinstance(warmup, bool) or warmup < 0:
        raise ApiError(
            422, "invalid_point",
            f"points[{index}].warmup_instructions must be a non-negative integer",
        )
    architecture = entry.get("architecture", factory_type)
    if not isinstance(architecture, str) or not architecture:
        raise ApiError(422, "invalid_point",
                       f"points[{index}].architecture must be a string label")
    point = SimulationPoint(
        benchmark=benchmark,
        factory=factory,
        architecture=architecture,
        config=config,
        warmup_instructions=warmup,
        sampling=sampling,
    )
    # Surface bad benchmark names at admission, not at execution.
    try:
        from repro.workloads.profiles import get_profile

        get_profile(benchmark)
    except ReproError as error:
        raise ApiError(422, "invalid_point",
                       f"points[{index}]: {error}") from error
    return point


def _build_sampling(payload: dict) -> Optional[SamplingSpec]:
    """Parse the optional top-level ``sample`` key of a submission.

    Accepts the CLI string form (``"2000:200"`` / ``"2000:200:400"``) or
    a :meth:`SamplingSpec.to_payload` object; anything invalid is a
    structured 422 with ``error.code == "invalid_sampling"``, never a
    traceback.
    """
    if "sample" not in payload or payload["sample"] is None:
        return None
    raw = payload["sample"]
    try:
        if isinstance(raw, str):
            return parse_sampling(raw)
        if isinstance(raw, dict):
            return SamplingSpec.from_payload(raw)
    except ReproError as error:
        raise ApiError(422, "invalid_sampling", str(error)) from error
    raise ApiError(
        422, "invalid_sampling",
        "sample must be a 'STRIDE:WINDOW[:WARMUP]' string or a sampling "
        "spec object",
    )


def validate_submission(payload) -> JobPlan:
    """Turn a raw ``POST /jobs`` body into a :class:`JobPlan` (or raise)."""
    payload = _require_mapping(payload, 400, "bad_request", "request body")
    has_figure = "figure" in payload
    has_points = "points" in payload
    has_search = "search" in payload
    if int(has_figure) + int(has_points) + int(has_search) != 1:
        raise ApiError(
            422, "invalid_spec",
            "submission must contain exactly one of 'figure', 'points' "
            "or 'search'",
        )
    priority = payload.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ApiError(422, "invalid_spec", "priority must be an integer")
    deadline_s = payload.get("deadline_s")
    if deadline_s is not None:
        if (isinstance(deadline_s, bool)
                or not isinstance(deadline_s, (int, float))
                or deadline_s <= 0):
            raise ApiError(422, "invalid_spec",
                           "deadline_s must be a positive number of seconds")
        deadline_s = float(deadline_s)
    sampling = _build_sampling(payload)

    if has_search:
        if sampling is not None:
            raise ApiError(
                422, "invalid_search",
                "search jobs derive their own sampled rung budgets; "
                "a top-level 'sample' is not accepted",
            )
        try:
            search = SearchSpec.from_payload(payload["search"])
        except ReproError as error:
            raise ApiError(422, "invalid_search", str(error)) from error
        # The echo must round-trip: resumed jobs re-validate their
        # persisted spec, so the search has to rebuild exactly.
        spec = {"search": search.to_payload(), "priority": priority}
        if deadline_s is not None:
            spec["deadline_s"] = deadline_s
        return JobPlan(kind="search", search=search, spec=spec,
                       deadline_s=deadline_s)

    if has_figure:
        figure = payload["figure"]
        if not isinstance(figure, str):
            raise ApiError(422, "invalid_spec", "figure must be a string")
        if figure == "all":
            figures = list(PLANNERS)
        elif figure in PLANNERS:
            figures = [figure]
        else:
            raise ApiError(
                422, "unknown_figure",
                f"unknown figure {figure!r} "
                f"(known: {', '.join(list(PLANNERS) + ['all'])})",
            )
        settings = _build_settings(payload)
        if sampling is not None:
            settings = dataclasses.replace(settings, sampling=sampling)
        spec = {
            "figure": figure,
            "settings": {
                "instructions": settings.instructions_per_benchmark,
                "warmup_instructions": settings.warmup_instructions,
                "benchmarks": (list(settings.benchmarks)
                               if settings.benchmarks is not None else None),
            },
            "priority": priority,
        }
        if sampling is not None:
            # The echo must round-trip: resumed jobs re-validate their
            # persisted spec, so the sampled plan has to rebuild exactly.
            spec["sample"] = sampling.to_payload()
        if deadline_s is not None:
            spec["deadline_s"] = deadline_s
        # Planning validates the benchmark filter against each figure's
        # suites (a filter that excludes everything surfaces here), and
        # the points are kept on the plan so admission and execution
        # never re-plan the same submission.
        try:
            points = plan_experiments(figures, settings)
        except ReproError as error:
            raise ApiError(422, "invalid_settings", str(error)) from error
        return JobPlan(kind="figures", figures=figures, settings=settings,
                       points=tuple(points), spec=spec, deadline_s=deadline_s)

    raw_points = payload["points"]
    if not isinstance(raw_points, list) or not raw_points:
        raise ApiError(422, "invalid_spec",
                       "points must be a non-empty list of simulation points")
    points = [
        _build_point(entry, index, sampling=sampling)
        for index, entry in enumerate(raw_points)
    ]
    spec = {"points": list(raw_points), "priority": priority}
    if sampling is not None:
        spec["sample"] = sampling.to_payload()
    if deadline_s is not None:
        spec["deadline_s"] = deadline_s
    return JobPlan(kind="points", points=points, spec=spec,
                   deadline_s=deadline_s)


# ----------------------------------------------------------------------
# result assembly and rendering
# ----------------------------------------------------------------------


def assemble_figure_result(plan: JobPlan, cache) -> dict:
    """Build the report payload of a completed figure job.

    Runs the same experiment functions as ``repro.experiments.runner``
    over the now-warm cache, so the service's answer for a plan is
    byte-for-byte the runner's answer for the same plan.
    """
    results = []
    for name in plan.figures:
        result = EXPERIMENTS[name](plan.settings, cache=cache)
        results.append({
            "name": result.name,
            "title": result.title,
            "body": result.body,
            "data": result.data,
        })
    return {
        "kind": "figures",
        "settings": dict(plan.spec["settings"]),
        "results": results,
    }


def assemble_points_result(plan: JobPlan, store) -> dict:
    """Per-point statistics of a completed explicit-points job."""
    entries = []
    for point in plan.points:
        stats = store.get(point.store_key())
        entries.append({
            "benchmark": point.benchmark,
            "architecture": point.architecture,
            "store_key": point.store_key(),
            "stats": stats.to_dict() if stats is not None else None,
        })
    return {"kind": "points", "points": entries}


def result_to_csv(result: dict) -> str:
    """Render a job result payload as the runner's CSV dialect."""
    if result.get("kind") == "search":
        lines = ["label,area_units,ipc"]
        for entry in result.get("report", {}).get("frontier", []):
            lines.append(
                f"{entry.get('label')},{entry.get('area_units')},"
                f"{entry.get('ipc')}"
            )
        return "\n".join(lines) + "\n"
    if result.get("kind") == "figures":
        experiment_results = [
            ExperimentResult(
                name=entry["name"], title=entry["title"],
                body=entry["body"], data=entry["data"],
            )
            for entry in result.get("results", [])
        ]
        return render_csv(experiment_results)
    experiment_results = [
        ExperimentResult(
            name=f"{entry['benchmark']}@{entry['architecture']}",
            title="", body="", data=entry.get("stats") or {},
        )
        for entry in result.get("points", [])
    ]
    return render_csv(experiment_results)
