"""Traffic-grade storage: sharded append-only segment logs.

This package is the persistence layer shared by the result store, the
trace store and the service fleet: :mod:`repro.storage.segment` frames
individual records, :mod:`repro.storage.sharded` provides the
sharded/compacting :class:`~repro.storage.sharded.ShardedStore`, and
:mod:`repro.storage.migrate` imports legacy file-per-entry cache trees.
"""

from repro.storage.migrate import migrate_legacy_files
from repro.storage.sharded import ShardedStore

__all__ = ["ShardedStore", "migrate_legacy_files"]
