"""Traffic-grade storage: sharded append-only segment logs.

This package is the persistence layer shared by the result store, the
trace store and the service fleet: :mod:`repro.storage.segment` frames
individual records, :mod:`repro.storage.sharded` provides the
sharded/compacting :class:`~repro.storage.sharded.ShardedStore`, and
:mod:`repro.storage.migrate` imports legacy file-per-entry cache trees.

Protocol invariants (the full narrative is ``docs/storage.md``):

* **Record framing** — every record is ``struct("<III")`` header
  ``(meta_len, data_len, crc32)`` followed by ``meta_len`` bytes of
  compact sorted JSON metadata and ``data_len`` bytes of opaque
  payload; the CRC-32 covers ``meta + data``.  Either length above
  ``MAX_RECORD_BYTES`` (256 MiB) marks the frame implausible.
* **Append-only** — segments are never modified in place: deletes and
  overwrites append tombstones/new versions, compaction writes a fresh
  segment (``tmp + fsync + rename``) and unlinks the old ones.  A
  reader therefore needs no lock; an in-progress append just looks
  like a torn tail until complete.
* **Torn-tail self-healing** — scanning stops at the first short,
  implausible or CRC-mismatching frame; everything before it is intact
  by the sequential-append argument.  Readers skip the tail, and the
  next writer truncates it away *under the shard flock* before
  appending, so every ``put()`` that returned stays durable.
* **Sharding** — a key (always a SHA-256 hex digest) lands in shard
  ``int(key[:2], 16) % num_shards``; writers serialize per shard on
  ``flock(shard-XX/.lock)`` plus an in-process thread lock.
* **Claims** — ``claim(key, owner, ttl)`` appends a claim record only
  while the key has no live value and no unexpired foreign claim
  (first writer wins under the flock); a ``put`` supersedes any claim,
  and an expired claim is simply ignorable — crash recovery needs no
  cleanup.  This is the store-level single-flight primitive the sweep
  fleet builds on (:mod:`repro.service.fleet` layers job *leases* on
  top with the same TTL discipline).
"""

from repro.storage.migrate import migrate_legacy_files
from repro.storage.sharded import ShardedStore

__all__ = ["ShardedStore", "migrate_legacy_files"]
