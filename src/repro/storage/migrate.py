"""One-time migration of legacy file-per-entry cache trees.

Before the segment-log storage layer, every result lived as
``<cache_dir>/<key>.json`` and every trace as
``<cache_dir>/traces/<key>.json.gz``.  Opening one of those trees under
the new stores transparently imports every legacy file **byte for
byte** into the sharded store (so previously cached results replay
identically) and then removes it; files that fail validation are moved
into a ``legacy-quarantine/`` subdirectory instead of being deleted,
mirroring the job store's quarantine semantics.

The whole sweep runs under an exclusive ``.migrate.lock`` flock so that
several replicas opening one shared cache tree at the same moment
import each file exactly once.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

try:  # pragma: no cover - POSIX-only; fallback keeps imports safe
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Where invalid legacy files are parked instead of being deleted.
QUARANTINE_SUBDIR = "legacy-quarantine"


def migrate_legacy_files(
    legacy_dir: str,
    suffix: str,
    put: Callable[[str, bytes], None],
    validate: Callable[[str, bytes], bool],
) -> Dict[str, int]:
    """Import every ``<key><suffix>`` file in ``legacy_dir`` via ``put``.

    ``validate(key, raw)`` decides whether the raw bytes are a sane
    legacy entry; valid files are stored verbatim under their stem and
    deleted, invalid ones are moved to quarantine.  Returns counts
    ``{"migrated": n, "quarantined": m}``; a missing directory or one
    with no matching files is a cheap no-op.
    """
    counts = {"migrated": 0, "quarantined": 0}
    try:
        names = [n for n in os.listdir(legacy_dir) if n.endswith(suffix)]
    except OSError:
        return counts
    if not names:
        return counts

    lock_path = os.path.join(legacy_dir, ".migrate.lock")
    fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        # Re-scan under the lock: a concurrent replica may have migrated
        # (and removed) some or all of the files while we waited.
        try:
            names = sorted(n for n in os.listdir(legacy_dir) if n.endswith(suffix))
        except OSError:
            return counts
        for name in names:
            key = name[: -len(suffix)]
            if not key:
                continue
            path = os.path.join(legacy_dir, name)
            try:
                with open(path, "rb") as handle:
                    raw = handle.read()
            except OSError:
                continue
            if validate(key, raw):
                put(key, raw)
                try:
                    os.unlink(path)
                except OSError:
                    pass
                counts["migrated"] += 1
            else:
                quarantine = os.path.join(legacy_dir, QUARANTINE_SUBDIR)
                os.makedirs(quarantine, exist_ok=True)
                try:
                    os.replace(path, os.path.join(quarantine, name))
                    counts["quarantined"] += 1
                except OSError:
                    pass
    finally:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
    return counts
