"""Record framing for append-only segment files.

A segment is a flat file of back-to-back records.  Each record is::

    header  = struct("<III")  -> (meta_len, data_len, crc32(meta + data))
    meta    = compact JSON (key, operation, timestamp, claim owner, ...)
    data    = opaque value bytes (the store never interprets them)

Appends are strictly at the end of the file, so a record's byte offset
is stable for its whole life and an in-memory index can point straight
into the segment.  A writer that dies mid-append leaves a **torn tail**:
an incomplete header, a payload shorter than the header promises, or a
CRC mismatch.  Readers stop scanning at the first torn record (every
record before it is intact by construction); the next writer — which
holds the shard's exclusive file lock — truncates the torn bytes away
before appending, so the log self-heals without ever rewriting history.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

#: (meta_len, data_len, crc32(meta + data))
_HEADER = struct.Struct("<III")

HEADER_SIZE = _HEADER.size

#: Hard cap on a single record's payload; a corrupt header that decodes
#: to an absurd length is recognised as torn instead of allocating GBs.
MAX_RECORD_BYTES = 256 * 1024 * 1024


def encode_meta(meta: dict) -> bytes:
    return json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")


def record_size(meta: dict, data: bytes) -> int:
    """Total on-disk footprint of a record (header + meta + data)."""
    return HEADER_SIZE + len(encode_meta(meta)) + len(data)


def pack_record(meta: dict, data: bytes) -> bytes:
    meta_bytes = encode_meta(meta)
    crc = zlib.crc32(meta_bytes + data) & 0xFFFFFFFF
    return _HEADER.pack(len(meta_bytes), len(data), crc) + meta_bytes + data


@dataclass(frozen=True)
class Record:
    """One decoded record and where its payload lives in the segment."""

    offset: int  # byte offset of the record header
    end_offset: int  # byte offset just past the record
    meta: dict
    data_offset: int  # byte offset of the payload within the segment
    data_len: int


def scan_segment(
    path: str, start: int = 0
) -> Tuple[list, int, bool]:
    """Decode every complete record from ``start`` to the end of ``path``.

    Returns ``(records, end_offset, torn)`` where ``end_offset`` is the
    offset just past the last *intact* record and ``torn`` reports
    whether trailing bytes had to be ignored (incomplete or corrupt).
    A missing file yields ``([], 0, False)``.
    """
    records = []
    torn = False
    offset = start
    try:
        with open(path, "rb") as handle:
            handle.seek(start)
            while True:
                header = handle.read(HEADER_SIZE)
                if not header:
                    break
                if len(header) < HEADER_SIZE:
                    torn = True
                    break
                meta_len, data_len, crc = _HEADER.unpack(header)
                if meta_len + data_len > MAX_RECORD_BYTES:
                    torn = True
                    break
                body = handle.read(meta_len + data_len)
                if len(body) < meta_len + data_len:
                    torn = True
                    break
                if zlib.crc32(body) & 0xFFFFFFFF != crc:
                    torn = True
                    break
                try:
                    meta = json.loads(body[:meta_len].decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    torn = True
                    break
                if not isinstance(meta, dict):
                    torn = True
                    break
                data_offset = offset + HEADER_SIZE + meta_len
                end = data_offset + data_len
                records.append(Record(offset, end, meta, data_offset, data_len))
                offset = end
    except OSError:
        return [], 0, False
    return records, offset, torn


def iter_records(path: str, start: int = 0) -> Iterator[Record]:
    records, _, _ = scan_segment(path, start)
    return iter(records)


def read_data(path: str, data_offset: int, data_len: int) -> Optional[bytes]:
    """The payload bytes of one indexed record; ``None`` if unreadable
    (segment compacted away by another process, truncated, ...)."""
    try:
        with open(path, "rb") as handle:
            handle.seek(data_offset)
            blob = handle.read(data_len)
    except OSError:
        return None
    if len(blob) != data_len:
        return None
    return blob


def append_records(path: str, packed: bytes, truncate_at: Optional[int] = None) -> int:
    """Append pre-packed record bytes; returns the offset they start at.

    ``truncate_at`` (when given) first cuts a torn tail off the segment —
    callers must hold the shard's exclusive file lock, which guarantees
    no other writer is mid-append.
    """
    flags = os.O_RDWR | os.O_CREAT
    fd = os.open(path, flags, 0o644)
    try:
        if truncate_at is not None and os.fstat(fd).st_size > truncate_at:
            os.ftruncate(fd, truncate_at)
        offset = os.lseek(fd, 0, os.SEEK_END)
        os.write(fd, packed)
    finally:
        os.close(fd)
    return offset
