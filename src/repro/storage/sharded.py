"""A sharded, compacting key-value store over append-only segment logs.

This is the traffic-grade storage layer behind the repository's result,
trace and (via leases) job stores.  Design:

* **Sharding.**  Keys (content hashes) are routed to one of
  ``num_shards`` shard directories by their leading hex byte, so
  concurrent writers mostly touch different files and compaction work
  is bounded per shard.
* **Append-only segments.**  Each shard holds numbered segment files
  (see :mod:`repro.storage.segment`).  A put/delete/claim appends one
  record; nothing is ever rewritten in place, so readers can scan
  without locks and a crash can only ever damage the final record (the
  *torn tail*, skipped by readers and truncated away by the next
  locked writer).
* **In-memory index.**  Each process keeps a per-shard index
  ``key -> (segment, offset)`` built by scanning segments once and then
  *incrementally*: on a miss the shard re-scans only bytes appended
  since the last scan, which is what makes one cache tree shared by
  many processes cheap — another replica's fresh write is picked up by
  a tail scan, not a full reload.
* **Claims.**  A claim is a small leased marker record
  (``owner``/``deadline``) used for cross-replica single-flight: the
  first replica to claim a key computes it, everyone else polls for the
  value.  Claims expire, so a crashed owner never wedges the fleet, and
  a put for the key implicitly releases its claim.
* **TTL, size bound, compaction.**  Entries older than ``ttl_seconds``
  read as misses; when a shard's dead-byte ratio or payload budget
  (``max_bytes / num_shards``) is exceeded, the shard is compacted:
  live unexpired records are rewritten into one fresh segment (oldest
  entries evicted first under a size bound) and the old segments are
  deleted.

Cross-process exclusion uses one ``flock`` per shard held only for the
duration of an append or compaction; reads never take the file lock.
"""

from __future__ import annotations

import errno
import os
import re
import threading
import zlib
from dataclasses import dataclass, field
from time import perf_counter as _perf_counter
from time import time as _wall_clock
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos import seams as _seams
from repro.storage import segment as seg

try:  # pragma: no cover - POSIX-only; the no-op fallback keeps imports safe
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Segment files are ``seg-<8-digit id>.log`` inside a shard directory.
_SEGMENT_RE = re.compile(r"^seg-(\d{8})\.log$")

#: Default upper bound before appends roll over to a fresh segment file.
DEFAULT_SEGMENT_MAX_BYTES = 8 * 1024 * 1024

#: A shard is auto-compacted when dead bytes exceed this share of the log.
DEFAULT_COMPACT_DEAD_RATIO = 0.5

#: ... but only once the log is big enough for compaction to matter.
DEFAULT_COMPACT_MIN_BYTES = 64 * 1024


@dataclass(frozen=True)
class _Entry:
    """Where one live key's payload lives, plus TTL/eviction bookkeeping."""

    ts: float
    segment_id: int
    data_offset: int
    data_len: int
    record_bytes: int  # full on-disk footprint (header + meta + data)


class _Shard:
    """Mutable per-shard state; guarded by ``lock`` within the process."""

    __slots__ = ("directory", "lock", "index", "claims", "claim_bytes",
                 "scanned", "live_data_bytes", "dead_bytes")

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.lock = threading.RLock()
        #: key -> _Entry, in record order (dict insertion order).
        self.index: Dict[str, _Entry] = {}
        #: key -> (owner, absolute deadline).
        self.claims: Dict[str, Tuple[str, float]] = {}
        #: key -> record footprint of its latest claim record.
        self.claim_bytes: Dict[str, int] = {}
        #: segment id -> byte offset scanned so far (the valid end).
        self.scanned: Dict[int, int] = {}
        self.live_data_bytes = 0
        self.dead_bytes = 0


@dataclass
class _Counters:
    compactions: int = 0
    evictions: int = 0
    expired_dropped: int = 0
    torn_tails: int = 0
    rebuilds: int = 0
    write_errors: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class ShardedStore:
    """Sharded segment-log store; see the module docstring for the design.

    ``clock`` is injectable (tests drive TTL/lease expiry with a fake
    clock); everything time-based — entry TTLs, claim deadlines —
    reads it.
    """

    def __init__(
        self,
        root: str,
        num_shards: int = 16,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
        segment_max_bytes: int = DEFAULT_SEGMENT_MAX_BYTES,
        compact_dead_ratio: float = DEFAULT_COMPACT_DEAD_RATIO,
        compact_min_bytes: int = DEFAULT_COMPACT_MIN_BYTES,
        clock: Callable[[], float] = _wall_clock,
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.root = root
        self.num_shards = num_shards
        self.ttl_seconds = ttl_seconds
        self.max_bytes = max_bytes
        self.segment_max_bytes = segment_max_bytes
        self.compact_dead_ratio = compact_dead_ratio
        self.compact_min_bytes = compact_min_bytes
        self.clock = clock
        self.counters = _Counters()
        #: Optional duration sink ``(op, seconds) -> None`` fired after
        #: every append (``"append"``) and compaction (``"compact"``) —
        #: the service hangs its storage spans/histograms here without
        #: this layer knowing anything about telemetry.  Observers must
        #: be fast and non-raising; a ``None`` observer costs one
        #: ``is None`` test on the write path.
        self.observer: Optional[Callable[[str, float], None]] = None
        self._shards: Dict[int, _Shard] = {}
        self._shards_lock = threading.Lock()
        #: Sticky degradation flag: set on the first ENOSPC and never
        #: cleared within the process (a full disk rarely un-fills
        #: itself; a restart after freeing space recovers).  While set,
        #: writes are skipped instead of retried — callers above keep
        #: serving from their memory tiers.
        self._read_only = threading.Event()
        os.makedirs(root, exist_ok=True)

    @property
    def read_only(self) -> bool:
        """Whether the store has degraded to read-only after ENOSPC."""
        return self._read_only.is_set()

    def _degrade(self, error: OSError) -> None:
        self._read_only.set()
        with self.counters.lock:
            self.counters.write_errors += 1

    # ------------------------------------------------------------------
    # shard routing and state
    # ------------------------------------------------------------------

    def shard_of(self, key: str) -> int:
        try:
            bucket = int(key[:2], 16)
        except (ValueError, IndexError):
            bucket = zlib.crc32(key.encode("utf-8")) & 0xFF
        return bucket % self.num_shards

    def _shard(self, index: int) -> _Shard:
        with self._shards_lock:
            shard = self._shards.get(index)
            if shard is None:
                shard = _Shard(os.path.join(self.root, f"shard-{index:02x}"))
                self._shards[index] = shard
        return shard

    def _segment_path(self, shard: _Shard, segment_id: int) -> str:
        return os.path.join(shard.directory, f"seg-{segment_id:08d}.log")

    def _list_segments(self, shard: _Shard) -> List[int]:
        try:
            names = os.listdir(shard.directory)
        except OSError:
            return []
        ids = []
        for name in names:
            match = _SEGMENT_RE.match(name)
            if match:
                ids.append(int(match.group(1)))
        ids.sort()
        return ids

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------

    class _FileLock:
        """Exclusive cross-process lock on one shard (flock on .lock)."""

        def __init__(self, directory: str) -> None:
            self._path = os.path.join(directory, ".lock")
            self._fd: Optional[int] = None

        def __enter__(self) -> "ShardedStore._FileLock":
            os.makedirs(os.path.dirname(self._path), exist_ok=True)
            self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc_info) -> None:
            if self._fd is not None:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = None

    def _file_lock(self, shard: _Shard) -> "ShardedStore._FileLock":
        return ShardedStore._FileLock(shard.directory)

    # ------------------------------------------------------------------
    # index maintenance
    # ------------------------------------------------------------------

    def _expired(self, ts: float) -> bool:
        return self.ttl_seconds is not None and self.clock() - ts > self.ttl_seconds

    def _claim_live(self, claim: Tuple[str, float]) -> bool:
        return claim[1] > self.clock()

    def _apply(self, shard: _Shard, record: seg.Record, segment_id: int) -> None:
        """Fold one scanned record into the shard's in-memory state."""
        meta = record.meta
        key = meta.get("k")
        op = meta.get("op")
        if not isinstance(key, str):
            return
        size = record.end_offset - record.offset
        if op == "put":
            previous = shard.index.pop(key, None)
            if previous is not None:
                shard.dead_bytes += previous.record_bytes
                shard.live_data_bytes -= previous.data_len
            shard.index[key] = _Entry(
                ts=float(meta.get("t", 0.0)),
                segment_id=segment_id,
                data_offset=record.data_offset,
                data_len=record.data_len,
                record_bytes=size,
            )
            shard.live_data_bytes += record.data_len
            # A stored value supersedes any claim on its key.
            if shard.claims.pop(key, None) is not None:
                shard.dead_bytes += shard.claim_bytes.pop(key, 0)
        elif op == "del":
            previous = shard.index.pop(key, None)
            if previous is not None:
                shard.dead_bytes += previous.record_bytes
                shard.live_data_bytes -= previous.data_len
            shard.dead_bytes += size  # the tombstone itself dies at compaction
        elif op == "claim":
            owner = meta.get("o")
            deadline = meta.get("d")
            if isinstance(owner, str) and isinstance(deadline, (int, float)):
                if shard.claims.pop(key, None) is not None:
                    shard.dead_bytes += shard.claim_bytes.pop(key, 0)
                shard.claims[key] = (owner, float(deadline))
                shard.claim_bytes[key] = size
        elif op == "rel":
            claim = shard.claims.get(key)
            if claim is not None and claim[0] == meta.get("o"):
                shard.claims.pop(key, None)
                shard.dead_bytes += shard.claim_bytes.pop(key, 0)
            shard.dead_bytes += size

    def _rebuild(self, shard: _Shard) -> None:
        """Re-scan the whole shard from scratch (after compaction races)."""
        shard.index.clear()
        shard.claims.clear()
        shard.claim_bytes.clear()
        shard.scanned.clear()
        shard.live_data_bytes = 0
        shard.dead_bytes = 0
        with self.counters.lock:
            self.counters.rebuilds += 1
        self._refresh(shard)

    def _refresh(self, shard: _Shard) -> None:
        """Fold any bytes appended since the last scan into the index.

        Records are applied in (segment id, offset) order — the order
        they were written in, because appends are serialized by the
        shard file lock and always target the highest-numbered segment.
        """
        ids = self._list_segments(shard)
        known = set(shard.scanned)
        if known - set(ids):
            # A segment we indexed disappeared: another process compacted
            # the shard.  Start over from the surviving files.
            shard.index.clear()
            shard.claims.clear()
            shard.claim_bytes.clear()
            shard.scanned.clear()
            shard.live_data_bytes = 0
            shard.dead_bytes = 0
            with self.counters.lock:
                self.counters.rebuilds += 1
        for segment_id in ids:
            start = shard.scanned.get(segment_id, 0)
            path = self._segment_path(shard, segment_id)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size <= start:
                continue
            records, end, torn = seg.scan_segment(path, start)
            for record in records:
                self._apply(shard, record, segment_id)
            shard.scanned[segment_id] = end
            if torn:
                with self.counters.lock:
                    self.counters.torn_tails += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[bytes]:
        """The payload bytes of ``key``; ``None`` on miss/expiry."""
        shard = self._shard(self.shard_of(key))
        with shard.lock:
            entry = shard.index.get(key)
            if entry is None:
                self._refresh(shard)
                entry = shard.index.get(key)
            if entry is None or self._expired(entry.ts):
                return None
            data = seg.read_data(
                self._segment_path(shard, entry.segment_id),
                entry.data_offset, entry.data_len,
            )
            if data is None:
                # The segment vanished under us (concurrent compaction);
                # rebuild from the surviving files and retry once.
                self._rebuild(shard)
                entry = shard.index.get(key)
                if entry is None or self._expired(entry.ts):
                    return None
                data = seg.read_data(
                    self._segment_path(shard, entry.segment_id),
                    entry.data_offset, entry.data_len,
                )
            return data

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def keys(self) -> List[str]:
        """Every live, unexpired key (refreshes all shards)."""
        result: List[str] = []
        for i in range(self.num_shards):
            shard = self._shard(i)
            with shard.lock:
                self._refresh(shard)
                result.extend(
                    key for key, entry in shard.index.items()
                    if not self._expired(entry.ts)
                )
        return result

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def _active_segment(self, shard: _Shard) -> int:
        ids = list(shard.scanned)
        active = max(ids) if ids else 1
        if shard.scanned.get(active, 0) >= self.segment_max_bytes:
            active += 1
        return active

    def _append_locked(self, shard: _Shard, meta: dict, data: bytes) -> None:
        """Append one record; caller holds both shard locks and has
        refreshed the index (so ``scanned`` marks the valid end)."""
        if _seams.active is not None:
            _seams.active.fire(
                "storage.append", op=meta.get("op"), key=meta.get("k"),
            )
        segment_id = self._active_segment(shard)
        path = self._segment_path(shard, segment_id)
        packed = seg.pack_record(meta, data)
        valid_end = shard.scanned.get(segment_id, 0)
        offset = seg.append_records(path, packed, truncate_at=valid_end)
        record = seg.Record(
            offset=offset,
            end_offset=offset + len(packed),
            meta=meta,
            data_offset=offset + len(packed) - len(data),
            data_len=len(data),
        )
        self._apply(shard, record, segment_id)
        shard.scanned[segment_id] = record.end_offset

    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (last writer wins, claim released).

        On ENOSPC the store degrades to read-only instead of raising:
        the write is dropped (callers keep the value in their memory
        tier), ``write_errors`` is counted and :attr:`read_only` goes
        sticky so later writes are skipped without touching the disk.
        """
        if self._read_only.is_set():
            return
        observer = self.observer
        started = _perf_counter() if observer is not None else 0.0
        shard = self._shard(self.shard_of(key))
        with shard.lock, self._file_lock(shard):
            self._refresh(shard)
            try:
                self._append_locked(
                    shard, {"k": key, "op": "put", "t": self.clock()}, data
                )
                if self._needs_compaction(shard):
                    self._compact_locked(shard)
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._degrade(error)
        if observer is not None:
            observer("append", _perf_counter() - started)

    def delete(self, key: str) -> bool:
        """Append a tombstone; returns whether the key was present."""
        if self._read_only.is_set():
            return False
        shard = self._shard(self.shard_of(key))
        with shard.lock, self._file_lock(shard):
            self._refresh(shard)
            if key not in shard.index:
                return False
            try:
                self._append_locked(
                    shard, {"k": key, "op": "del", "t": self.clock()}, b""
                )
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._degrade(error)
                return False
            return True

    # ------------------------------------------------------------------
    # claims (cross-replica single-flight)
    # ------------------------------------------------------------------

    def claim(self, key: str, owner: str, ttl: float) -> Tuple[bool, Optional[str]]:
        """Try to claim ``key`` for ``owner`` for ``ttl`` seconds.

        Returns ``(True, owner)`` on success (re-claiming one's own key
        renews the deadline), ``(False, holder)`` when another owner's
        unexpired claim holds the key, and ``(False, None)`` when a live
        value already exists — the caller should simply read it.

        While :attr:`read_only` (ENOSPC degradation), claims cannot be
        persisted; the grant is returned without a record, degrading
        cross-replica single-flight to each replica's in-process dedup.
        """
        shard = self._shard(self.shard_of(key))
        if self._read_only.is_set():
            with shard.lock:
                self._refresh(shard)
                entry = shard.index.get(key)
                if entry is not None and not self._expired(entry.ts):
                    return False, None
            return True, owner
        with shard.lock, self._file_lock(shard):
            self._refresh(shard)
            entry = shard.index.get(key)
            if entry is not None and not self._expired(entry.ts):
                return False, None
            current = shard.claims.get(key)
            if current is not None and self._claim_live(current) and current[0] != owner:
                return False, current[0]
            now = self.clock()
            try:
                self._append_locked(
                    shard,
                    {"k": key, "op": "claim", "o": owner, "d": now + ttl, "t": now},
                    b"",
                )
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._degrade(error)
            return True, owner

    def release(self, key: str, owner: str) -> bool:
        """Release ``owner``'s claim on ``key`` (no-op if not held)."""
        if self._read_only.is_set():
            return False
        shard = self._shard(self.shard_of(key))
        with shard.lock, self._file_lock(shard):
            self._refresh(shard)
            current = shard.claims.get(key)
            if current is None or current[0] != owner:
                return False
            try:
                self._append_locked(
                    shard, {"k": key, "op": "rel", "o": owner, "t": self.clock()}, b""
                )
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._degrade(error)
            return True

    def claim_holder(self, key: str) -> Optional[Tuple[str, float]]:
        """The (owner, deadline) of an unexpired claim, else ``None``."""
        shard = self._shard(self.shard_of(key))
        with shard.lock:
            self._refresh(shard)
            current = shard.claims.get(key)
            if current is not None and self._claim_live(current):
                return current
            return None

    # ------------------------------------------------------------------
    # compaction, TTL and the size bound
    # ------------------------------------------------------------------

    def _shard_budget(self) -> Optional[float]:
        if self.max_bytes is None:
            return None
        return self.max_bytes / self.num_shards

    def _needs_compaction(self, shard: _Shard) -> bool:
        budget = self._shard_budget()
        if budget is not None and shard.live_data_bytes > budget:
            return True
        total = shard.live_data_bytes + shard.dead_bytes
        return (
            total >= self.compact_min_bytes
            and shard.dead_bytes > self.compact_dead_ratio * total
        )

    def _compact_locked(self, shard: _Shard) -> None:
        """Rewrite the shard's live records into one fresh segment.

        Expired entries are dropped; under a size bound the oldest
        entries (by timestamp, then write order) are evicted until the
        shard's payload fits its budget.  Caller holds both locks.
        """
        observer = self.observer
        compact_started = _perf_counter() if observer is not None else 0.0
        live: List[Tuple[str, _Entry, bytes]] = []
        expired = 0
        for key, entry in shard.index.items():
            if self._expired(entry.ts):
                expired += 1
                continue
            data = seg.read_data(
                self._segment_path(shard, entry.segment_id),
                entry.data_offset, entry.data_len,
            )
            if data is None:
                continue
            live.append((key, entry, data))
        live.sort(key=lambda item: item[1].ts)  # stable: ties keep write order

        evicted = 0
        budget = self._shard_budget()
        if budget is not None:
            payload = sum(len(data) for _, _, data in live)
            while live and payload > budget:
                _, _, data = live.pop(0)
                payload -= len(data)
                evicted += 1

        claims = {
            key: (claim, shard.claim_bytes.get(key, 0))
            for key, claim in shard.claims.items()
            if self._claim_live(claim)
        }

        old_ids = self._list_segments(shard)
        new_id = (max(old_ids) if old_ids else 0) + 1
        tmp_path = os.path.join(shard.directory, f".compact-{new_id:08d}.tmp")
        blob = bytearray()
        for key, entry, data in live:
            blob += seg.pack_record({"k": key, "op": "put", "t": entry.ts}, data)
        for key, ((owner, deadline), _) in claims.items():
            blob += seg.pack_record(
                {"k": key, "op": "claim", "o": owner, "d": deadline, "t": deadline},
                b"",
            )
        fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, bytes(blob))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, self._segment_path(shard, new_id))
        for segment_id in old_ids:
            try:
                os.unlink(self._segment_path(shard, segment_id))
            except OSError:
                pass

        # Rebuild the in-memory state to mirror exactly what was written.
        shard.index.clear()
        shard.claims.clear()
        shard.claim_bytes.clear()
        shard.scanned.clear()
        shard.live_data_bytes = 0
        shard.dead_bytes = 0
        records, end, _ = seg.scan_segment(self._segment_path(shard, new_id))
        for record in records:
            self._apply(shard, record, new_id)
        shard.scanned[new_id] = end
        with self.counters.lock:
            self.counters.compactions += 1
            self.counters.evictions += evicted
            self.counters.expired_dropped += expired
        if observer is not None:
            observer("compact", _perf_counter() - compact_started)

    def compact(self) -> None:
        """Force-compact every shard that has any data on disk."""
        if self._read_only.is_set():
            return
        for i in range(self.num_shards):
            shard = self._shard(i)
            if not os.path.isdir(shard.directory):
                continue
            with shard.lock, self._file_lock(shard):
                self._refresh(shard)
                self._compact_locked(shard)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Fleet-facing storage counters (refreshes every shard)."""
        entries = 0
        claims = 0
        live_data = 0
        dead = 0
        segments = 0
        for i in range(self.num_shards):
            shard = self._shard(i)
            with shard.lock:
                self._refresh(shard)
                entries += sum(
                    1 for entry in shard.index.values()
                    if not self._expired(entry.ts)
                )
                claims += sum(
                    1 for claim in shard.claims.values()
                    if self._claim_live(claim)
                )
                live_data += shard.live_data_bytes
                dead += shard.dead_bytes
                segments += len(shard.scanned)
        with self.counters.lock:
            return {
                "entries": entries,
                "claims": claims,
                "live_data_bytes": live_data,
                "dead_bytes": dead,
                "segment_files": segments,
                "compactions": self.counters.compactions,
                "evictions": self.counters.evictions,
                "expired_dropped": self.counters.expired_dropped,
                "torn_tails": self.counters.torn_tails,
                "rebuilds": self.counters.rebuilds,
                "write_errors": self.counters.write_errors,
                "read_only": int(self._read_only.is_set()),
            }
