"""Trace-once / replay-many execution of the simulator frontend.

The experiments of the paper are *sweeps*: one instruction stream is run
through many register-file architectures and the results are compared.
The workload generator and the frontend (fetch grouping, gshare
direction prediction, BTB, I-cache) behave identically for every backend
under study — fetch blocks on every mispredicted branch until it
resolves, so the predictor's speculative-history repair always lands
before the next prediction, and group composition never reads the cycle
counter.  This package exploits that: a :class:`TraceRecorder` runs the
workload + frontend **once** per (benchmark, frontend-relevant config)
and materializes a compact decoded-instruction / fetch-event stream; a
:class:`TraceReplayer` then drives the pipeline through the frontend
seam of :class:`~repro.pipeline.processor.Processor` in place of live
fetch.  Replay is bit-identical: a replayed point reproduces the
live-run :class:`~repro.pipeline.stats.SimulationStats` (and
``commit_checksum``) exactly — guarded by ``tests/test_trace_replay.py``.

See ``docs/tracing.md`` for the schema and the conditions under which
replay is bypassed.
"""

from repro.trace.schema import (
    TRACE_SCHEMA_VERSION,
    DecodedTrace,
    FetchEvent,
    frontend_fingerprint,
    trace_key,
)
from repro.trace.recorder import RecordingFetchUnit, record_trace
from repro.trace.replayer import TraceReplayer, replay_simulate
from repro.trace.store import TraceStore

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "DecodedTrace",
    "FetchEvent",
    "RecordingFetchUnit",
    "TraceReplayer",
    "TraceStore",
    "frontend_fingerprint",
    "record_trace",
    "replay_simulate",
    "trace_key",
]
