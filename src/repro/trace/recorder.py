"""Recording the frontend of one canonical pipeline run.

The recorder materializes the workload, then runs one full pipeline
simulation (the cheapest architecture by default — a 1-cycle monolithic
register file) with a :class:`RecordingFetchUnit` in place of the plain
fetch unit.  The commit limit is lifted to the stream length so fetch
consumes the *entire* stream under fully live conditions: every branch
resolves and trains the predictor exactly as a live run would, so the
recorded events are valid for any replayed commit budget up to the
stream length (a simulation with a higher commit limit is
cycle-identical to one with a lower limit until the lower limit stops).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.fetch import FetchUnit
from repro.frontend.gshare import GSharePredictor
from repro.isa.instruction import DynamicInstruction
from repro.memsys.cache import CacheModel
from repro.pipeline.config import ProcessorConfig
from repro.pipeline.processor import simulate
from repro.regfile.monolithic import SingleBankedRegisterFile
from repro.trace.schema import (
    ENDS_BLOCKED,
    EXHAUSTS,
    DecodedTrace,
    FetchEvent,
    frontend_fingerprint,
    trace_key,
)


def _canonical_regfile() -> SingleBankedRegisterFile:
    """The recording backend: cheap to simulate, timing-irrelevant.

    Frontend outcomes are backend-independent in this simulator: fetch
    blocks on every mispredicted branch until it resolves (so the
    history repair always precedes the next prediction) and group
    composition never reads the cycle counter — the backend only
    determines how fast the recording run itself finishes.  The one
    theoretical exception is gshare counter-*training* order between
    in-flight branches (updates land at backend-dependent write-back
    times), which could in principle flip an aliased prediction near a
    saturation boundary.  Empirically it never does across the full
    architecture matrix and severe backend perturbations —
    ``tests/test_trace_replay.py`` re-verifies the bit-identity contract
    on every run, and ``--no-trace-replay`` is the escape hatch should a
    workload ever hit the corner.
    """
    return SingleBankedRegisterFile(latency=1, bypass_levels=1)


class RecordingFetchUnit(FetchUnit):
    """A fetch unit that logs one event per delivering ``fetch()`` call.

    Calls that return empty-handed *without* touching any state (blocked
    on a mispredicted branch, inside a stall window) are not events: the
    replayer reproduces those from its own stall/block bookkeeping.
    Empty calls that consumed an I-cache miss or discovered stream
    exhaustion are events — they change observable state.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.events: list[FetchEvent] = []
        self._recorded_exhaustion = False

    def fetch(self, cycle: int):
        icache = self.icache
        hits_before = icache.hits
        misses_before = icache.misses
        group = super().fetch(cycle)
        hits = icache.hits - hits_before
        misses = icache.misses - misses_before
        exhausts = self.exhausted and not self._recorded_exhaustion
        if not group and not hits and not misses and not exhausts:
            return group  # blocked / stalled no-op; not an event
        flags = 0
        if self._blocked_on_seq is not None and group:
            # ``fetch`` only delivers while unblocked, so a blocked state
            # after the call means this very group ended on a
            # mispredicted branch (always its last instruction).
            flags |= ENDS_BLOCKED
        if exhausts:
            flags |= EXHAUSTS
            self._recorded_exhaustion = True
        post_stall = self._stalled_until - cycle
        if post_stall < 0:
            post_stall = 0
        self.events.append((len(group), post_stall, hits, misses, flags))
        return group


def record_trace_with_stats(
    name: str,
    instructions: Iterable[DynamicInstruction],
    config: ProcessorConfig,
    workload_id: dict,
    canonical_factory: Optional[Callable] = None,
):
    """Like :func:`record_trace`, also returning the recording run's stats.

    The recording run is a complete, fully live simulation of
    ``(canonical_factory, config-with-lifted-commit-limit)``.  When the
    caller's point already commits the whole stream (no warmup slack, no
    occupancy collection, no explicit cycle cap) and ``canonical_factory``
    is that point's own factory, the returned statistics *are* the
    point's live results — the scheduler harvests them instead of
    replaying the recording point a second time.
    """
    stream = list(instructions)
    record_config = config.with_overrides(
        max_instructions=len(stream),
        max_cycles=None,
        collect_occupancy=False,
    )
    icache = CacheModel(record_config.icache, name="icache")
    predictor = GSharePredictor(record_config.branch_predictor_entries)
    btb = BranchTargetBuffer(record_config.btb_entries)
    unit = RecordingFetchUnit(
        iter(stream), icache, predictor, btb, width=record_config.fetch_width
    )
    factory = canonical_factory or _canonical_regfile
    stats = simulate(None, factory, record_config, benchmark_name=name,
                     frontend=unit)
    trace = DecodedTrace(
        name=name,
        key=trace_key(workload_id, config),
        workload=dict(workload_id),
        frontend=frontend_fingerprint(config),
        instructions=stream,
        events=unit.events,
    )
    return trace, stats


def record_trace(
    name: str,
    instructions: Iterable[DynamicInstruction],
    config: ProcessorConfig,
    workload_id: dict,
    canonical_factory: Optional[Callable] = None,
) -> DecodedTrace:
    """Run workload + frontend once and materialize the decoded trace.

    ``config`` supplies the frontend-relevant parameters; its backend
    fields only affect how fast the recording run finishes.  The
    returned trace replays bit-identically for any backend whose config
    shares :func:`~repro.trace.schema.frontend_fingerprint` with
    ``config`` and whose commit budget does not exceed the stream
    length.
    """
    trace, _ = record_trace_with_stats(
        name, instructions, config, workload_id, canonical_factory
    )
    return trace
