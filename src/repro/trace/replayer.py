"""Replaying a decoded trace through the pipeline's frontend seam.

A :class:`TraceReplayer` implements the frontend-source protocol of
:class:`~repro.pipeline.processor.Processor` (``exhausted``,
``fetch_into``, ``on_branch_writeback``, ``icache_hits`` /
``icache_misses``) by walking the trace's recorded fetch events instead
of running the workload generator, the I-cache, gshare and the BTB.
Stall and block *timing* is still computed live — it depends on when the
backend resolves branches — from the per-event stall deltas and the
blocked-on-branch flags, using exactly the live fetch unit's rules.
"""

from __future__ import annotations

from typing import Optional

from repro.pipeline.processor import simulate
from repro.pipeline.stats import SimulationStats
from repro.trace.schema import ENDS_BLOCKED, EXHAUSTS, DecodedTrace


class TraceReplayer:
    """One pipeline run's frontend, fed from a :class:`DecodedTrace`.

    Replayers of one trace share its prebuilt fetch groups (rewriting
    ``fetch_cycle`` in place), so runs over the same trace must be
    sequential within a process.
    """

    __slots__ = (
        "trace",
        "_groups",
        "_next_event",
        "_num_events",
        "_stalled_until",
        "_blocked_seq",
        "_exhausted",
        "icache_hits",
        "icache_misses",
    )

    def __init__(self, trace: DecodedTrace, start_event: int = 0) -> None:
        self.trace = trace
        self._groups = trace.replay_groups()
        if not 0 <= start_event <= len(self._groups):
            raise ValueError(
                f"start_event {start_event} outside trace "
                f"({len(self._groups)} fetch events)"
            )
        # Mid-stream replay (sampling windows, checkpoint resume): begin
        # delivering at a fetch-event boundary instead of event 0.
        self._next_event = start_event
        self._num_events = len(self._groups)
        self._stalled_until = -1
        self._blocked_seq: Optional[int] = None
        self._exhausted = False
        self.icache_hits = 0
        self.icache_misses = 0

    # ------------------------------------------------------------------
    # frontend-source protocol
    # ------------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def blocked(self) -> bool:
        return self._blocked_seq is not None

    def fetch_into(self, decode_queue, stats, cycle: int) -> None:
        if self._blocked_seq is not None or cycle <= self._stalled_until:
            return
        index = self._next_event
        if index >= self._num_events:
            # Mirror the live fetch unit: stream exhaustion is discovered
            # by the fetch call that tries to read past the end.
            self._exhausted = True
            return
        self._next_event = index + 1
        count, post_stall, hits, misses, flags, group, branches = \
            self._groups[index]
        if count:
            for fetched in group:
                fetched.fetch_cycle = cycle
            decode_queue.extend(group)
            stats.fetched_instructions += count
            stats.branch_predictions += branches
        if post_stall:
            self._stalled_until = cycle + post_stall
        if flags & ENDS_BLOCKED:
            self._blocked_seq = group[-1].seq
        if flags & EXHAUSTS:
            self._exhausted = True
        if hits:
            self.icache_hits += hits
        if misses:
            self.icache_misses += misses

    def on_branch_writeback(self, instruction, fetched, ex_end_cycle: int) -> None:
        # Same resolution rule as ``FetchUnit.branch_resolved``; predictor
        # training is skipped — outcomes were recorded.
        blocked = self._blocked_seq
        if blocked is not None and instruction.seq >= blocked:
            self._blocked_seq = None
            if ex_end_cycle > self._stalled_until:
                self._stalled_until = ex_end_cycle


def replay_simulate(
    trace: DecodedTrace,
    regfile_factory,
    config,
    benchmark_name: Optional[str] = None,
    commit_observer=None,
) -> SimulationStats:
    """Simulate one point by replaying ``trace`` in place of live fetch."""
    return simulate(
        None,
        regfile_factory,
        config,
        benchmark_name=benchmark_name or trace.name,
        commit_observer=commit_observer,
        frontend=trace.replayer(),
    )
