"""Decoded-trace schema: identity keys and compact serialization.

A decoded trace captures everything the pipeline consumes from the
frontend:

* the **instruction stream** — the materialized
  :class:`~repro.isa.instruction.DynamicInstruction` list, and
* the **fetch events** — one entry per delivering ``fetch()`` call of
  the recording run: how many instructions the group carried, the
  fetch-unit stall it left behind (I-cache refill, BTB-miss bubble),
  the I-cache hit/miss deltas, and whether the group ended blocked on a
  mispredicted branch or discovered stream exhaustion.

Fetch-group composition never reads the cycle counter, so the events
are a pure function of (workload, frontend configuration); the trace
key hashes exactly those two things.  Backend parameters (register
budgets, window sizes, regfile architecture) deliberately do **not**
enter the key — that is what lets one trace drive a whole sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.isa.instruction import (
    FP_LOGICAL_REGISTERS,
    INT_LOGICAL_REGISTERS,
    DynamicInstruction,
    LogicalRegister,
    RegisterClass,
)
from repro.isa.opcodes import OpClass
from repro.pipeline.config import ProcessorConfig

#: Bump whenever the payload layout changes; mismatching stored traces
#: are treated as cache misses, never as errors.
TRACE_SCHEMA_VERSION = 1

#: Fetch-event flag bits.
ENDS_BLOCKED = 1  #: group ends with a mispredicted branch; fetch blocks.
EXHAUSTS = 2  #: the stream ran out during (or right before) this call.

#: One fetch event: (count, post_stall, icache_hits, icache_misses, flags).
FetchEvent = Tuple[int, int, int, int, int]

_OP_CLASSES: Tuple[OpClass, ...] = tuple(OpClass)
_OP_INDEX: Dict[OpClass, int] = {op: i for i, op in enumerate(_OP_CLASSES)}


def frontend_fingerprint(config: ProcessorConfig) -> dict:
    """The frontend-relevant subset of a :class:`ProcessorConfig`.

    Everything that shapes fetch-group composition or frontend outcomes:
    fetch width (groups end at width), the I-cache geometry (misses end
    groups and stall fetch) and the predictor/BTB sizes (direction and
    target outcomes).  Backend fields are excluded on purpose — replay
    fidelity across backends is what ``tests/test_trace_replay.py``
    locks down.
    """
    return {
        "fetch_width": config.fetch_width,
        "icache": dataclasses.asdict(config.icache),
        "branch_predictor_entries": config.branch_predictor_entries,
        "btb_entries": config.btb_entries,
    }


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def trace_key(workload_id: dict, config: ProcessorConfig) -> str:
    """Content hash identifying one decoded trace.

    ``workload_id`` pins the instruction stream (e.g. ``{"kind":
    "synthetic-profile", "benchmark": "gcc", "instructions": 6000}``);
    the frontend fingerprint pins how it is fetched.
    """
    payload = {
        "schema": TRACE_SCHEMA_VERSION,
        "workload": dict(workload_id),
        "frontend": frontend_fingerprint(config),
    }
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# compact instruction encoding
# ----------------------------------------------------------------------

def _encode_register(register: Optional[LogicalRegister]) -> int:
    if register is None:
        return -1
    return (register.index << 1) | (register.reg_class is RegisterClass.FP)


def _decode_register(code: int) -> Optional[LogicalRegister]:
    if code < 0:
        return None
    pool = FP_LOGICAL_REGISTERS if code & 1 else INT_LOGICAL_REGISTERS
    return pool[code >> 1]


def encode_instruction(inst: DynamicInstruction) -> list:
    """One JSON-friendly row per dynamic instruction."""
    flags = (1 if inst.is_branch else 0) | (2 if inst.branch_taken else 0)
    return [
        inst.seq,
        _OP_INDEX[inst.op_class],
        _encode_register(inst.dest),
        [_encode_register(source) for source in inst.sources],
        inst.latency,
        inst.pc,
        flags,
        inst.branch_target,
        inst.mem_address,
        inst.mnemonic,
    ]


def decode_instruction(row: Sequence) -> DynamicInstruction:
    seq, op, dest, sources, latency, pc, flags, target, mem, mnemonic = row
    return DynamicInstruction(
        seq=seq,
        op_class=_OP_CLASSES[op],
        dest=_decode_register(dest),
        sources=tuple(_decode_register(code) for code in sources),
        latency=latency,
        pc=pc,
        is_branch=bool(flags & 1),
        branch_taken=bool(flags & 2),
        branch_target=target,
        mem_address=mem,
        mnemonic=mnemonic,
    )


# ----------------------------------------------------------------------
# the trace object
# ----------------------------------------------------------------------

@dataclass
class DecodedTrace:
    """A recorded decoded-instruction / fetch-event stream.

    One trace drives any number of sequential replays in a process; the
    prebuilt fetch groups are shared between replayers (their
    ``fetch_cycle`` fields are rewritten per run), so two replays of the
    same trace must not run concurrently in one process — worker
    processes are the unit of parallelism.
    """

    name: str
    key: str
    workload: dict
    frontend: dict
    instructions: List[DynamicInstruction]
    events: List[FetchEvent]
    #: Lazily-built per-event (group, branch_count) shared by replayers.
    _groups: Optional[list] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.instructions)

    def replay_groups(self) -> list:
        """Per-event replay tuples ``(count, post_stall, hits, misses,
        flags, fetched_group, branch_count)``, built once per process."""
        if self._groups is None:
            from repro.frontend.fetch import FetchedInstruction

            groups = []
            instructions = self.instructions
            position = 0
            for count, post_stall, hits, misses, flags in self.events:
                group = []
                branches = 0
                for inst in instructions[position:position + count]:
                    group.append(FetchedInstruction(instruction=inst, fetch_cycle=0))
                    if inst.is_branch:
                        branches += 1
                position += count
                if flags & ENDS_BLOCKED:
                    if not group or not group[-1].instruction.is_branch:
                        raise SimulationError(
                            f"corrupt trace {self.name!r}: blocked fetch event "
                            "does not end with a branch"
                        )
                    group[-1].mispredicted = True
                groups.append(
                    (count, post_stall, hits, misses, flags, group, branches)
                )
            if position != len(instructions):
                raise SimulationError(
                    f"corrupt trace {self.name!r}: events cover {position} of "
                    f"{len(instructions)} instructions"
                )
            self._groups = groups
        return self._groups

    def replayer(self):
        """A fresh frontend-source for one pipeline run over this trace."""
        from repro.trace.replayer import TraceReplayer

        return TraceReplayer(self)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-serializable payload (inverse of :meth:`from_payload`)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "key": self.key,
            "workload": self.workload,
            "frontend": self.frontend,
            "instructions": [encode_instruction(i) for i in self.instructions],
            "events": [list(event) for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DecodedTrace":
        """Rebuild a trace from :meth:`to_payload` output.

        Raises
        ------
        SimulationError
            On schema mismatch or a structurally invalid payload.
        """
        if not isinstance(payload, dict) or payload.get("schema") != TRACE_SCHEMA_VERSION:
            raise SimulationError(
                f"trace payload schema {payload.get('schema') if isinstance(payload, dict) else payload!r} "
                f"!= {TRACE_SCHEMA_VERSION}"
            )
        try:
            instructions = [decode_instruction(row) for row in payload["instructions"]]
            events = [tuple(event) for event in payload["events"]]
            trace = cls(
                name=payload["name"],
                key=payload["key"],
                workload=dict(payload["workload"]),
                frontend=dict(payload["frontend"]),
                instructions=instructions,
                events=events,
            )
        except (KeyError, IndexError, TypeError, ValueError) as error:
            raise SimulationError(f"malformed trace payload: {error}") from error
        if sum(event[0] for event in events) != len(instructions):
            raise SimulationError(
                "malformed trace payload: event instruction counts do not "
                "cover the stream"
            )
        return trace
