"""On-disk store of decoded traces.

Traces live in a ``traces/`` subdirectory of the experiment cache
directory, so one ``--cache-dir`` serves both the
:class:`~repro.experiments.store.ResultStore` (result JSON files in the
directory root) and the trace store without any filename collision, and
a trace file can never be mistaken for a result payload (different
location *and* a different schema envelope).  Files are gzip-compressed
JSON, written atomically; unreadable, corrupt or schema-mismatching
files are treated as cache misses.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.trace.schema import DecodedTrace

#: Subdirectory of the cache dir reserved for traces.
TRACE_SUBDIR = "traces"


class TraceStore:
    """Two-tier (memory + optional disk) store of decoded traces."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self.trace_dir = os.path.join(cache_dir, TRACE_SUBDIR) if cache_dir else None
        self._memory: Dict[str, DecodedTrace] = {}
        # Concurrent SweepEngine.execute calls (service job threads) share
        # one trace store; exact counters keep /metrics hit rates honest.
        self._counter_lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> str:
        return os.path.join(self.trace_dir, f"{key}.json.gz")  # type: ignore[arg-type]

    def _load_from_disk(self, key: str) -> Optional[DecodedTrace]:
        if not self.trace_dir:
            return None
        try:
            with gzip.open(self._path(key), "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError, EOFError):
            return None
        try:
            trace = DecodedTrace.from_payload(payload)
        except SimulationError:
            return None
        if trace.key != key:
            return None
        return trace

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[DecodedTrace]:
        """Fetch a trace, promoting disk entries into the memory tier."""
        trace = self._memory.get(key)
        if trace is not None:
            with self._counter_lock:
                self.memory_hits += 1
            return trace
        trace = self._load_from_disk(key)
        if trace is not None:
            self._memory[key] = trace
            with self._counter_lock:
                self.disk_hits += 1
            return trace
        with self._counter_lock:
            self.misses += 1
        return None

    def put(self, trace: DecodedTrace) -> None:
        """Record a trace in both tiers (the disk write is atomic)."""
        self._memory[trace.key] = trace
        with self._counter_lock:
            self.stores += 1
        if not self.trace_dir:
            return
        fd, tmp_path = tempfile.mkstemp(dir=self.trace_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.open(raw, "wt", encoding="utf-8") as handle:
                    json.dump(trace.to_payload(), handle)
            os.replace(tmp_path, self._path(trace.key))
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._memory),
        }
