"""On-disk store of decoded traces.

Traces live in a ``traces/`` subdirectory of the experiment cache
directory, so one ``--cache-dir`` serves both the
:class:`~repro.experiments.store.ResultStore` (sharded segments under
``results/``) and the trace store without any collision.  The disk tier
is a size-bounded :class:`~repro.storage.sharded.ShardedStore`: each
trace payload is gzip-compressed JSON appended to a segment log, and
when the store outgrows ``max_bytes`` the oldest traces are evicted at
compaction — traces are pure derived data, so evicting one only costs a
re-decode.  Unreadable, corrupt or schema-mismatching payloads are
treated as cache misses.  Legacy file-per-trace trees
(``traces/<key>.json.gz``) are imported byte for byte on first open.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import threading
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.storage import ShardedStore, migrate_legacy_files
from repro.trace.schema import DecodedTrace

#: Subdirectory of the cache dir reserved for traces.
TRACE_SUBDIR = "traces"

#: Default size bound for the on-disk trace tier.  Decoded traces are
#: bulky relative to results; bounding the store keeps a long-lived
#: cache tree from growing without limit (oldest traces are evicted
#: first and simply get re-decoded on next use).
DEFAULT_TRACE_MAX_BYTES = 1 << 30


def _valid_trace_blob(key: str, raw: bytes) -> bool:
    """Whether raw bytes are a plausible gzip'd trace payload for ``key``."""
    try:
        payload = json.loads(gzip.decompress(raw).decode("utf-8"))
    except (OSError, ValueError, EOFError, UnicodeDecodeError):
        return False
    return isinstance(payload, dict) and payload.get("key") == key


class TraceStore:
    """Two-tier (memory + optional disk) store of decoded traces."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        max_bytes: Optional[int] = DEFAULT_TRACE_MAX_BYTES,
    ) -> None:
        self.cache_dir = cache_dir
        self.trace_dir = os.path.join(cache_dir, TRACE_SUBDIR) if cache_dir else None
        self._memory: Dict[str, DecodedTrace] = {}
        # Generic JSON payloads (e.g. trace checkpoints) stored alongside
        # traces; see ``put_payload`` / ``get_payload``.
        self._payload_memory: Dict[str, dict] = {}
        # Concurrent SweepEngine.execute calls (service job threads) share
        # one trace store; exact counters keep /metrics hit rates honest.
        self._counter_lock = threading.Lock()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self._disk: Optional[ShardedStore] = None
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)
            self._disk = ShardedStore(self.trace_dir, max_bytes=max_bytes)
            # Import any pre-segment-log file-per-trace tree, byte for byte.
            migrate_legacy_files(
                self.trace_dir, ".json.gz", self._disk.put, _valid_trace_blob
            )

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._memory)

    def _load_from_disk(self, key: str) -> Optional[DecodedTrace]:
        if self._disk is None:
            return None
        raw = self._disk.get(key)
        if raw is None:
            return None
        try:
            payload = json.loads(gzip.decompress(raw).decode("utf-8"))
        except (OSError, ValueError, EOFError, UnicodeDecodeError):
            return None
        try:
            trace = DecodedTrace.from_payload(payload)
        except SimulationError:
            return None
        if trace.key != key:
            return None
        return trace

    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[DecodedTrace]:
        """Fetch a trace, promoting disk entries into the memory tier."""
        trace = self._memory.get(key)
        if trace is not None:
            with self._counter_lock:
                self.memory_hits += 1
            return trace
        trace = self._load_from_disk(key)
        if trace is not None:
            self._memory[key] = trace
            with self._counter_lock:
                self.disk_hits += 1
            return trace
        with self._counter_lock:
            self.misses += 1
        return None

    def put(self, trace: DecodedTrace) -> None:
        """Record a trace in both tiers (the disk append is atomic)."""
        self._memory[trace.key] = trace
        with self._counter_lock:
            self.stores += 1
        if self._disk is None:
            return
        buffer = io.BytesIO()
        # mtime=0 keeps the blob deterministic for a given payload.
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            handle.write(json.dumps(trace.to_payload()).encode("utf-8"))
        self._disk.put(trace.key, buffer.getvalue())

    # ------------------------------------------------------------------
    # generic payloads (trace checkpoints, other trace-derived artifacts)
    # ------------------------------------------------------------------

    def put_payload(self, key: str, payload: dict) -> None:
        """Record an arbitrary JSON payload under a content-hash key.

        Shares the trace tiers (memory dict, sharded disk segments) and
        the gzip-JSON encoding; callers own the key discipline — keys
        must be content hashes that cannot collide with trace keys
        (checkpoint keys hash a distinct ``kind`` tag).
        """
        self._payload_memory[key] = payload
        with self._counter_lock:
            self.stores += 1
        if self._disk is None:
            return
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            handle.write(json.dumps(payload).encode("utf-8"))
        self._disk.put(key, buffer.getvalue())

    def get_payload(self, key: str) -> Optional[dict]:
        """Fetch a payload stored with :meth:`put_payload`.

        Absent, unreadable or corrupt entries are cache misses
        (``None``) — identical quarantine semantics to traces.
        """
        payload = self._payload_memory.get(key)
        if payload is not None:
            with self._counter_lock:
                self.memory_hits += 1
            return payload
        if self._disk is not None:
            raw = self._disk.get(key)
            if raw is not None:
                try:
                    payload = json.loads(gzip.decompress(raw).decode("utf-8"))
                except (OSError, ValueError, EOFError, UnicodeDecodeError):
                    payload = None
                if isinstance(payload, dict):
                    self._payload_memory[key] = payload
                    with self._counter_lock:
                        self.disk_hits += 1
                    return payload
        with self._counter_lock:
            self.misses += 1
        return None

    # ------------------------------------------------------------------

    def set_observer(self, observer) -> None:
        """Install a ``(op, seconds)`` duration sink on the disk tier
        (see :attr:`ShardedStore.observer`); no-op when memory-only."""
        if self._disk is not None:
            self._disk.observer = observer

    def compact(self) -> None:
        """Force-compact the disk tier (applies the size bound eagerly)."""
        if self._disk is not None:
            self._disk.compact()

    def storage_stats(self) -> Dict[str, int]:
        """Segment-log health counters for /metrics (empty when memory-only)."""
        if self._disk is None:
            return {}
        return self._disk.stats()

    def counters(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._memory),
        }
