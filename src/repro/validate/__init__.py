"""Differential validation subsystem.

Proves, end to end, the paper's architectural-transparency claim: every
register-file architecture (monolithic, banked, register-file cache
across its policies) must commit the identical instruction stream with
the identical architectural register state — checked against each other
and against an independent in-order functional oracle, over fuzzed
scenarios reproducible from a single seed.

Entry points: ``python -m repro.validate`` (CLI) or
:func:`repro.validate.runner.run_validation` (API).
"""

from repro.validate.differential import (
    filter_matrix,
    run_differential,
    validation_matrix,
)
from repro.validate.faults import FaultInjectingObserver, InjectedFault
from repro.validate.fuzzer import FuzzScenario, generate_scenario, random_program
from repro.validate.observer import (
    CommitObserver,
    CommitStreamAccumulator,
    commit_record,
)
from repro.validate.oracle import ArchitecturalOracle, OracleResult, run_oracle
from repro.validate.report import (
    ArchitectureOutcome,
    Divergence,
    ScenarioValidation,
    ValidationReport,
)
from repro.validate.runner import SeedTask, run_seed, run_validation

__all__ = [
    "ArchitecturalOracle",
    "ArchitectureOutcome",
    "CommitObserver",
    "CommitStreamAccumulator",
    "Divergence",
    "FaultInjectingObserver",
    "FuzzScenario",
    "InjectedFault",
    "OracleResult",
    "ScenarioValidation",
    "SeedTask",
    "ValidationReport",
    "commit_record",
    "filter_matrix",
    "generate_scenario",
    "random_program",
    "run_differential",
    "run_oracle",
    "run_seed",
    "run_validation",
    "validation_matrix",
]
