"""Command-line interface of the differential validation subsystem.

Fuzz N seeded scenarios across the full register-file architecture
matrix and compare every run against the architectural oracle::

    python -m repro.validate --seeds 25 --quick
    python -m repro.validate --seeds 50 --jobs 4 --json validate.json

Reproduce one failing seed from a report's ``repro`` line::

    python -m repro.validate --seed 17 --quick

Check that the detection machinery works (injects a deliberate
observation fault; the run MUST report a divergence)::

    python -m repro.validate --seed 1 --inject-fault monolithic-1c:40

Check the sampling engine's accuracy contract (full-run IPC must fall
inside every sampled run's reported confidence interval)::

    python -m repro.validate --sampled-accuracy

Exit codes: 0 all architectures agree, 1 divergence detected, 2 usage
or environment error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.validate.differential import validation_matrix
from repro.validate.faults import InjectedFault
from repro.validate.observer import DEFAULT_CHECKPOINT_INTERVAL
from repro.validate.runner import run_validation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of fuzzer seeds to run, 1..N (default: 10)")
    parser.add_argument("--seed", type=int, action="append", dest="seed_list",
                        default=None, metavar="S",
                        help="run exactly this seed (repeatable; overrides --seeds)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced instruction budgets (CI-sized run)")
    parser.add_argument("--filter", dest="name_filter", default=None,
                        help="only run architectures whose name contains this "
                             "substring (the oracle always runs)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the seed fan-out "
                             "(default: 1, serial)")
    parser.add_argument("--json", dest="json_path", default=None,
                        help="also write the full report as JSON to this path")
    parser.add_argument("--checkpoint-interval", type=int,
                        default=DEFAULT_CHECKPOINT_INTERVAL,
                        help="commits between rolling-checksum checkpoints "
                             f"(default: {DEFAULT_CHECKPOINT_INTERVAL})")
    parser.add_argument("--list", action="store_true",
                        help="list the architecture matrix and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-seed progress on stderr")
    parser.add_argument("--inject-fault", dest="inject_fault", default=None,
                        metavar="ARCHITECTURE:COMMIT_INDEX",
                        help="corrupt one architecture's observed commit stream "
                             "(self-test of the detector; the run must fail)")
    parser.add_argument("--no-trace-replay", action="store_true",
                        help="run each architecture with its own live frontend "
                             "instead of replaying one recorded decoded trace "
                             "(slower; results are bit-identical either way)")
    parser.add_argument("--sampled-accuracy", action="store_true",
                        help="instead of fuzzing, replay the architecture "
                             "matrix both exactly and sampled and fail if any "
                             "full-run IPC falls outside the sampled run's "
                             "confidence interval")
    parser.add_argument("--sample", default=None,
                        metavar="STRIDE:WINDOW[:WARMUP]",
                        help="sampling spec for --sampled-accuracy "
                             "(default: the pinned, verified spec)")
    parser.add_argument("--instructions", type=int, default=None,
                        help="trace length for --sampled-accuracy "
                             "(default: the pinned, verified length)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for name, factory in validation_matrix().items():
            print(f"{name:28s} {type(factory).__name__}")
        return 0

    def progress(message: str) -> None:
        if not args.quiet:
            print(message, file=sys.stderr, flush=True)

    if args.sampled_accuracy:
        from repro.sampling import parse_sampling
        from repro.validate.sampled import run_sampled_accuracy

        try:
            spec = (parse_sampling(args.sample)
                    if args.sample is not None else None)
            kwargs = {}
            if args.instructions is not None:
                kwargs["instructions"] = args.instructions
            report = run_sampled_accuracy(
                spec=spec, name_filter=args.name_filter,
                progress=progress, **kwargs,
            )
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(report.render())
        if args.json_path:
            try:
                with open(args.json_path, "w", encoding="utf-8") as handle:
                    json.dump(report.to_payload(), handle, indent=2,
                              sort_keys=True)
                    handle.write("\n")
            except OSError as error:
                print(f"error: cannot write report: {error}", file=sys.stderr)
                return 2
            progress(f"wrote {args.json_path}")
        return 0 if report.ok else 1

    if args.seed_list:
        seeds = list(args.seed_list)
    else:
        if args.seeds <= 0:
            print("error: --seeds must be positive", file=sys.stderr)
            return 2
        seeds = list(range(1, args.seeds + 1))
    if args.checkpoint_interval <= 0:
        print("error: --checkpoint-interval must be positive", file=sys.stderr)
        return 2

    try:
        fault = (
            InjectedFault.parse(args.inject_fault)
            if args.inject_fault is not None else None
        )
        report = run_validation(
            seeds,
            quick=args.quick,
            name_filter=args.name_filter,
            jobs=args.jobs,
            checkpoint_interval=args.checkpoint_interval,
            fault=fault,
            progress=progress,
            use_trace_replay=not args.no_trace_replay,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(report.render())
    if args.json_path:
        try:
            path = report.save(args.json_path)
        except OSError as error:
            print(f"error: cannot write report: {error}", file=sys.stderr)
            return 2
        progress(f"wrote {path}")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
